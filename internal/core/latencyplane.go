package core

// The latency attribution plane (DESIGN.md §11): the tracer's span
// completion hook decomposes every sampled tuple's journey into
// per-stage wall-clock deltas (dissemination, network, ingest, engine,
// eval) recorded into mergeable log-bucket histograms per hosting
// entity. The per-entity snapshots ride the stats federation's
// EntityStats rows, so the coordinator-tree root answers cluster-wide
// per-stage percentiles by exact bucket-wise merge. On top of the
// merged view the plane derives each query's *measured* performance
// ratio (span delay over span-measured evaluation time, vs. the
// engine-estimated d_k/p_k) and evaluates declarative SLO rules every
// stats tick, journaling slo.breach / slo.clear transitions.
//
// Everything here is driven by completed spans and periodic ticks; the
// unsampled tuple path is untouched.

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sspd/internal/latency"
	"sspd/internal/metrics"
	"sspd/internal/trace"
)

// DefaultSLORules is the rule set used when EnableLatencyAttribution is
// given none: end-to-end tail latency, worst measured PR, and the
// network stage's share of total time.
var DefaultSLORules = []string{
	"p99_end_to_end < 250ms",
	"pr_max < 3",
	"stage_share(network) < 60%",
}

// latencyPlane owns the per-entity recorders, the query→recorder
// routing table the completion hook reads, and the SLO watchdog state.
type latencyPlane struct {
	f        *Federation
	watchdog *latency.Watchdog

	// route maps query ID → hosting entity's recorder. Copy-on-write:
	// the completion hook (called from tuple-path goroutines) only loads
	// it, so it never contends with federation locks.
	route atomic.Pointer[map[string]*latency.Recorder]

	mu        sync.Mutex
	recorders map[string]*latency.Recorder // entity → recorder
	breaches  map[string]int64             // rule → breach transitions
	verdicts  []latency.Verdict            // last watchdog evaluation

	// leftover records breakdowns for queries not yet in the routing
	// table (placed after the last refresh) plus incomplete-span
	// bookkeeping; it is merged into the cluster view alongside the
	// federated rows so nothing is silently dropped.
	leftover *latency.Recorder
	// Unrouted counts breakdowns that fell through to leftover.
	Unrouted metrics.Counter

	loopMu sync.Mutex
	stop   chan struct{}
	done   chan struct{}
}

// EnableLatencyAttribution starts the latency attribution plane.
// Tracing must be enabled first: the plane consumes the tracer's span
// completion hook. interval > 0 runs a background watchdog evaluation
// loop; interval <= 0 leaves evaluation to StatsTick (and SLOTick), the
// deterministic path tests drive. rules are SLO rule lines (see
// latency.ParseRule); none installs DefaultSLORules.
func (f *Federation) EnableLatencyAttribution(interval time.Duration, rules ...string) error {
	if len(rules) == 0 {
		rules = DefaultSLORules
	}
	parsed, err := latency.ParseRules(rules)
	if err != nil {
		return err
	}
	f.mu.Lock()
	if !f.started {
		f.mu.Unlock()
		return fmt.Errorf("core: federation not started")
	}
	if f.tracer == nil {
		f.mu.Unlock()
		return fmt.Errorf("core: latency attribution needs tracing (call EnableTracing first)")
	}
	if f.lat != nil {
		f.mu.Unlock()
		return fmt.Errorf("core: latency attribution already enabled")
	}
	p := &latencyPlane{
		f:         f,
		watchdog:  latency.NewWatchdog(parsed),
		recorders: make(map[string]*latency.Recorder),
		breaches:  make(map[string]int64),
		leftover:  latency.NewRecorder(),
	}
	f.lat = p
	f.mu.Unlock()

	p.refreshRoutes()
	// The tracer's single completion hook belongs to the federation
	// dispatcher (set at EnableTracing); publishing the plane through the
	// copy-on-write pointer routes completions here without the tuple
	// path ever taking f.mu.
	f.spanLat.Store(p)
	f.registry.RegisterCollector(p.collect)
	if interval > 0 {
		p.start(interval)
	}
	f.logger.Info("slo.watch", "", "latency attribution plane enabled",
		"rules", len(parsed), "interval", interval)
	return nil
}

// LatencyEnabled reports whether the attribution plane is running.
func (f *Federation) LatencyEnabled() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.lat != nil
}

// ClusterLatency returns the cluster-wide attribution view: the
// bucket-wise merge of every entity's federated latency row (as seen by
// the coordinator-tree root) plus locally buffered leftovers. When the
// stats plane is not enabled the per-entity recorders are merged
// directly. ok is false while the plane is disabled.
func (f *Federation) ClusterLatency() (latency.Attribution, bool) {
	f.mu.Lock()
	p := f.lat
	statsUp := f.stats != nil
	f.mu.Unlock()
	if p == nil {
		return latency.Attribution{}, false
	}
	var out latency.Attribution
	merged := false
	if statsUp {
		if rows, _, ok := f.ClusterStats(); ok {
			for _, row := range rows {
				if row.Latency != nil {
					out.Merge(*row.Latency)
				}
			}
			merged = true
		}
	}
	if !merged {
		p.mu.Lock()
		recs := make([]*latency.Recorder, 0, len(p.recorders))
		for _, r := range p.recorders {
			recs = append(recs, r)
		}
		p.mu.Unlock()
		for _, r := range recs {
			out.Merge(r.Snapshot())
		}
	}
	out.Merge(p.leftover.Snapshot())
	return out, true
}

// PRMeasuredMax returns the worst measured performance ratio across the
// cluster view and the query achieving it.
func (f *Federation) PRMeasuredMax() (pr float64, query string) {
	att, ok := f.ClusterLatency()
	if !ok {
		return 0, ""
	}
	for _, q := range att.Queries {
		if q.PRMeasured > pr {
			pr, query = q.PRMeasured, q.Query
		}
	}
	return pr, query
}

// SLOTick runs one watchdog evaluation against the current cluster
// view, journaling breach/clear transitions. StatsTick calls this
// automatically; exposed for tests and callers that federate manually.
// Returns the per-rule verdicts (nil when the plane is disabled).
func (f *Federation) SLOTick() []latency.Verdict {
	f.mu.Lock()
	p := f.lat
	f.mu.Unlock()
	if p == nil {
		return nil
	}
	return p.eval()
}

// SLOStatus returns the verdicts of the most recent watchdog tick.
func (f *Federation) SLOStatus() []latency.Verdict {
	f.mu.Lock()
	p := f.lat
	f.mu.Unlock()
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]latency.Verdict(nil), p.verdicts...)
}

// latencyRoutesChanged refreshes the attribution plane's query routing
// table after a placement change. Must be called without f.mu held.
func (f *Federation) latencyRoutesChanged() {
	f.mu.Lock()
	p := f.lat
	f.mu.Unlock()
	if p != nil {
		p.refreshRoutes()
	}
}

// latencyRowFor is the stats plane's fold hook: one entity's current
// attribution snapshot (nil when the plane is off or the entity has
// recorded nothing yet).
func (f *Federation) latencyRowFor(id string) *latency.Attribution {
	f.mu.Lock()
	p := f.lat
	f.mu.Unlock()
	if p == nil {
		return nil
	}
	p.mu.Lock()
	rec := p.recorders[id]
	p.mu.Unlock()
	if rec == nil {
		return nil
	}
	a := rec.Snapshot()
	return &a
}

// onComplete is the tracer's completion hook. It runs on whatever
// goroutine recorded the terminal hop, so it touches only the plane's
// own state — never federation locks.
func (p *latencyPlane) onComplete(s trace.Span, hop int) {
	if hop < 0 {
		p.leftover.OnComplete(s, hop) // counts the incomplete journey
		return
	}
	if s.Hops[hop].Stage == trace.StagePortal {
		return // the result hop that preceded it was already recorded
	}
	bd, ok := latency.Decompose(s, hop)
	if !ok {
		p.leftover.Unattributed.Inc()
		return
	}
	if m := p.route.Load(); m != nil {
		if rec := (*m)[bd.Query]; rec != nil {
			rec.Observe(bd)
			return
		}
	}
	p.Unrouted.Inc()
	p.leftover.Observe(bd)
}

// refreshRoutes rebuilds the copy-on-write query→recorder table from
// the current assignment. Called on placement changes and before every
// watchdog tick; must not run under f.mu.
func (p *latencyPlane) refreshRoutes() {
	f := p.f
	f.mu.Lock()
	assign := make(map[string]string, len(f.queries))
	for q, fq := range f.queries {
		assign[q] = fq.entity
	}
	f.mu.Unlock()
	p.mu.Lock()
	m := make(map[string]*latency.Recorder, len(assign))
	for q, entityID := range assign {
		rec := p.recorders[entityID]
		if rec == nil {
			rec = latency.NewRecorder()
			p.recorders[entityID] = rec
		}
		m[q] = rec
	}
	p.mu.Unlock()
	p.route.Store(&m)
}

// forgetEntity drops a departed entity's recorder; its history stays in
// already-federated rows until they expire.
func (p *latencyPlane) forgetEntity(id string) {
	p.mu.Lock()
	delete(p.recorders, id)
	p.mu.Unlock()
	p.refreshRoutes()
}

// eval runs one watchdog tick: routes are refreshed, the cluster view
// merged, the rules evaluated on this window's traffic, and state
// transitions journaled and counted.
func (p *latencyPlane) eval() []latency.Verdict {
	p.refreshRoutes()
	f := p.f
	att, ok := f.ClusterLatency()
	if !ok {
		return nil
	}
	prMax := 0.0
	for _, q := range att.Queries {
		if q.PRMeasured > prMax {
			prMax = q.PRMeasured
		}
	}
	vs := p.watchdog.Eval(latency.Observation{
		E2E:    att.E2E,
		Stages: att.Stages,
		PRMax:  prMax,
	})
	p.mu.Lock()
	p.verdicts = vs
	for _, v := range vs {
		if v.Transition && v.Breached {
			p.breaches[v.Rule.Raw]++
		}
	}
	p.mu.Unlock()
	for _, v := range vs {
		if !v.Transition {
			continue
		}
		if v.Breached {
			f.logger.Warn("slo.breach", "", "SLO rule breached",
				"rule", v.Rule.Raw, "value", fmt.Sprintf("%.6g", v.Value))
		} else {
			f.logger.Info("slo.clear", "", "SLO rule recovered",
				"rule", v.Rule.Raw, "value", fmt.Sprintf("%.6g", v.Value))
		}
	}
	return vs
}

func (p *latencyPlane) start(interval time.Duration) {
	p.loopMu.Lock()
	defer p.loopMu.Unlock()
	if p.stop != nil {
		return
	}
	p.stop = make(chan struct{})
	p.done = make(chan struct{})
	go func(stop, done chan struct{}) {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				p.eval()
			}
		}
	}(p.stop, p.done)
}

// close stops the loop and detaches the plane from the federation's
// span-completion dispatcher.
func (p *latencyPlane) close() {
	p.loopMu.Lock()
	stop, done := p.stop, p.done
	p.stop, p.done = nil, nil
	p.loopMu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
	p.f.spanLat.Store(nil)
}

// collect renders the plane as Prometheus families on the federation
// registry: real histogram families for the merged stage and
// end-to-end distributions, per-query measured PR with its drift from
// the engine estimate, and SLO state.
func (p *latencyPlane) collect(emit func(metrics.Sample)) {
	f := p.f
	att, ok := f.ClusterLatency()
	if !ok {
		return
	}
	gauge := func(name, help string, v float64, labels ...metrics.Label) {
		emit(metrics.Sample{Name: name, Help: help, Kind: metrics.KindGauge, Labels: labels, Value: v})
	}
	counter := func(name, help string, v float64, labels ...metrics.Label) {
		emit(metrics.Sample{Name: name, Help: help, Kind: metrics.KindCounter, Labels: labels, Value: v})
	}
	hist := func(name, help string, s latency.HistSnapshot, labels ...metrics.Label) {
		if s.Count == 0 || len(s.Counts) == 0 {
			return
		}
		emit(metrics.Sample{Name: name, Help: help, Labels: labels, Hist: &metrics.HistSample{
			Bounds: latency.Bounds(), Counts: s.Counts, Sum: s.Sum,
		}})
	}

	hist("sspd_latency_e2e_seconds", "End-to-end publish-to-result latency of sampled tuples.", att.E2E)
	stages := make([]string, 0, len(att.Stages))
	for st := range att.Stages {
		stages = append(stages, st)
	}
	sort.Strings(stages)
	for _, st := range stages {
		hist("sspd_latency_stage_seconds", "Per-stage latency of sampled tuples.",
			att.Stages[st], metrics.L("stage", st))
	}

	for _, q := range att.Queries {
		lq := metrics.L("query", q.Query)
		gauge("sspd_pr_measured", "Measured Performance Ratio per query (span delay over span eval time).",
			q.PRMeasured, lq)
		if est, ok := f.QueryPR(q.Query); ok {
			gauge("sspd_pr_drift", "Measured minus estimated Performance Ratio per query.",
				q.PRMeasured-est, lq)
		}
	}

	counter("sspd_latency_incomplete_total", "Sampled spans evicted before reaching a result.",
		float64(att.Incomplete))
	counter("sspd_latency_unrouted_total", "Breakdowns recorded for queries absent from the routing table.",
		float64(p.Unrouted.Value()))

	p.mu.Lock()
	verdicts := append([]latency.Verdict(nil), p.verdicts...)
	breaches := make(map[string]int64, len(p.breaches))
	for r, n := range p.breaches {
		breaches[r] = n
	}
	p.mu.Unlock()
	for _, v := range verdicts {
		gauge("sspd_slo_breached", "1 while the SLO rule is in breach.",
			b2f(v.Breached), metrics.L("rule", v.Rule.Raw))
	}
	rules := make([]string, 0, len(breaches))
	for r := range breaches {
		rules = append(rules, r)
	}
	sort.Strings(rules)
	for _, r := range rules {
		counter("sspd_slo_breaches_total", "SLO breach transitions per rule.",
			float64(breaches[r]), metrics.L("rule", r))
	}
}
