package core

import (
	"fmt"
	"sort"

	"sspd/internal/dissemination"
	"sspd/internal/metrics"
	"sspd/internal/trace"
)

// This file wires the federation into the observability layer: a metric
// registry whose collector derives every system-level signal (per-query
// PR_k, federation PR_max, coordinator-tree events, relay traffic, edge
// cut) from live state at scrape time, and the per-tuple tracer that
// Publish stamps spans from.

// MetricsRegistry returns the federation's metric registry; the portal
// serves it at GET /metrics.
func (f *Federation) MetricsRegistry() *metrics.Registry { return f.registry }

// EnableTracing installs a per-tuple tracer sampling one in `every`
// published tuples (every <= 0 disables; 1 traces everything), keeping
// the most recent `capacity` spans (<= 0 uses trace.DefaultCapacity).
// The tracer is installed process-wide so relays and entity processors
// can record hops without plumbing; Close uninstalls it.
func (f *Federation) EnableTracing(every, capacity int) (*trace.Tracer, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.tracer != nil {
		return nil, fmt.Errorf("core: tracing already enabled")
	}
	t := trace.New(every, capacity)
	f.tracer = t
	trace.SetActive(t)
	// The tracer has ONE completion hook; the federation dispatcher fans
	// completions out to whichever planes are live (latency attribution,
	// the AM routing plane) through copy-on-write pointers, so the hook
	// itself never takes f.mu.
	t.SetOnComplete(f.dispatchSpanComplete)
	return t, nil
}

// Tracer returns the installed tracer, or nil when tracing is disabled.
func (f *Federation) Tracer() *trace.Tracer {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.tracer
}

// ControlStats sums the reliable control plane's counters across every
// relay: upward-registration retries and stale/duplicate registrations
// suppressed by receivers. Both are zero unless ReliableControl is on.
func (f *Federation) ControlStats() (retries, suppressed int64) {
	f.mu.Lock()
	relays := make([]*dissemination.Relay, 0, len(f.relayIndex))
	for _, r := range f.relayIndex {
		relays = append(relays, r)
	}
	f.mu.Unlock()
	for _, r := range relays {
		if rel := r.Reliable(); rel != nil {
			retries += rel.Retries.Value()
			suppressed += rel.Suppressed.Value()
		}
	}
	return retries, suppressed
}

// QueryPR reports one query's Performance Ratio PR_k = d_k / p_k as
// measured by its hosting entity's engines. ok is false when the query
// is unknown or its engines expose no metrics (e.g. MiniEngine).
func (f *Federation) QueryPR(id string) (pr float64, ok bool) {
	f.mu.Lock()
	fq, found := f.queries[id]
	var en *entityNode
	if found {
		en = f.entities[fq.entity]
	}
	f.mu.Unlock()
	if en == nil {
		return 0, false
	}
	d, p, has := en.ent.QueryPerf(id)
	if !has || p <= 0 {
		return 0, false
	}
	return d / p, true
}

// PRMax returns the federation-wide maximum Performance Ratio
// max_k(d_k / p_k) over queries with measured metrics — the paper's
// Section 4.1 migration trigger — along with the query achieving it.
func (f *Federation) PRMax() (pr float64, query string) {
	f.mu.Lock()
	ids := make([]string, 0, len(f.queries))
	for id := range f.queries {
		ids = append(ids, id)
	}
	f.mu.Unlock()
	for _, id := range ids {
		if v, ok := f.QueryPR(id); ok && v > pr {
			pr, query = v, id
		}
	}
	return pr, query
}

// collectMetrics is the registry collector: it derives every
// federation-level metric from live state at scrape time.
func (f *Federation) collectMetrics(emit func(metrics.Sample)) {
	f.mu.Lock()
	entityIDs := f.entityIDsLocked()
	queryIDs := make([]string, 0, len(f.queries))
	for id := range f.queries {
		queryIDs = append(queryIDs, id)
	}
	queryEntity := make(map[string]*entityNode, len(queryIDs))
	for _, id := range queryIDs {
		queryEntity[id] = f.entities[f.queries[id].entity]
	}
	entities := make([]*entityNode, 0, len(entityIDs))
	for _, id := range entityIDs {
		entities = append(entities, f.entities[id])
	}
	streams := f.streamNamesLocked()
	type relayStats struct {
		delivered, relayed, suppressed int64
		bytes, messages                int64
	}
	perStream := make(map[string]*relayStats, len(streams))
	for _, s := range streams {
		st := &relayStats{}
		if src := f.sources[s]; src != nil && src.relay != nil {
			st.relayed += src.relay.Relayed.Value()
			st.suppressed += src.relay.Suppressed.Value()
			st.bytes += src.relay.LinkBytes.Bytes()
			st.messages += src.relay.LinkBytes.Messages()
		}
		for _, en := range entities {
			if relay := en.relays[s]; relay != nil {
				st.delivered += relay.Delivered.Value()
				st.relayed += relay.Relayed.Value()
				st.suppressed += relay.Suppressed.Value()
				st.bytes += relay.LinkBytes.Bytes()
				st.messages += relay.LinkBytes.Messages()
			}
		}
		perStream[s] = st
	}
	coordEvents := f.coord.Events()
	tracer := f.tracer
	started := f.started
	relays := make([]*dissemination.Relay, 0, len(f.relayIndex))
	for _, r := range f.relayIndex {
		relays = append(relays, r)
	}
	f.mu.Unlock()

	// Robustness signals: per-link send failures, per-kind decode
	// failures, and the reliable control plane's retry/suppression/
	// give-up totals.
	sendErrs := make(map[string]int64)
	decodeErrs := make(map[string]int64)
	var relRetries, relSuppressed int64
	for _, r := range relays {
		for link, n := range r.SendErrorsByLink() {
			sendErrs[string(link)] += n
		}
		for kind, n := range r.DecodeErrorsByKind() {
			decodeErrs[kind] += n
		}
		if rel := r.Reliable(); rel != nil {
			relRetries += rel.Retries.Value()
			relSuppressed += rel.Suppressed.Value()
		}
	}

	gauge := func(name, help string, v float64, labels ...metrics.Label) {
		emit(metrics.Sample{Name: name, Help: help, Kind: metrics.KindGauge, Labels: labels, Value: v})
	}
	counter := func(name, help string, v float64, labels ...metrics.Label) {
		emit(metrics.Sample{Name: name, Help: help, Kind: metrics.KindCounter, Labels: labels, Value: v})
	}

	gauge("sspd_entities", "Number of entities in the federation.", float64(len(entityIDs)))
	gauge("sspd_queries", "Number of active queries.", float64(len(queryIDs)))

	// Per-query d_k, p_k, PR_k and the federation PR_max. Every active
	// query gets a PR series (0 until its engines have measured), so
	// dashboards see the full query population immediately.
	prMax := 0.0
	sort.Strings(queryIDs)
	for _, id := range queryIDs {
		var d, p float64
		if en := queryEntity[id]; en != nil {
			d, p, _ = en.ent.QueryPerf(id)
		}
		pr := 0.0
		if p > 0 {
			pr = d / p
		}
		if pr > prMax {
			prMax = pr
		}
		lq := metrics.L("query", id)
		gauge("sspd_query_delay_seconds", "Mean result delay d_k per query.", d, lq)
		gauge("sspd_query_processing_seconds", "Mean processing time p_k per query.", p, lq)
		gauge("sspd_pr_ratio", "Performance Ratio PR_k = d_k / p_k per query.", pr, lq)
	}
	gauge("sspd_pr_max", "Federation-wide maximum Performance Ratio max_k(d_k/p_k).", prMax)

	for i, id := range entityIDs {
		gauge("sspd_entity_load", "Entity engine load (query-graph vertex weight).",
			entities[i].ent.Load(), metrics.L("entity", id))
	}

	counter("sspd_coordinator_events_total", "Coordinator-tree maintenance operations by type.",
		float64(coordEvents.Joins), metrics.L("event", "join"))
	counter("sspd_coordinator_events_total", "Coordinator-tree maintenance operations by type.",
		float64(coordEvents.Leaves), metrics.L("event", "leave"))
	counter("sspd_coordinator_events_total", "Coordinator-tree maintenance operations by type.",
		float64(coordEvents.Fails), metrics.L("event", "fail"))
	counter("sspd_coordinator_events_total", "Coordinator-tree maintenance operations by type.",
		float64(coordEvents.Splits), metrics.L("event", "split"))
	counter("sspd_coordinator_events_total", "Coordinator-tree maintenance operations by type.",
		float64(coordEvents.Merges), metrics.L("event", "merge"))
	counter("sspd_coordinator_events_total", "Coordinator-tree maintenance operations by type.",
		float64(coordEvents.Recenters), metrics.L("event", "recenter"))

	for _, s := range streams {
		st := perStream[s]
		ls := metrics.L("stream", s)
		counter("sspd_relay_delivered_total", "Tuples delivered to local entities per stream.",
			float64(st.delivered), ls)
		counter("sspd_relay_relayed_total", "Tuples forwarded on downstream links per stream.",
			float64(st.relayed), ls)
		counter("sspd_relay_suppressed_total", "Tuples early filtering kept off downstream links per stream.",
			float64(st.suppressed), ls)
		counter("sspd_relay_link_bytes_total", "Encoded bytes sent on dissemination links per stream.",
			float64(st.bytes), ls)
		counter("sspd_relay_link_messages_total", "Messages sent on dissemination links per stream.",
			float64(st.messages), ls)
	}

	counter("sspd_rebalance_moves_total", "Queries migrated by the auto-rebalance loop.",
		float64(f.rebalanceMoves.Value()))

	counter("sspd_migrations_total", "Live migrations by outcome.",
		float64(f.migCommits.Value()), metrics.L("outcome", "commit"))
	counter("sspd_migrations_total", "Live migrations by outcome.",
		float64(f.migRollbacks.Value()), metrics.L("outcome", "rollback"))
	counter("sspd_migration_state_bytes_total", "Serialized operator-state bytes transferred by live migrations.",
		float64(f.migStateBytes.Value()))
	counter("sspd_migration_replayed_total", "Buffered tuples replayed at migration destinations.",
		float64(f.migReplayed.Value()))
	counter("sspd_adaptation_moves_total", "Queries migrated by the adaptation controller.",
		float64(f.adaptMoves.Value()))

	// Durability and crash-recovery signals (checkpoint plane; the
	// write/byte counters stay zero until EnableCheckpoints).
	ck := f.Checkpoints()
	counter("sspd_checkpoints_total", "Checkpoint records written and replicated.",
		float64(ck.Writes))
	counter("sspd_checkpoint_bytes_total", "Encoded checkpoint bytes shipped to replicas.",
		float64(ck.WireBytes))
	counter("sspd_checkpoint_quorum_total", "Checkpoints acknowledged by a replica quorum.",
		float64(ck.QuorumAcked))
	counter("sspd_checkpoint_errors_total", "Checkpoint attempts that failed before replication.",
		float64(ck.Errors))
	counter("sspd_checkpoint_corrupt_total", "Checkpoint records rejected as corrupt (CRC or torn chunks).",
		float64(ck.Corrupt))
	counter("sspd_checkpoint_stale_total", "Checkpoint records rejected as stale (older sequence).",
		float64(ck.StaleDrops))
	counter("sspd_recoveries_total", "Crash-recovered queries by outcome.",
		float64(f.recRestored.Value()), metrics.L("outcome", "restored"))
	counter("sspd_recoveries_total", "Crash-recovered queries by outcome.",
		float64(f.recStateless.Value()), metrics.L("outcome", "stateless"))
	counter("sspd_recoveries_total", "Crash-recovered queries by outcome.",
		float64(f.recFailed.Value()), metrics.L("outcome", "failed"))
	counter("sspd_recovery_replayed_total", "Tuples replayed through recovered queries' gates.",
		float64(f.recReplayed.Value()))
	counter("sspd_recovery_replay_fetched_total", "Tuples fetched from the upstream replay rings during recoveries.",
		float64(f.recReplayFetched.Value()))
	counter("sspd_entity_fail_errors_total", "Detector-confirmed expulsions whose FailEntity call failed.",
		float64(f.entityFailErrors.Value()))

	links := make([]string, 0, len(sendErrs))
	for l := range sendErrs {
		links = append(links, l)
	}
	sort.Strings(links)
	for _, l := range links {
		counter("sspd_relay_send_errors_total", "Transport sends a relay could not complete, by destination link.",
			float64(sendErrs[l]), metrics.L("link", l))
	}
	kinds := make([]string, 0, len(decodeErrs))
	for k := range decodeErrs {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		counter("sspd_relay_decode_errors_total", "Payloads relays dropped as undecodable, by message kind.",
			float64(decodeErrs[k]), metrics.L("kind", k))
	}
	counter("sspd_control_giveups_total", "Control-plane deliveries abandoned after exhausting retries.",
		float64(f.controlGiveUps.Value()))
	counter("sspd_control_retries_total", "Control-plane delivery retries by the reliable endpoints.",
		float64(relRetries))
	counter("sspd_control_suppressed_total", "Stale or duplicate control messages suppressed by receivers.",
		float64(relSuppressed))

	// Edge cut of the live allocation: query-graph edge weight crossing
	// entity boundaries (QueryGraph locks internally; must be outside
	// f.mu).
	if started && len(queryIDs) > 0 {
		g := f.QueryGraph(0)
		p, _ := f.Assignment()
		gauge("sspd_edge_cut", "Query-graph edge weight (bytes/sec) crossing entity boundaries.",
			g.EdgeCut(p))
	}

	if tracer != nil {
		gauge("sspd_trace_sample_every", "Trace sampling divisor (0 = disabled).",
			float64(tracer.SampleEvery()))
		gauge("sspd_trace_spans", "Trace spans currently buffered.", float64(tracer.Len()))
		counter("sspd_trace_sampled_total", "Tuples sampled into trace spans.",
			float64(tracer.Sampled.Value()))
		counter("sspd_trace_hops_total", "Hops recorded across all spans.",
			float64(tracer.Hops.Value()))
		counter("sspd_trace_evicted_total", "Spans evicted by ring wraparound.",
			float64(tracer.Evicted.Value()))
		counter("sspd_trace_dropped_hops_total", "Hops dropped (span evicted or hop cap hit).",
			float64(tracer.DroppedHops.Value()))
	}
}
