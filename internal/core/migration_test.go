package core

import (
	"sort"
	"sync"
	"testing"
	"time"

	"sspd/internal/dissemination"
	"sspd/internal/engine"
	"sspd/internal/simnet"
	"sspd/internal/stream"
	"sspd/internal/workload"
)

// countQuery is an ungrouped windowed count — the order-insensitive
// continuity probe: once the window is warm, every result's value must
// equal the window size, whatever order tuples arrived in.
func countQuery(id string, window int) engine.QuerySpec {
	return engine.QuerySpec{
		ID:     id,
		Source: "quotes",
		Agg: &engine.AggSpec{Fn: 0 /* AggCount */, ValueField: "price",
			Window: stream.CountWindow(window)},
		Load: 5,
	}
}

func symbolJoinQuery(id string) engine.QuerySpec {
	return engine.QuerySpec{
		ID:     id,
		Source: "quotes",
		Join: &engine.JoinSpec{Stream: "trades", LeftKey: "symbol",
			RightKey: "symbol", Window: stream.CountWindow(32), Cost: 1},
		Load: 5,
	}
}

// seqLog records, per result tuple, how many results each input seq
// produced plus every aggregate value seen (field 1).
type seqLog struct {
	mu     sync.Mutex
	counts map[uint64]int
	values []float64
}

func (l *seqLog) observe(t stream.Tuple) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.counts == nil {
		l.counts = map[uint64]int{}
	}
	l.counts[t.Seq]++
	if len(t.Values) > 1 {
		l.values = append(l.values, t.Value(1).AsFloat())
	}
}

func (l *seqLog) snapshot() (map[uint64]int, []float64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	c := make(map[uint64]int, len(l.counts))
	for k, v := range l.counts {
		c[k] = v
	}
	return c, append([]float64(nil), l.values...)
}

// assertWindowContinuity checks the count-window invariant: sorted
// ascending, the values must be 1, 2, ..., window-1 and then the window
// size for every remaining result. A restarted (lost) window would
// repeat the warmup ramp; a duplicated replay would repeat values.
func assertWindowContinuity(t *testing.T, values []float64, window int) {
	t.Helper()
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	for i, v := range sorted {
		want := float64(i + 1)
		if want > float64(window) {
			want = float64(window)
		}
		if v != want {
			t.Fatalf("window continuity broken: sorted value[%d] = %v, want %v "+
				"(window restarted or replay duplicated)", i, v, want)
		}
	}
}

// TestLiveMigrationStatefulUnderLoad is the headline acceptance
// property: a windowed aggregate AND a windowed join migrate across
// three entities while quote batches are in flight, and every published
// tuple yields its results exactly once, with window contents carried
// across each hop.
func TestLiveMigrationStatefulUnderLoad(t *testing.T) {
	const window = 64
	fed, _ := newTestFederation(t, 3)

	aggLog, joinLog := &seqLog{}, &seqLog{}
	if err := fed.SubmitQueryTo(countQuery("agg", window), "e00", aggLog.observe); err != nil {
		t.Fatal(err)
	}
	if err := fed.SubmitQueryTo(symbolJoinQuery("join"), "e00", joinLog.observe); err != nil {
		t.Fatal(err)
	}
	fed.Settle(2 * time.Second)

	// Fix the trade-side join windows first, so each quote's match count
	// is independent of migration timing.
	tick := workload.NewTicker(5, 100, 1.2)
	var trades stream.Batch
	for i := 0; i < 200; i++ {
		trades = append(trades, tick.NextTrade())
	}
	if err := fed.Publish("trades", trades); err != nil {
		t.Fatal(err)
	}
	fed.Settle(2 * time.Second)

	// Publish quote batches with a migration between each — WITHOUT
	// settling first, so tuples are in flight when the source pauses.
	var quotes []stream.Batch
	hops := []string{"e01", "e02", "e00"}
	publish := func(k int) {
		b := tick.Batch(k)
		quotes = append(quotes, b)
		if err := fed.Publish("quotes", b); err != nil {
			t.Fatal(err)
		}
	}
	publish(100) // warm the windows past one full turn
	for _, to := range hops {
		publish(50)
		if err := fed.MigrateQuery("agg", to); err != nil {
			t.Fatalf("migrate agg -> %s: %v", to, err)
		}
		if err := fed.MigrateQuery("join", to); err != nil {
			t.Fatalf("migrate join -> %s: %v", to, err)
		}
	}
	publish(50)
	fed.Settle(2 * time.Second)

	if e, _ := fed.QueryEntity("agg"); e != "e00" {
		t.Fatalf("agg landed on %s, want e00", e)
	}

	// An oracle engine fed the identical tuple sequence defines ground
	// truth for the join's per-seq result counts.
	oracle := engine.NewMini("oracle", workload.Catalog(100, 20))
	defer oracle.Close()
	oracleJoin := &seqLog{}
	if err := oracle.Register(symbolJoinQuery("join"), oracleJoin.observe); err != nil {
		t.Fatal(err)
	}
	oracle.IngestBatch(trades)
	for _, b := range quotes {
		oracle.IngestBatch(b)
	}

	aggCounts, aggValues := aggLog.snapshot()
	published := 0
	for _, b := range quotes {
		published += len(b)
		for _, tu := range b {
			switch aggCounts[tu.Seq] {
			case 1:
			case 0:
				t.Fatalf("tuple seq %d lost across migration", tu.Seq)
			default:
				t.Fatalf("tuple seq %d processed %d times", tu.Seq, aggCounts[tu.Seq])
			}
		}
	}
	if len(aggValues) != published {
		t.Fatalf("agg results = %d, want %d", len(aggValues), published)
	}
	assertWindowContinuity(t, aggValues, window)

	joinCounts, _ := joinLog.snapshot()
	wantJoin, _ := oracleJoin.snapshot()
	if len(joinCounts) != len(wantJoin) {
		t.Fatalf("join produced results for %d seqs, oracle %d", len(joinCounts), len(wantJoin))
	}
	for seq, want := range wantJoin {
		if joinCounts[seq] != want {
			t.Fatalf("join seq %d: %d results, oracle %d", seq, joinCounts[seq], want)
		}
	}

	// Six committed hops, all stateful, all with serialized state.
	recs := fed.Migrations()
	if len(recs) != 2*len(hops) {
		t.Fatalf("migration history has %d records, want %d", len(recs), 2*len(hops))
	}
	for _, r := range recs {
		if r.Outcome != "commit" {
			t.Fatalf("migration %s %s->%s: outcome %s (%s)", r.Query, r.From, r.To, r.Outcome, r.Reason)
		}
		if !r.Stateful || r.StateBytes <= 0 {
			t.Fatalf("migration %s: stateful=%v state_bytes=%d", r.Query, r.Stateful, r.StateBytes)
		}
	}
}

// TestMigrationRollbackLeavesSourceRunning injects a destination
// placement failure (a conflicting query already occupies the
// destination) and asserts the protocol's first promise: the query
// keeps running on the source, state intact, zero results lost.
func TestMigrationRollbackLeavesSourceRunning(t *testing.T) {
	const window = 16
	fed, _ := newTestFederation(t, 2)
	log := &seqLog{}
	if err := fed.SubmitQueryTo(countQuery("agg", window), "e00", log.observe); err != nil {
		t.Fatal(err)
	}
	fed.Settle(2 * time.Second)

	tick := workload.NewTicker(9, 100, 1.2)
	var published stream.Batch
	publish := func(k int) {
		b := tick.Batch(k)
		published = append(published, b...)
		if err := fed.Publish("quotes", b); err != nil {
			t.Fatal(err)
		}
		fed.Settle(2 * time.Second)
	}
	publish(40)

	// Occupy the destination with a conflicting placement: a spec with
	// the same ID that matches nothing (negative price band).
	blocker := engine.QuerySpec{
		ID:     "agg",
		Source: "quotes",
		Filters: []engine.FilterSpec{
			{Field: "price", Lo: -10, Hi: -1, Cost: 1},
		},
	}
	fed.mu.Lock()
	dest := fed.entities["e01"]
	fed.mu.Unlock()
	if err := dest.ent.PlaceQuery(blocker, 1); err != nil {
		t.Fatal(err)
	}

	if err := fed.MigrateQuery("agg", "e01"); err == nil {
		t.Fatal("migration onto occupied destination succeeded")
	}
	if e, _ := fed.QueryEntity("agg"); e != "e00" {
		t.Fatalf("query moved to %s despite failed migration", e)
	}
	recs := fed.Migrations()
	if len(recs) != 1 || recs[0].Outcome != "rollback" {
		t.Fatalf("migration history = %+v, want one rollback", recs)
	}

	// The source must still answer, with its window intact.
	if _, err := dest.ent.RemoveQuery("agg"); err != nil {
		t.Fatal(err)
	}
	publish(40)
	counts, values := log.snapshot()
	for _, tu := range published {
		if counts[tu.Seq] != 1 {
			t.Fatalf("seq %d delivered %d times, want 1", tu.Seq, counts[tu.Seq])
		}
	}
	assertWindowContinuity(t, values, window)
}

// TestRemoveQueryBlockedDuringMigration pins the books-vs-entity
// invariant: RemoveQuery refuses to race a live migration.
func TestRemoveQueryBlockedDuringMigration(t *testing.T) {
	fed, _ := newTestFederation(t, 2)
	if err := fed.SubmitQueryTo(countQuery("agg", 8), "e00", nil); err != nil {
		t.Fatal(err)
	}
	fed.mu.Lock()
	fed.queries["agg"].migrating = true
	fed.mu.Unlock()
	if err := fed.RemoveQuery("agg"); err == nil {
		t.Fatal("RemoveQuery succeeded mid-migration")
	}
	fed.mu.Lock()
	fed.queries["agg"].migrating = false
	fed.mu.Unlock()
	if err := fed.RemoveQuery("agg"); err != nil {
		t.Fatal(err)
	}
}

// newAdaptFederation mirrors newTestFederation with caller options —
// the adaptation tests need the hysteresis knob.
func newAdaptFederation(t *testing.T, nEntities int, opts Options) *Federation {
	t.Helper()
	net := simnet.NewSim(nil)
	t.Cleanup(func() { net.Close() })
	fed, err := New(net, workload.Catalog(100, 20), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fed.Close)
	if err := fed.AddSource("quotes", simnet.Point{}, StreamRate{TuplesPerSec: 1000, BytesPerTuple: 60}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nEntities; i++ {
		id := string(rune('a'+i)) + "nt"
		if err := fed.AddEntity(id, simnet.Point{X: float64(10 + i*10)}, 2, miniFactory); err != nil {
			t.Fatal(err)
		}
	}
	if err := fed.Start(); err != nil {
		t.Fatal(err)
	}
	return fed
}

// TestAdaptOnceRebalancesByMigration piles disjoint-interest queries on
// one entity and runs a single controller round: the repartitioner must
// spread them, and every move must go through the live-migration path
// (visible in the migration history as commits).
func TestAdaptOnceRebalancesByMigration(t *testing.T) {
	fed := newAdaptFederation(t, 2, Options{
		Strategy: dissemination.Locality, Fanout: 3,
		AdaptationHysteresis: 1e-3,
	})
	syms := [][]string{{"s0"}, {"s1"}, {"s2"}, {"s3"}}
	for i, s := range syms {
		q := priceQuery("q"+s[0], float64(i*10), float64(i*10+5), s...)
		if err := fed.SubmitQueryTo(q, "ant", nil); err != nil {
			t.Fatal(err)
		}
	}
	fed.Settle(time.Second)

	moved, err := fed.AdaptOnce()
	if err != nil {
		t.Fatal(err)
	}
	if moved == 0 {
		t.Fatal("controller round moved nothing off a 4-0 imbalance")
	}
	if fed.AdaptationMoves() != int64(moved) {
		t.Fatalf("AdaptationMoves = %d, want %d", fed.AdaptationMoves(), moved)
	}
	perEntity := map[string]int{}
	for _, s := range syms {
		e, ok := fed.QueryEntity("q" + s[0])
		if !ok {
			t.Fatalf("query q%s vanished", s[0])
		}
		perEntity[e]++
	}
	if perEntity["ant"] == 4 {
		t.Fatalf("assignment still 4-0: %v", perEntity)
	}
	recs := fed.Migrations()
	if len(recs) != moved {
		t.Fatalf("%d moves but %d migration records", moved, len(recs))
	}
	for _, r := range recs {
		if r.Outcome != "commit" {
			t.Fatalf("adaptation move rolled back: %+v", r)
		}
	}

	// A second round from the balanced state must hold still.
	again, err := fed.AdaptOnce()
	if err != nil {
		t.Fatal(err)
	}
	if again != 0 {
		t.Fatalf("controller oscillated: second round moved %d", again)
	}
}

// TestAdaptationHysteresisBlocksMarginalMoves is the damping contract:
// with the default (high) hysteresis, the same imbalance is left alone
// because the migration cost outweighs the modeled gain.
func TestAdaptationHysteresisBlocksMarginalMoves(t *testing.T) {
	fed := newAdaptFederation(t, 2, Options{
		Strategy: dissemination.Locality, Fanout: 3,
		AdaptationHysteresis: 1e6,
	})
	for i := 0; i < 4; i++ {
		q := priceQuery("q"+string(rune('0'+i)), float64(i*10), float64(i*10+5))
		if err := fed.SubmitQueryTo(q, "ant", nil); err != nil {
			t.Fatal(err)
		}
	}
	moved, err := fed.AdaptOnce()
	if err != nil {
		t.Fatal(err)
	}
	if moved != 0 {
		t.Fatalf("hysteresis %v still allowed %d moves", 1e6, moved)
	}
	if len(fed.Migrations()) != 0 {
		t.Fatalf("skipped moves left migration records: %+v", fed.Migrations())
	}
}

// TestAdaptationControllerBackground exercises the opt-in loop end to
// end: EnableAdaptation starts the controller at Start, it notices the
// imbalance by itself, and StopAdaptation / Close are idempotent.
func TestAdaptationControllerBackground(t *testing.T) {
	fed := newAdaptFederation(t, 2, Options{
		Strategy: dissemination.Locality, Fanout: 3,
		EnableAdaptation:     true,
		AdaptationInterval:   25 * time.Millisecond,
		AdaptationHysteresis: 1e-3,
	})
	syms := [][]string{{"s0"}, {"s1"}, {"s2"}, {"s3"}}
	for i, s := range syms {
		q := priceQuery("q"+s[0], float64(i*10), float64(i*10+5), s...)
		if err := fed.SubmitQueryTo(q, "ant", nil); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for fed.AdaptationMoves() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background controller never moved a query")
		}
		time.Sleep(10 * time.Millisecond)
	}
	fed.StopAdaptation()
	fed.StopAdaptation() // idempotent
	if err := fed.StartAdaptation(); err != nil {
		t.Fatal(err)
	}
	fed.StopAdaptation()
}
