package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"sspd/internal/dissemination"
	"sspd/internal/engine"
	"sspd/internal/querygraph"
	"sspd/internal/simnet"
	"sspd/internal/stream"
	"sspd/internal/workload"
)

func miniFactory(name string, c *stream.Catalog) engine.Processor {
	return engine.NewMini(name, c)
}

// newTestFederation builds a started federation: one quotes source,
// nEntities entities on a line, synchronous engines.
func newTestFederation(t *testing.T, nEntities int) (*Federation, *simnet.SimNet) {
	t.Helper()
	net := simnet.NewSim(nil)
	t.Cleanup(func() { net.Close() })
	catalog := workload.Catalog(100, 20)
	fed, err := New(net, catalog, Options{Strategy: dissemination.Locality, Fanout: 3})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fed.Close)
	if err := fed.AddSource("quotes", simnet.Point{}, StreamRate{TuplesPerSec: 1000, BytesPerTuple: 60}); err != nil {
		t.Fatal(err)
	}
	if err := fed.AddSource("trades", simnet.Point{X: 5}, StreamRate{TuplesPerSec: 500, BytesPerTuple: 40}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nEntities; i++ {
		id := fmt.Sprintf("e%02d", i)
		if err := fed.AddEntity(id, simnet.Point{X: float64(10 + i*10)}, 2, miniFactory); err != nil {
			t.Fatal(err)
		}
	}
	if err := fed.Start(); err != nil {
		t.Fatal(err)
	}
	return fed, net
}

func priceQuery(id string, lo, hi float64, symbols ...string) engine.QuerySpec {
	spec := engine.QuerySpec{
		ID:     id,
		Source: "quotes",
		Filters: []engine.FilterSpec{
			{Field: "price", Lo: lo, Hi: hi, Cost: 1},
		},
		Load: 5,
	}
	if len(symbols) > 0 {
		spec.Filters = append(spec.Filters,
			engine.FilterSpec{KeyField: "symbol", Keys: symbols, Cost: 1})
	}
	return spec
}

func TestFederationLifecycleErrors(t *testing.T) {
	net := simnet.NewSim(nil)
	defer net.Close()
	catalog := workload.Catalog(10, 10)
	if _, err := New(nil, catalog, Options{}); err == nil {
		t.Error("nil transport accepted")
	}
	if _, err := New(net, nil, Options{}); err == nil {
		t.Error("nil catalog accepted")
	}
	fed, err := New(net, catalog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer fed.Close()
	if err := fed.Start(); err == nil {
		t.Error("start without sources accepted")
	}
	if err := fed.AddSource("nostream", simnet.Point{}, StreamRate{}); err == nil {
		t.Error("unknown stream source accepted")
	}
	if err := fed.AddSource("quotes", simnet.Point{}, StreamRate{}); err != nil {
		t.Fatal(err)
	}
	if err := fed.AddSource("quotes", simnet.Point{}, StreamRate{}); err == nil {
		t.Error("duplicate source accepted")
	}
	if err := fed.Start(); err == nil {
		t.Error("start without entities accepted")
	}
	if err := fed.AddEntity("e1", simnet.Point{}, 1, miniFactory); err != nil {
		t.Fatal(err)
	}
	if err := fed.AddEntity("e1", simnet.Point{}, 1, miniFactory); err == nil {
		t.Error("duplicate entity accepted")
	}
	if err := fed.Publish("quotes", nil); err == nil {
		t.Error("publish before start accepted")
	}
	if _, err := fed.SubmitQuery(priceQuery("q", 0, 1), simnet.Point{}, nil); err == nil {
		t.Error("submit before start accepted")
	}
	if err := fed.Start(); err != nil {
		t.Fatal(err)
	}
	if err := fed.Start(); err == nil {
		t.Error("double start accepted")
	}
	if err := fed.AddSource("trades", simnet.Point{}, StreamRate{}); err == nil {
		t.Error("source after start accepted")
	}
	if err := fed.AddEntity("e2", simnet.Point{}, 1, miniFactory); err == nil {
		t.Error("entity after start accepted")
	}
}

func TestFederationEndToEnd(t *testing.T) {
	fed, net := newTestFederation(t, 4)
	var mu sync.Mutex
	results := 0
	entityID, err := fed.SubmitQuery(priceQuery("q1", 0, 1000), simnet.Point{X: 15},
		func(stream.Tuple) { mu.Lock(); results++; mu.Unlock() })
	if err != nil {
		t.Fatal(err)
	}
	if entityID == "" {
		t.Fatal("no entity chosen")
	}
	if got, ok := fed.QueryEntity("q1"); !ok || got != entityID {
		t.Errorf("QueryEntity = %s/%v", got, ok)
	}
	if !net.Quiesce(2 * time.Second) {
		t.Fatal("quiesce after submit")
	}
	tick := workload.NewTicker(1, 100, 1.2)
	if err := fed.Publish("quotes", tick.Batch(50)); err != nil {
		t.Fatal(err)
	}
	if !net.Quiesce(2 * time.Second) {
		t.Fatal("quiesce after publish")
	}
	mu.Lock()
	got := results
	mu.Unlock()
	if got != 50 {
		t.Errorf("results = %d, want 50 (unbounded price filter)", got)
	}
	if fed.NumQueries() != 1 {
		t.Errorf("queries = %d", fed.NumQueries())
	}
	// Charges accrue to the hosting entity.
	if fed.Ledger().Charge(entityID) <= 0 {
		t.Error("no charge accrued")
	}
}

func TestFederationEarlyFilteringAcrossLayers(t *testing.T) {
	fed, net := newTestFederation(t, 4)
	// A very narrow query: interest registration should suppress most
	// tuples near the source.
	if _, err := fed.SubmitQuery(priceQuery("q1", 0, 10, "S0000"), simnet.Point{X: 15}, nil); err != nil {
		t.Fatal(err)
	}
	if !net.Quiesce(2 * time.Second) {
		t.Fatal("quiesce")
	}
	net.Traffic().Reset()
	tick := workload.NewTicker(2, 100, 1.2)
	if err := fed.Publish("quotes", tick.Batch(200)); err != nil {
		t.Fatal(err)
	}
	if !net.Quiesce(2 * time.Second) {
		t.Fatal("quiesce")
	}
	narrow := net.Traffic().TotalBytes()

	// Same workload with a match-everything query added: much more
	// traffic flows.
	if _, err := fed.SubmitQuery(priceQuery("q2", 0, 1000), simnet.Point{X: 15}, nil); err != nil {
		t.Fatal(err)
	}
	if !net.Quiesce(2 * time.Second) {
		t.Fatal("quiesce")
	}
	net.Traffic().Reset()
	tick2 := workload.NewTicker(2, 100, 1.2)
	if err := fed.Publish("quotes", tick2.Batch(200)); err != nil {
		t.Fatal(err)
	}
	if !net.Quiesce(2 * time.Second) {
		t.Fatal("quiesce")
	}
	wide := net.Traffic().TotalBytes()
	if narrow*2 >= wide {
		t.Errorf("early filtering ineffective: narrow=%d wide=%d", narrow, wide)
	}
}

func TestFederationRemoveQuery(t *testing.T) {
	fed, net := newTestFederation(t, 2)
	if _, err := fed.SubmitQuery(priceQuery("q1", 0, 1000), simnet.Point{}, nil); err != nil {
		t.Fatal(err)
	}
	if err := fed.RemoveQuery("q1"); err != nil {
		t.Fatal(err)
	}
	if err := fed.RemoveQuery("q1"); err == nil {
		t.Error("double remove accepted")
	}
	if fed.NumQueries() != 0 {
		t.Error("query count after removal")
	}
	_ = net
}

func TestFederationDuplicateSubmit(t *testing.T) {
	fed, _ := newTestFederation(t, 2)
	if _, err := fed.SubmitQuery(priceQuery("q1", 0, 1), simnet.Point{}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := fed.SubmitQuery(priceQuery("q1", 0, 1), simnet.Point{}, nil); err == nil {
		t.Error("duplicate submit accepted")
	}
	if err := fed.SubmitQueryTo(priceQuery("q1", 0, 1), "e00", nil); err == nil {
		t.Error("duplicate SubmitQueryTo accepted")
	}
	if err := fed.SubmitQueryTo(priceQuery("q2", 0, 1), "nope", nil); err == nil {
		t.Error("unknown entity accepted")
	}
}

func TestFederationMigration(t *testing.T) {
	fed, net := newTestFederation(t, 3)
	var mu sync.Mutex
	results := 0
	entityID, err := fed.SubmitQuery(priceQuery("q1", 0, 1000), simnet.Point{},
		func(stream.Tuple) { mu.Lock(); results++; mu.Unlock() })
	if err != nil {
		t.Fatal(err)
	}
	target := ""
	for _, id := range fed.EntityIDs() {
		if id != entityID {
			target = id
			break
		}
	}
	if err := fed.MigrateQuery("q1", target); err != nil {
		t.Fatal(err)
	}
	if got, _ := fed.QueryEntity("q1"); got != target {
		t.Fatalf("query on %s, want %s", got, target)
	}
	// Self-migration is a no-op; unknowns error.
	if err := fed.MigrateQuery("q1", target); err != nil {
		t.Error("self migration errored")
	}
	if err := fed.MigrateQuery("zz", target); err == nil {
		t.Error("unknown query migration accepted")
	}
	if err := fed.MigrateQuery("q1", "zz"); err == nil {
		t.Error("unknown target migration accepted")
	}
	if !net.Quiesce(2 * time.Second) {
		t.Fatal("quiesce")
	}
	// The migrated query still produces results.
	tick := workload.NewTicker(3, 100, 1.2)
	if err := fed.Publish("quotes", tick.Batch(20)); err != nil {
		t.Fatal(err)
	}
	if !net.Quiesce(2 * time.Second) {
		t.Fatal("quiesce")
	}
	mu.Lock()
	got := results
	mu.Unlock()
	if got != 20 {
		t.Errorf("post-migration results = %d, want 20", got)
	}
}

func TestFederationQueryGraphAndRebalance(t *testing.T) {
	fed, net := newTestFederation(t, 3)
	// Three co-interested queries piled onto one entity, three unrelated
	// ones also there: rebalancing should spread them with a low cut.
	syms := []string{"S0001", "S0002"}
	for i := 0; i < 3; i++ {
		if err := fed.SubmitQueryTo(priceQuery(fmt.Sprintf("hot%d", i), 0, 500, syms...), "e00", nil); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		sym := fmt.Sprintf("S00%d0", i+1)
		if err := fed.SubmitQueryTo(priceQuery(fmt.Sprintf("cold%d", i), 600, 900, sym), "e00", nil); err != nil {
			t.Fatal(err)
		}
	}
	g := fed.QueryGraph(0)
	if g.NumVertices() != 6 {
		t.Fatalf("graph vertices = %d", g.NumVertices())
	}
	// Co-interested queries share edges.
	if g.EdgeWeight("hot0", "hot1") <= 0 {
		t.Error("no edge between co-interested queries")
	}
	old, ids := fed.Assignment()
	if len(ids) != 3 || len(old) != 6 {
		t.Fatalf("assignment = %v over %v", old, ids)
	}
	moved, err := fed.Rebalance(querygraph.HybridRepartitioner{})
	if err != nil {
		t.Fatal(err)
	}
	if moved == 0 {
		t.Error("rebalance moved nothing off the overloaded entity")
	}
	// Load spread: e00 no longer hosts everything.
	now, _ := fed.Assignment()
	onE00 := 0
	for _, p := range now {
		if p == 0 {
			onE00++
		}
	}
	if onE00 == 6 {
		t.Error("all queries still on e00")
	}
	// Hot queries should stay together (their edges dominate).
	if now["hot0"] != now["hot1"] || now["hot1"] != now["hot2"] {
		t.Logf("hot queries split: %v (acceptable but suboptimal)", now)
	}
	if !net.Quiesce(2 * time.Second) {
		t.Fatal("quiesce")
	}
}

func TestFederationWithHeterogeneousEngines(t *testing.T) {
	// Half the entities run the full engine, half the mini engine — the
	// loose coupling means the federation cannot tell the difference.
	net := simnet.NewSim(nil)
	defer net.Close()
	catalog := workload.Catalog(50, 10)
	fed, err := New(net, catalog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer fed.Close()
	if err := fed.AddSource("quotes", simnet.Point{}, StreamRate{TuplesPerSec: 100, BytesPerTuple: 60}); err != nil {
		t.Fatal(err)
	}
	if err := fed.AddEntity("full", simnet.Point{X: 10}, 1, nil); err != nil {
		t.Fatal(err)
	}
	if err := fed.AddEntity("mini", simnet.Point{X: 20}, 1, miniFactory); err != nil {
		t.Fatal(err)
	}
	if err := fed.Start(); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	counts := map[string]int{}
	for i, target := range []string{"full", "mini"} {
		id := fmt.Sprintf("q%d", i)
		tid := target
		if err := fed.SubmitQueryTo(priceQuery(id, 0, 1000), tid,
			func(stream.Tuple) { mu.Lock(); counts[tid]++; mu.Unlock() }); err != nil {
			t.Fatal(err)
		}
	}
	if !net.Quiesce(2 * time.Second) {
		t.Fatal("quiesce")
	}
	tick := workload.NewTicker(9, 50, 1.2)
	if err := fed.Publish("quotes", tick.Batch(30)); err != nil {
		t.Fatal(err)
	}
	if !net.Quiesce(2 * time.Second) {
		t.Fatal("quiesce")
	}
	// The async engine needs a moment to drain.
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		f, m := counts["full"], counts["mini"]
		mu.Unlock()
		if f == 30 && m == 30 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("counts = full:%d mini:%d, want 30/30", f, m)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestLedger(t *testing.T) {
	now := time.Unix(0, 0)
	l := NewLedger(func() time.Time { return now })
	if err := l.Start("q1", "e1"); err != nil {
		t.Fatal(err)
	}
	if err := l.Start("q1", "e1"); err == nil {
		t.Error("double start accepted")
	}
	now = now.Add(10 * time.Second)
	if got := l.Charge("e1"); got != 10*time.Second {
		t.Errorf("in-flight charge = %v", got)
	}
	if err := l.Move("q1", "e2"); err != nil {
		t.Fatal(err)
	}
	now = now.Add(5 * time.Second)
	if err := l.Stop("q1"); err != nil {
		t.Fatal(err)
	}
	if err := l.Stop("q1"); err == nil {
		t.Error("double stop accepted")
	}
	if err := l.Move("q1", "e3"); err == nil {
		t.Error("move of stopped query accepted")
	}
	if got := l.Charge("e1"); got != 10*time.Second {
		t.Errorf("e1 charge = %v", got)
	}
	if got := l.Charge("e2"); got != 5*time.Second {
		t.Errorf("e2 charge = %v", got)
	}
	charges := l.Charges()
	if len(charges) != 2 || charges[0].Entity != "e1" || charges[1].Entity != "e2" {
		t.Errorf("charges = %v", charges)
	}
	if l.ActiveQueries() != 0 {
		t.Error("active count")
	}
}

func TestBuildQueryGraphEdges(t *testing.T) {
	catalog := workload.Catalog(100, 10)
	rates := map[string]StreamRate{"quotes": {TuplesPerSec: 1000, BytesPerTuple: 100}}
	// Two overlapping queries and one disjoint.
	specs := []engine.QuerySpec{
		priceQuery("a", 0, 100),
		priceQuery("b", 50, 150),
		priceQuery("c", 500, 600),
	}
	g := BuildQueryGraph(specs, catalog, rates, 0)
	if g.NumVertices() != 3 {
		t.Fatalf("vertices = %d", g.NumVertices())
	}
	// Overlap [50,100] = 5% of domain × 100 KB/s = 5000 B/s.
	if got := g.EdgeWeight("a", "b"); got != 5000 {
		t.Errorf("edge a-b = %v, want 5000", got)
	}
	if got := g.EdgeWeight("a", "c"); got != 0 {
		t.Errorf("edge a-c = %v, want 0", got)
	}
	// Rates missing => no edges.
	g2 := BuildQueryGraph(specs, catalog, nil, 0)
	if g2.EdgeWeight("a", "b") != 0 {
		t.Error("edge without rate info")
	}
	if StreamRate(rates["quotes"]).BytesPerSec() != 100000 {
		t.Error("BytesPerSec")
	}
}

func TestFederationDisseminationTreeExposed(t *testing.T) {
	fed, _ := newTestFederation(t, 3)
	tr := fed.DisseminationTree("quotes")
	if tr == nil {
		t.Fatal("no tree")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if fed.DisseminationTree("nostream") != nil {
		t.Error("tree for unknown stream")
	}
	root, h := fed.Coordinator().Root()
	if root == "" || h < 1 {
		t.Error("coordinator tree empty")
	}
	if fed.EntityLoad("nope") != 0 {
		t.Error("load of unknown entity")
	}
}
