package core

import (
	"bytes"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"sspd/internal/dissemination"
	"sspd/internal/obslog"
	"sspd/internal/querygraph"
	"sspd/internal/simnet"
	"sspd/internal/stream"
	"sspd/internal/workload"
)

// settleTicks runs n manual digest periods with the network quiesced
// between them, spaced out enough for rate differentiation.
func settleTicks(fed *Federation, n int) {
	for i := 0; i < n; i++ {
		time.Sleep(15 * time.Millisecond) // dt > the 10ms rate guard
		fed.StatsTick()
		fed.Settle(2 * time.Second)
	}
}

// TestStatsPlaneClusterView is the tentpole integration test: a
// 3-entity simnet federation's root digest covers every entity within
// two digest periods, and the cluster registry renders it as
// sspd_cluster_* Prometheus families.
func TestStatsPlaneClusterView(t *testing.T) {
	net := simnet.NewSim(nil)
	defer net.Close()
	catalog := workload.Catalog(100, 20)
	fed, err := New(net, catalog, Options{Strategy: dissemination.Balanced, Fanout: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer fed.Close()
	if err := fed.AddSource("quotes", simnet.Point{}, StreamRate{TuplesPerSec: 1000, BytesPerTuple: 60}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := fed.AddEntity(fmt.Sprintf("e%02d", i), simnet.Point{X: float64(10 + i*10)}, 2, miniFactory); err != nil {
			t.Fatal(err)
		}
	}
	if err := fed.Start(); err != nil {
		t.Fatal(err)
	}
	if fed.StatsEnabled() {
		t.Fatal("stats plane must be off by default")
	}
	if fed.ClusterRegistry() != nil {
		t.Fatal("cluster registry must be nil before EnableStatsPlane")
	}
	for i := 0; i < 3; i++ {
		if err := fed.SubmitQueryTo(priceQuery(fmt.Sprintf("q%d", i), 0, 1000),
			fmt.Sprintf("e%02d", i), nil); err != nil {
			t.Fatal(err)
		}
	}
	fed.Settle(2 * time.Second)
	if err := fed.EnableStatsPlane(0); err != nil {
		t.Fatal(err)
	}
	if err := fed.EnableStatsPlane(0); err == nil {
		t.Fatal("double enable must fail")
	}

	tick := workload.NewTicker(3, 100, 1.2)
	if err := fed.Publish("quotes", tick.Batch(50)); err != nil {
		t.Fatal(err)
	}
	fed.Settle(2 * time.Second)

	// Acceptance bound: the root view covers the federation within TWO
	// digest periods.
	settleTicks(fed, 2)
	rows, root, ok := fed.ClusterStats()
	if !ok {
		t.Fatal("no root digest")
	}
	if r, _ := fed.Coordinator().Root(); string(r) != root {
		t.Fatalf("root mismatch: %s vs %s", r, root)
	}
	if len(rows) != 3 {
		t.Fatalf("root sees %d rows after two periods, want 3: %v", len(rows), rows)
	}
	for i := 0; i < 3; i++ {
		id := fmt.Sprintf("e%02d", i)
		row, found := rows[id]
		if !found {
			t.Fatalf("missing digest row for %s", id)
		}
		if row.Queries != 1 {
			t.Errorf("%s: digest says %d queries, want 1", id, row.Queries)
		}
		// MiniEngine has no metrics; measured load falls back to the
		// spec estimate, which is positive.
		if l, okq := row.QueryLoads[fmt.Sprintf("q%d", i)]; !okq || l <= 0 {
			t.Errorf("%s: query load missing or non-positive: %v", id, row.QueryLoads)
		}
		if _, oks := row.Streams["quotes"]; !oks {
			t.Errorf("%s: stream stats missing: %+v", id, row.Streams)
		}
		if len(row.PRSpark) == 0 {
			t.Errorf("%s: no PR sparkline samples", id)
		}
	}
	// Leaf relays forward nothing, but the interior of the dissemination
	// tree must have moved real bytes.
	var totalBytes int64
	for _, row := range rows {
		totalBytes += row.Streams["quotes"].Bytes
	}
	if totalBytes <= 0 {
		t.Fatalf("no relay bytes recorded anywhere in the digest: %v", rows)
	}

	// Publish more and tick again: the measured source rate turns
	// positive once two spaced readings exist.
	if err := fed.Publish("quotes", tick.Batch(100)); err != nil {
		t.Fatal(err)
	}
	fed.Settle(2 * time.Second)
	settleTicks(fed, 1)
	if rate := fed.StreamRates()["quotes"]; rate <= 0 {
		t.Fatalf("measured stream rate = %v, want > 0", rate)
	}

	// Health: every entity up and fresh.
	health := fed.ClusterHealth()
	if len(health) != 3 {
		t.Fatalf("health rows = %d, want 3", len(health))
	}
	for _, h := range health {
		if !h.Healthy || !h.Up {
			t.Errorf("%s unexpectedly unhealthy: %+v", h.Entity, h)
		}
	}

	// The cluster registry renders the digest.
	var buf bytes.Buffer
	if err := fed.ClusterRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"sspd_cluster_entities 3",
		`sspd_cluster_entity_load{entity="e00"}`,
		`sspd_cluster_query_load{entity="e01",query="q1"}`,
		`sspd_cluster_stream_bytes_total{entity="e02",stream="quotes"}`,
		`sspd_cluster_entity_up{entity="e00"} 1`,
		"sspd_cluster_pr_max",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("cluster exposition missing %q", want)
		}
	}

	// The StatsSource-fed graph keeps every query vertex.
	g := fed.MeasuredQueryGraph(0)
	if g.NumVertices() != 3 {
		t.Fatalf("measured graph has %d vertices, want 3", g.NumVertices())
	}
	for i := 0; i < 3; i++ {
		if w := g.VertexWeight(querygraph.VertexID(fmt.Sprintf("q%d", i))); w <= 0 {
			t.Errorf("q%d measured vertex weight = %v, want > 0", i, w)
		}
	}
}

// TestStatsPlaneChurn: joining entities start reporting, failed entities
// stop being healthy, and the plane survives both.
func TestStatsPlaneChurn(t *testing.T) {
	net := simnet.NewSim(nil)
	defer net.Close()
	catalog := workload.Catalog(100, 20)
	fed, err := New(net, catalog, Options{Strategy: dissemination.Balanced, Fanout: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer fed.Close()
	if err := fed.AddSource("quotes", simnet.Point{}, StreamRate{TuplesPerSec: 1000, BytesPerTuple: 60}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := fed.AddEntity(fmt.Sprintf("e%02d", i), simnet.Point{X: float64(10 + i*10)}, 1, miniFactory); err != nil {
			t.Fatal(err)
		}
	}
	if err := fed.Start(); err != nil {
		t.Fatal(err)
	}
	if err := fed.EnableStatsPlane(0); err != nil {
		t.Fatal(err)
	}

	if err := fed.JoinEntity("e03", simnet.Point{X: 55}, 1, miniFactory); err != nil {
		t.Fatal(err)
	}
	settleTicks(fed, 2)
	rows, _, ok := fed.ClusterStats()
	if !ok || len(rows) != 4 {
		t.Fatalf("after join: rows=%d ok=%v, want 4", len(rows), ok)
	}

	if _, err := fed.FailEntity("e03"); err != nil {
		t.Fatal(err)
	}
	settleTicks(fed, 2)
	for _, h := range fed.ClusterHealth() {
		if h.Entity == "e03" && (h.Up || h.Healthy) {
			t.Fatalf("failed entity still reported up: %+v", h)
		}
	}
}

// TestJournalCausalChainUnderChaos blackholes an interior entity of the
// dissemination tree and asserts the full failure story lands in the
// journal in causal seq order: control.giveup → detector.suspect →
// detector.confirm → entity.fail → tree.repair → migration.place.
func TestJournalCausalChainUnderChaos(t *testing.T) {
	const n = 5
	fed, plan := newChaosFederation(t, 11, n, Options{
		Strategy:        dissemination.Balanced,
		Fanout:          2,
		ReliableControl: true,
		InterestRefresh: 25 * time.Millisecond,
	})

	// Pick a victim that relays for at least one other entity, so a
	// healthy child's interest refresh will hit the blackhole and feed
	// the detector an out-of-band suspicion.
	tree := fed.DisseminationTree("quotes")
	victim := ""
	for i := 0; i < n && victim == ""; i++ {
		id := fmt.Sprintf("e%02d", i)
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if tree.Parent(relayID(fmt.Sprintf("e%02d", j), "quotes")) == relayID(id, "quotes") {
				victim = id
				break
			}
		}
	}
	if victim == "" {
		t.Fatal("no interior entity in the dissemination tree")
	}
	var got atomic.Int64
	if err := fed.SubmitQueryTo(priceQuery("qv", 0, 1000), victim,
		func(stream.Tuple) { got.Add(1) }); err != nil {
		t.Fatal(err)
	}
	fed.Settle(2 * time.Second)

	// Slow heartbeat-only confirmation (50ms × 20 = 1s) so the reliable
	// give-up path wins the race to raise the suspicion.
	if err := fed.EnableFailureDetection(50*time.Millisecond, 20); err != nil {
		t.Fatal(err)
	}
	plan.Blackhole(hbID(victim), relayID(victim, "quotes"), simnet.NodeID(victim+"/p0"), simnet.NodeID(victim+"/p1"))
	plan.SetEnabled(true)

	chain := []string{"control.giveup", "detector.suspect", "detector.confirm",
		"entity.fail", "tree.repair", "migration.place"}
	firstSeqs := func() (map[string]uint64, bool) {
		seqs := make(map[string]uint64)
		for _, e := range fed.Journal().Since(0, "") {
			if e.Node != victim && e.Fields["failed"] != victim {
				continue
			}
			if _, seen := seqs[e.Kind]; !seen {
				seqs[e.Kind] = e.Seq
			}
		}
		for _, k := range chain {
			if _, ok := seqs[k]; !ok {
				return seqs, false
			}
		}
		return seqs, true
	}
	deadline := time.Now().Add(15 * time.Second)
	var seqs map[string]uint64
	for {
		var complete bool
		if seqs, complete = firstSeqs(); complete {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("causal chain incomplete after 15s: have %v", seqs)
		}
		time.Sleep(20 * time.Millisecond)
	}
	for i := 1; i < len(chain); i++ {
		if seqs[chain[i-1]] >= seqs[chain[i]] {
			t.Errorf("causal order violated: %s (seq %d) must precede %s (seq %d)",
				chain[i-1], seqs[chain[i-1]], chain[i], seqs[chain[i]])
		}
	}

	// The /events cursor semantics the API depends on.
	confirmSeq := seqs["detector.confirm"]
	after := fed.Journal().Since(confirmSeq, "entity")
	found := false
	for _, e := range after {
		if e.Kind == "entity.fail" && e.Node == victim {
			found = true
		}
	}
	if !found {
		t.Fatal("Since(confirmSeq, entity) must include the entity.fail event")
	}
}

// TestFederationLoggerDefaultsAndJournal: every federation has a journal
// and records churn events.
func TestFederationLoggerDefaultsAndJournal(t *testing.T) {
	net := simnet.NewSim(nil)
	defer net.Close()
	logger := obslog.New(obslog.NewJournal(64), nil) // journal-only, quiet
	fed, err := New(net, workload.Catalog(100, 20), Options{Logger: logger})
	if err != nil {
		t.Fatal(err)
	}
	defer fed.Close()
	if fed.Journal() == nil {
		t.Fatal("federation must expose a journal")
	}
	if err := fed.AddSource("quotes", simnet.Point{}, StreamRate{TuplesPerSec: 100, BytesPerTuple: 60}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := fed.AddEntity(fmt.Sprintf("e%02d", i), simnet.Point{X: float64(i)}, 1, miniFactory); err != nil {
			t.Fatal(err)
		}
	}
	joins := fed.Journal().Since(0, "entity.join")
	if len(joins) != 2 {
		t.Fatalf("journal has %d entity.join events, want 2", len(joins))
	}
}
