package core

import (
	"testing"
	"time"

	"sspd/internal/workload"
)

func waitUntil(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !cond() {
		t.Fatalf("timed out waiting for %s", what)
	}
}

// One checkpoint sweep must write a durable record, reach quorum, and
// trim the replay ring up to the quorum-acked mark.
func TestCheckpointTickQuorumAndTrim(t *testing.T) {
	fed, _ := newTestFederation(t, 3)
	log := &seqLog{}
	if err := fed.SubmitQueryTo(countQuery("agg", 8), "e00", log.observe); err != nil {
		t.Fatal(err)
	}
	if err := fed.EnableCheckpoints(0, 2); err != nil {
		t.Fatal(err)
	}
	if err := fed.EnableCheckpoints(0, 2); err == nil {
		t.Fatal("double enable accepted")
	}

	tick := workload.NewTicker(3, 100, 1.2)
	if err := fed.Publish("quotes", tick.Batch(100)); err != nil {
		t.Fatal(err)
	}
	fed.Settle(2 * time.Second)

	fed.CheckpointTick()
	waitUntil(t, 2*time.Second, "checkpoint quorum", func() bool {
		return fed.Checkpoints().QuorumAcked >= 1
	})
	fed.Settle(2 * time.Second)
	info := fed.Checkpoints()
	if !info.Enabled || info.Replicas != 2 || info.Quorum != 2 {
		t.Fatalf("info = %+v", info)
	}
	if info.Writes < 2 { // query record + ledger record
		t.Fatalf("writes = %d, want >= 2", info.Writes)
	}
	if info.WireBytes <= 0 {
		t.Fatalf("no wire bytes accounted")
	}
	if info.Corrupt != 0 {
		t.Fatalf("clean run counted %d corrupt records", info.Corrupt)
	}
	// Quorum ack advanced the replay-ring trim floor to the agg query's
	// mark, which covers every published tuple.
	waitUntil(t, 2*time.Second, "ring trim", func() bool {
		return fed.Checkpoints().RingTuples == 0
	})
	// New traffic re-fills the ring until the next quorum-acked sweep.
	if err := fed.Publish("quotes", tick.Batch(40)); err != nil {
		t.Fatal(err)
	}
	fed.Settle(2 * time.Second)
	if got := fed.Checkpoints().RingTuples; got != 40 {
		t.Fatalf("ring holds %d tuples, want 40", got)
	}
	if len(fed.Journal().Since(0, "ckpt.replicate")) == 0 {
		t.Fatal("no ckpt.replicate events journaled")
	}
}

// Satellite: the accounting ledger's accrued execution time must
// survive serialization, including in-flight accruals.
func TestLedgerSnapshotRestoreRoundtrip(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	l := NewLedger(clock)
	if err := l.Start("q1", "e1"); err != nil {
		t.Fatal(err)
	}
	if err := l.Start("q2", "e2"); err != nil {
		t.Fatal(err)
	}
	now = now.Add(10 * time.Second)
	if err := l.Stop("q1"); err != nil { // e1 banks 10s
		t.Fatal(err)
	}
	if err := l.Move("q2", "e1"); err != nil { // e2 banks 10s; q2 accrues on e1
		t.Fatal(err)
	}
	snap := l.Snapshot()
	if snap == nil {
		t.Fatal("nil snapshot")
	}

	r := NewLedger(clock)
	if err := r.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if r.ActiveQueries() != 1 {
		t.Fatalf("active after restore = %d, want 1", r.ActiveQueries())
	}
	now = now.Add(5 * time.Second)
	if got := r.Charge("e1"); got != 15*time.Second {
		t.Fatalf("e1 charge = %v, want 15s (10 banked + 5 in-flight)", got)
	}
	if got := r.Charge("e2"); got != 10*time.Second {
		t.Fatalf("e2 charge = %v, want 10s", got)
	}
	if err := r.Restore([]byte("{broken")); err == nil {
		t.Fatal("corrupt snapshot accepted")
	}
}

// Satellite: a coordinator crash must not lose accrued execution time —
// the ledger persisted through the checkpoint store is recoverable from
// the surviving entities.
func TestLedgerPersistAndRecover(t *testing.T) {
	fed, _ := newTestFederation(t, 3)
	log := &seqLog{}
	if err := fed.SubmitQueryTo(countQuery("agg", 8), "e00", log.observe); err != nil {
		t.Fatal(err)
	}
	if err := fed.EnableCheckpoints(0, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := fed.RecoverLedger(100 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	fed.CheckpointTick()
	fed.Settle(2 * time.Second)

	// Simulate the coordinator losing its in-memory ledger.
	if err := fed.Ledger().Restore([]byte(`{"accrued_ns":{}}`)); err != nil {
		t.Fatal(err)
	}
	if fed.Ledger().ActiveQueries() != 0 {
		t.Fatal("wipe failed")
	}
	found, err := fed.RecoverLedger(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatal("persisted ledger not found on any replica")
	}
	if fed.Ledger().ActiveQueries() != 1 {
		t.Fatalf("active after recovery = %d, want 1 (agg accruing)",
			fed.Ledger().ActiveQueries())
	}
}

// Satellite: a detector-confirmed expulsion whose FailEntity errors
// must be counted and journaled, never silently dropped.
func TestExpelConfirmedCountsErrors(t *testing.T) {
	fed, _ := newTestFederation(t, 2)
	fed.expelConfirmed("no-such-entity")
	if got := fed.EntityFailErrors(); got != 1 {
		t.Fatalf("EntityFailErrors = %d, want 1", got)
	}
	if len(fed.Journal().Since(0, "detector.expel_failed")) != 1 {
		t.Fatal("failed expulsion not journaled as detector.expel_failed")
	}
	// A successful expulsion does not count.
	if _, err := fed.FailEntity("e01"); err != nil {
		t.Fatal(err)
	}
	if got := fed.EntityFailErrors(); got != 1 {
		t.Fatalf("EntityFailErrors after clean expulsion = %d, want 1", got)
	}
}

// RemoveQuery must unpin the removed query's streams from the replay
// ring floor.
func TestRemoveQueryUnpinsRing(t *testing.T) {
	fed, _ := newTestFederation(t, 3)
	log := &seqLog{}
	if err := fed.SubmitQueryTo(countQuery("agg", 8), "e00", log.observe); err != nil {
		t.Fatal(err)
	}
	if err := fed.EnableCheckpoints(0, 2); err != nil {
		t.Fatal(err)
	}
	tick := workload.NewTicker(3, 100, 1.2)
	if err := fed.Publish("quotes", tick.Batch(30)); err != nil {
		t.Fatal(err)
	}
	fed.Settle(2 * time.Second)
	fed.CheckpointTick() // marks agg as written; ring pinned until quorum
	fed.Settle(2 * time.Second)
	if err := fed.RemoveQuery("agg"); err != nil {
		t.Fatal(err)
	}
	p := fed.ckptRef()
	p.mu.Lock()
	_, written := p.written["agg"]
	p.mu.Unlock()
	if written {
		t.Fatal("removed query still pins the replay ring")
	}
}
