// Live stateful query migration (DESIGN.md §10): the
// pause→drain→snapshot→transfer→resume protocol behind
// Federation.MigrateQuery, and the migration history/metrics it feeds.
//
// Protocol order, and why it is safe:
//
// (1) PREPARE — place the spec on the destination with its ingest gate
// closed. Failure here leaves the source untouched.
// (2) PAUSE — close the source's gate; from now on every tuple the
// source receives is buffered, not processed.
// (3) DRAIN — settle the network and drain the source's engines, so the
// snapshot reflects every tuple processed before the pause and nothing
// processed afterwards.
// (4) OVERLAP — refresh the destination's interests. Both entities now
// receive the stream; the source's interest is withdrawn only at the
// very end, so the dissemination trees overlap rather than gap and no
// tuple is filtered away upstream mid-handoff.
// (5) SNAPSHOT — serialize the source's operator state (windows,
// aggregates, join synopses, learned selectivities).
// (6) RESTORE — install the snapshot at the destination.
// (7) COMMIT — detach the source (reclaiming its pause buffer) and
// reopen the destination's gate, replaying the union of both pause
// buffers deduplicated by (stream, seq).
// (8) WITHDRAW — refresh the source's interests (the query is gone from
// its books, so this narrows them).
//
// Any failure before COMMIT rolls back: the destination placement is
// removed, its interests withdrawn, and the source's gate reopened with
// its buffer replayed in place — the query keeps running on the source
// with no tuple lost.
package core

import (
	"fmt"
	"time"

	"sspd/internal/engine"
	"sspd/internal/stream"
)

// migrationLogCap bounds the in-memory migration history surfaced at
// GET /cluster.
const migrationLogCap = 64

// migrateSettle bounds each network-quiescence wait inside the
// protocol; on SimNet-class transports Settle returns as soon as the
// network is quiet.
const migrateSettle = 2 * time.Second

// migrateDrain bounds the engine drain before a snapshot.
const migrateDrain = 2 * time.Second

// MigrationRecord is one completed (or rolled-back) live migration.
type MigrationRecord struct {
	Query      string    `json:"query"`
	From       string    `json:"from"`
	To         string    `json:"to"`
	Outcome    string    `json:"outcome"` // "commit" or "rollback"
	Reason     string    `json:"reason,omitempty"`
	Stateful   bool      `json:"stateful"`
	StateBytes int       `json:"state_bytes"`
	Replayed   int       `json:"replayed"`
	PauseMs    float64   `json:"pause_ms"`
	Time       time.Time `json:"ts"`
}

// Migrations returns the migration history, newest first.
func (f *Federation) Migrations() []MigrationRecord {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]MigrationRecord, 0, len(f.migLog))
	for i := len(f.migLog) - 1; i >= 0; i-- {
		out = append(out, f.migLog[i])
	}
	return out
}

func (f *Federation) recordMigration(rec MigrationRecord) {
	f.mu.Lock()
	f.migLog = append(f.migLog, rec)
	if len(f.migLog) > migrationLogCap {
		f.migLog = f.migLog[len(f.migLog)-migrationLogCap:]
	}
	f.mu.Unlock()
	switch rec.Outcome {
	case "commit":
		f.migCommits.Inc()
		f.migStateBytes.Add(int64(rec.StateBytes))
		f.migReplayed.Add(int64(rec.Replayed))
		f.logger.Info("migration.commit", rec.To, "live migration committed",
			"query", rec.Query, "from", rec.From, "to", rec.To,
			"state_bytes", fmt.Sprint(rec.StateBytes),
			"replayed", fmt.Sprint(rec.Replayed),
			"pause_ms", fmt.Sprintf("%.2f", rec.PauseMs))
	default:
		f.migRollbacks.Inc()
		f.logger.Warn("migration.rollback", rec.From, "live migration rolled back",
			"query", rec.Query, "from", rec.From, "to", rec.To, "reason", rec.Reason)
	}
}

// MigrateQuery moves a query to another entity at the query level — the
// only migration granularity the loosely-coupled layer permits — via
// the live pause→drain→snapshot→transfer→resume protocol. Operator
// state travels with the query; tuples arriving during the handoff are
// buffered on both sides and replayed exactly once. A failure at any
// step before commit leaves the query running on the source.
func (f *Federation) MigrateQuery(id, toEntity string) error {
	f.mu.Lock()
	fq, ok := f.queries[id]
	if !ok {
		f.mu.Unlock()
		return fmt.Errorf("core: unknown query %s", id)
	}
	if fq.entity == toEntity {
		f.mu.Unlock()
		return nil
	}
	from := f.entities[fq.entity]
	to, ok := f.entities[toEntity]
	if !ok {
		f.mu.Unlock()
		return fmt.Errorf("core: unknown entity %q", toEntity)
	}
	if fq.migrating {
		f.mu.Unlock()
		return fmt.Errorf("core: query %s is already migrating", id)
	}
	fq.migrating = true
	fromID := fq.entity
	spec := fq.spec
	f.mu.Unlock()
	defer func() {
		f.mu.Lock()
		fq.migrating = false
		f.mu.Unlock()
	}()

	rec := MigrationRecord{Query: id, From: fromID, To: toEntity, Time: time.Now()}
	f.logger.Info("migration.start", fromID, "live migration starting",
		"query", id, "from", fromID, "to", toEntity)

	// 1. PREPARE: paused placement on the destination.
	if err := to.ent.PrepareQuery(spec, f.opts.FragmentsPerQuery); err != nil {
		rec.Outcome, rec.Reason = "rollback", "prepare: "+err.Error()
		f.recordMigration(rec)
		return fmt.Errorf("core: migrate %s: destination placement: %w", id, err)
	}

	// 2. PAUSE the source, 3. DRAIN engines and in-flight traffic.
	pauseStart := time.Now()
	rollback := func(reason string, err error) error {
		_, _ = to.ent.RemoveQuery(id)
		_ = f.refreshInterests(toEntity, spec.Streams())
		if n, rerr := from.ent.ResumeQuery(id); rerr == nil {
			rec.Replayed = n
		}
		rec.Outcome, rec.Reason = "rollback", reason+": "+err.Error()
		rec.PauseMs = float64(time.Since(pauseStart).Microseconds()) / 1000
		f.recordMigration(rec)
		return fmt.Errorf("core: migrate %s: %s: %w", id, reason, err)
	}
	if err := from.ent.PauseQuery(id); err != nil {
		_, _ = to.ent.RemoveQuery(id)
		rec.Outcome, rec.Reason = "rollback", "pause: "+err.Error()
		f.recordMigration(rec)
		return fmt.Errorf("core: migrate %s: pause: %w", id, err)
	}
	f.Settle(migrateSettle)
	_ = from.ent.DrainQuery(id, migrateDrain)

	// 4. OVERLAP: the destination's interests go live while the
	// source's stay registered; both sides buffer from here on.
	if err := f.refreshInterests(toEntity, spec.Streams()); err != nil {
		return rollback("destination interests", err)
	}
	f.Settle(migrateSettle)

	// 5. SNAPSHOT the quiesced source state.
	st, stateBytes, stateful, err := from.ent.SnapshotQuery(id)
	if err != nil {
		return rollback("snapshot", err)
	}
	rec.Stateful, rec.StateBytes = stateful, stateBytes
	if stateful {
		f.logger.Info("migration.snapshot", fromID, "operator state captured",
			"query", id, "state_bytes", fmt.Sprint(stateBytes))
		// 6. RESTORE it at the destination.
		if err := to.ent.RestoreQuery(id, st); err != nil {
			return rollback("restore", err)
		}
	} else {
		f.logger.Warn("migration.snapshot", fromID,
			"engine cannot snapshot; migrating without operator state", "query", id)
	}

	// 7. COMMIT: detach the source and replay both pause buffers at
	// the destination.
	_, buffered, err := from.ent.CompleteMigration(id)
	if err != nil {
		return rollback("detach", err)
	}
	replayed, dropped, err := to.ent.CommitQuery(id, buffered)
	if err != nil {
		// The source is already detached; fall back to re-placing
		// there so the query survives even this (unreachable in
		// practice) failure.
		return f.replaceOnSource(rec, fromID, spec, st, stateful, buffered, pauseStart, err)
	}
	rec.Replayed = replayed
	rec.PauseMs = float64(time.Since(pauseStart).Microseconds()) / 1000
	if dropped > 0 {
		f.logger.Warn("migration.commit", toEntity, "pause buffer overflowed",
			"query", id, "dropped", fmt.Sprint(dropped))
	}
	f.mu.Lock()
	fq.entity = toEntity
	f.mu.Unlock()
	f.routesChanged()
	if err := f.ledger.Move(id, toEntity); err != nil {
		f.logger.Warn("ledger.error", toEntity, "ledger move failed",
			"query", id, "err", err.Error())
	}
	rec.Outcome = "commit"
	f.recordMigration(rec)

	// 8. WITHDRAW the source's now-stale interests.
	return f.refreshInterests(fromID, spec.Streams())
}

// replaceOnSource is the last-ditch rollback after the source has
// already been detached: re-place the query on the source, restore the
// snapshot, and replay the buffer there.
func (f *Federation) replaceOnSource(rec MigrationRecord, fromID string,
	spec engine.QuerySpec, st map[string]engine.QueryState, stateful bool,
	buffered stream.Batch, pauseStart time.Time, cause error) error {
	f.mu.Lock()
	from, ok := f.entities[fromID]
	to := f.entities[rec.To]
	f.mu.Unlock()
	if ok {
		if err := from.ent.PrepareQuery(spec, f.opts.FragmentsPerQuery); err == nil {
			if stateful {
				_ = from.ent.RestoreQuery(rec.Query, st)
			}
			if n, _, err := from.ent.CommitQuery(rec.Query, buffered); err == nil {
				rec.Replayed = n
			}
		}
	}
	if to != nil {
		_, _ = to.ent.RemoveQuery(rec.Query)
	}
	_ = f.refreshInterests(rec.To, spec.Streams())
	rec.Outcome, rec.Reason = "rollback", "commit: "+cause.Error()
	rec.PauseMs = float64(time.Since(pauseStart).Microseconds()) / 1000
	f.recordMigration(rec)
	return fmt.Errorf("core: migrate %s: commit: %w", rec.Query, cause)
}
