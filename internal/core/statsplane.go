package core

// The cluster stats plane (DESIGN.md §9): every entity runs a
// coordinator.StatsNode that periodically folds its local registry —
// measured query loads, per-stream link byte rates, PR_max with a short
// history, send/decode error counters — into an EntityStats row and
// pushes it up the coordinator tree. Interior nodes merge child digests,
// so the tree's root holds the cluster view that backs GET
// /cluster/metrics, GET /cluster/health, the portal's ops page, and the
// querygraph.StatsSource hook feeding measured weights to the adaptive
// repartitioner. Folds are periodic and ride the control transport; the
// per-tuple hot path is untouched.

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"sspd/internal/coordinator"
	"sspd/internal/engine"
	"sspd/internal/metrics"
	"sspd/internal/querygraph"
	"sspd/internal/simnet"
)

// statsPlane owns the per-entity stats nodes and the fold state that
// turns cumulative counters into rates.
type statsPlane struct {
	f        *Federation
	interval time.Duration
	registry *metrics.Registry

	// stop/done wire the background SLO ticker (interval > 0 only): the
	// stats nodes run their own push loops, so without this the watchdog
	// would only ever be clocked by manual StatsTick calls.
	stop chan struct{}
	done chan struct{}

	mu    sync.Mutex
	nodes map[string]*coordinator.StatsNode
	folds map[string]*foldState
	// srcPrev/srcPrevT/srcRate implement the measured per-stream arrival
	// rate: successive readings of each source's publish counter.
	srcPrev  map[string]int64
	srcPrevT time.Time
	srcRate  map[string]float64
}

// foldState is one entity's differentiation memory between folds.
type foldState struct {
	prevT     time.Time
	prevBusy  map[string]float64 // query -> cumulative busy seconds
	prevBytes map[string]int64   // stream -> cumulative link bytes
	spark     []float64          // recent PR_max samples, oldest first
	// prevDropped/dropSpark carry the entity's engine drop history: the
	// cumulative total at the last fold and the differentiated
	// drops-per-second ring behind the ops-view sparkline.
	prevDropped int64
	dropSpark   []float64
}

// EnableStatsPlane starts the cluster stats federation. interval is the
// digest period; interval <= 0 starts no background loops — tests then
// drive the plane deterministically with StatsTick. Safe to call once,
// after Start.
func (f *Federation) EnableStatsPlane(interval time.Duration) error {
	f.mu.Lock()
	if !f.started {
		f.mu.Unlock()
		return fmt.Errorf("core: federation not started")
	}
	if f.stats != nil {
		f.mu.Unlock()
		return fmt.Errorf("core: stats plane already enabled")
	}
	p := &statsPlane{
		f:        f,
		interval: interval,
		registry: metrics.NewRegistry(),
		nodes:    make(map[string]*coordinator.StatsNode),
		folds:    make(map[string]*foldState),
		srcPrev:  make(map[string]int64),
		srcRate:  make(map[string]float64),
	}
	p.registry.RegisterCollector(p.collect)
	f.stats = p
	ids := f.entityIDsLocked()
	f.mu.Unlock()
	for _, id := range ids {
		p.addNode(id)
	}
	if interval > 0 {
		// Background mode: the stats nodes push on their own loops and
		// StatsTick is never called, so the SLO watchdog needs its own
		// clock at the same digest period.
		p.stop = make(chan struct{})
		p.done = make(chan struct{})
		go func(stop, done chan struct{}) {
			defer close(done)
			t := time.NewTicker(interval)
			defer t.Stop()
			for {
				select {
				case <-stop:
					return
				case <-t.C:
					f.SLOTick()
					f.EngineTick()
				}
			}
		}(p.stop, p.done)
	}
	f.logger.Info("stats.enable", "", "cluster stats plane enabled",
		"interval", interval, "entities", len(ids))
	return nil
}

// StatsEnabled reports whether the stats plane is running.
func (f *Federation) StatsEnabled() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats != nil
}

// ClusterRegistry returns the registry serving sspd_cluster_* metrics
// from the root digest (nil until EnableStatsPlane). The portal serves
// it at GET /cluster/metrics.
func (f *Federation) ClusterRegistry() *metrics.Registry {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.stats == nil {
		return nil
	}
	return f.stats.registry
}

// StatsTick runs one manual digest period: every entity's stats node
// folds and pushes once, in sorted entity order. Call Settle afterwards
// to let the pushed digests land. Root coverage of an h-level tree needs
// h ticks; two suffice for typical federations.
func (f *Federation) StatsTick() {
	f.mu.Lock()
	p := f.stats
	f.mu.Unlock()
	if p == nil {
		return
	}
	p.refreshSourceRates()
	p.mu.Lock()
	ids := make([]string, 0, len(p.nodes))
	for id := range p.nodes {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	nodes := make([]*coordinator.StatsNode, len(ids))
	for i, id := range ids {
		nodes[i] = p.nodes[id]
	}
	p.mu.Unlock()
	for _, n := range nodes {
		n.Tick()
	}
	// The SLO and backpressure watchdogs are clocked by the stats
	// federation: one verdict pass per digest period, over this window's
	// traffic.
	f.SLOTick()
	f.EngineTick()
}

// ClusterStats returns the merged cluster table as seen by the current
// coordinator-tree root, plus the root's ID. ok is false when the plane
// is disabled or the root runs no stats node yet.
func (f *Federation) ClusterStats() (rows map[string]coordinator.EntityStats, root string, ok bool) {
	f.mu.Lock()
	p := f.stats
	r, _ := f.coord.Root()
	f.mu.Unlock()
	if p == nil || r == "" {
		return nil, string(r), false
	}
	p.mu.Lock()
	n := p.nodes[string(r)]
	p.mu.Unlock()
	if n == nil {
		return nil, string(r), false
	}
	return n.Snapshot(), string(r), true
}

// EntityHealth is one row of the cluster health view.
type EntityHealth struct {
	Entity string `json:"entity"`
	// Up: the entity is currently a federation member.
	Up bool `json:"up"`
	// Fresh: its digest row is younger than three digest periods (always
	// true in manual-tick mode once a row exists).
	Fresh bool `json:"fresh"`
	// Healthy = Up && Fresh.
	Healthy bool `json:"healthy"`
	// AgeSeconds is the digest row's age (-1 when no row has arrived).
	AgeSeconds float64 `json:"age_seconds"`
	Load       float64 `json:"load"`
	Queries    int     `json:"queries"`
	PRMax      float64 `json:"pr_max"`
}

// ClusterHealth merges the root digest with live membership into a
// per-entity health table, sorted by entity ID. Entities present in the
// digest but expelled from the federation appear with Up=false — the
// postmortem trace of a recent failure.
func (f *Federation) ClusterHealth() []EntityHealth {
	rows, _, _ := f.ClusterStats()
	f.mu.Lock()
	p := f.stats
	present := make(map[string]bool, len(f.entities))
	for id := range f.entities {
		present[id] = true
	}
	f.mu.Unlock()
	ids := make(map[string]bool, len(rows)+len(present))
	for id := range rows {
		ids[id] = true
	}
	for id := range present {
		ids[id] = true
	}
	sorted := make([]string, 0, len(ids))
	for id := range ids {
		sorted = append(sorted, id)
	}
	sort.Strings(sorted)
	now := time.Now()
	out := make([]EntityHealth, 0, len(sorted))
	for _, id := range sorted {
		h := EntityHealth{Entity: id, Up: present[id], AgeSeconds: -1}
		if row, ok := rows[id]; ok {
			age := row.Age(now)
			h.AgeSeconds = age.Seconds()
			h.Fresh = p == nil || p.interval <= 0 || age <= 3*p.interval
			h.Load = row.Load
			h.Queries = row.Queries
			h.PRMax = row.PRMax
		}
		h.Healthy = h.Up && h.Fresh
		out = append(out, h)
	}
	return out
}

// QueryLoads implements querygraph.StatsSource: the measured load per
// query, merged from the root digest's per-entity rows.
func (f *Federation) QueryLoads() map[string]float64 {
	rows, _, ok := f.ClusterStats()
	if !ok {
		return nil
	}
	out := make(map[string]float64)
	for _, row := range rows {
		for q, l := range row.QueryLoads {
			out[q] = l
		}
	}
	return out
}

// StreamRates implements querygraph.StatsSource: the measured arrival
// rate per stream in tuples/second, differentiated from the sources'
// publish counters.
func (f *Federation) StreamRates() map[string]float64 {
	f.mu.Lock()
	p := f.stats
	f.mu.Unlock()
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]float64, len(p.srcRate))
	for s, r := range p.srcRate {
		out[s] = r
	}
	return out
}

var _ querygraph.StatsSource = (*Federation)(nil)

// MeasuredQueryGraph builds the query graph with measured statistics
// (when the stats plane is warmed up) overriding the nominal estimates —
// the input the adaptive repartitioner is meant to consume. Edge weights
// use the measured per-stream arrival rate (nominal bytes/tuple); vertex
// weights use the digest's measured query loads. Anything not yet
// measured keeps its nominal value.
func (f *Federation) MeasuredQueryGraph(minEdge float64) *querygraph.Graph {
	f.mu.Lock()
	p := f.stats
	f.mu.Unlock()
	if p == nil {
		return f.QueryGraph(minEdge)
	}
	measured := f.StreamRates()
	f.mu.Lock()
	ids := make([]string, 0, len(f.queries))
	for id := range f.queries {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	specs := make([]engine.QuerySpec, 0, len(ids))
	for _, id := range ids {
		specs = append(specs, f.queries[id].spec)
	}
	rates := make(map[string]StreamRate, len(f.rates))
	for s, r := range f.rates {
		if tps, ok := measured[s]; ok && tps > 0 {
			r.TuplesPerSec = tps
		}
		rates[s] = r
	}
	f.mu.Unlock()
	g := BuildQueryGraph(specs, f.catalog, rates, minEdge)
	querygraph.ApplyLoads(g, f.QueryLoads())
	return g
}

// addNode creates and starts the stats node of one entity.
func (p *statsPlane) addNode(id string) {
	f := p.f
	n, err := coordinator.NewStatsNode(coordinator.MemberID(id), f.transport)
	if err != nil {
		f.logger.Error("stats.enable", id, "stats node registration failed", "err", err)
		return
	}
	n.Fold = func() coordinator.EntityStats { return p.fold(id) }
	n.Parent = func() (simnet.NodeID, bool) {
		f.mu.Lock()
		parent, ok := f.coord.StatsParent(coordinator.MemberID(id))
		f.mu.Unlock()
		if !ok {
			return "", false
		}
		return coordinator.StatsEndpoint(parent), true
	}
	if p.interval > 0 {
		n.MaxAge = 3 * p.interval
	}
	p.mu.Lock()
	p.nodes[id] = n
	p.folds[id] = &foldState{
		prevBusy:  make(map[string]float64),
		prevBytes: make(map[string]int64),
	}
	p.mu.Unlock()
	n.Start(p.interval)
}

// removeNode closes an entity's stats node. Must be called WITHOUT
// f.mu held: Close waits for the node's loop, which may be folding
// (and folding takes f.mu).
func (p *statsPlane) removeNode(id string) {
	p.mu.Lock()
	n := p.nodes[id]
	delete(p.nodes, id)
	delete(p.folds, id)
	p.mu.Unlock()
	if n != nil {
		_ = n.Close()
	}
}

// close shuts every node down (same locking caveat as removeNode).
func (p *statsPlane) close() {
	if p.stop != nil {
		close(p.stop)
		<-p.done
	}
	p.mu.Lock()
	nodes := make([]*coordinator.StatsNode, 0, len(p.nodes))
	for _, n := range p.nodes {
		nodes = append(nodes, n)
	}
	p.nodes = make(map[string]*coordinator.StatsNode)
	p.mu.Unlock()
	for _, n := range nodes {
		_ = n.Close()
	}
}

// refreshSourceRates differentiates the sources' publish counters into
// tuples/second. Guarded against over-eager calls: readings less than
// 10ms apart are skipped (several entities folding in the same period
// only update the rates once).
func (p *statsPlane) refreshSourceRates() {
	f := p.f
	f.mu.Lock()
	counts := make(map[string]int64, len(f.sources))
	for s, src := range f.sources {
		counts[s] = src.published.Value()
	}
	f.mu.Unlock()
	now := time.Now()
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.srcPrevT.IsZero() {
		p.srcPrevT = now
		p.srcPrev = counts
		return
	}
	dt := now.Sub(p.srcPrevT).Seconds()
	if dt < 0.01 {
		return
	}
	for s, c := range counts {
		p.srcRate[s] = float64(c-p.srcPrev[s]) / dt
	}
	p.srcPrevT = now
	p.srcPrev = counts
}

// fold builds one entity's EntityStats row from live state: cumulative
// counters are differentiated against the previous fold, measured query
// loads fall back to spec estimates for metric-less engines, and the
// PR_max history ring is carried in the row itself.
func (p *statsPlane) fold(id string) coordinator.EntityStats {
	f := p.f
	p.refreshSourceRates()

	f.mu.Lock()
	en := f.entities[id]
	var qids []string
	specLoad := make(map[string]float64)
	for q, fq := range f.queries {
		if fq.entity == id {
			qids = append(qids, q)
			specLoad[q] = fq.spec.EstimatedLoad()
		}
	}
	relays := make(map[string]*relayRef)
	if en != nil {
		for s, r := range en.relays {
			relays[s] = &relayRef{
				bytes:    r.LinkBytes.Bytes(),
				messages: r.LinkBytes.Messages(),
				sendErrs: r.SendErrors.Value(),
				decErrs:  r.DecodeErrors.Value(),
			}
		}
	}
	f.mu.Unlock()
	if en == nil {
		return coordinator.EntityStats{}
	}
	sort.Strings(qids)

	row := coordinator.EntityStats{
		Load:       en.ent.Load(),
		Queries:    len(qids),
		QueryLoads: make(map[string]float64, len(qids)),
		Streams:    make(map[string]coordinator.StreamStats, len(relays)),
	}

	now := time.Now()
	p.mu.Lock()
	st := p.folds[id]
	if st == nil {
		st = &foldState{prevBusy: make(map[string]float64), prevBytes: make(map[string]int64)}
		p.folds[id] = st
	}
	dt := 0.0
	if !st.prevT.IsZero() {
		dt = now.Sub(st.prevT).Seconds()
	}
	prevBusy := st.prevBusy
	prevBytes := st.prevBytes
	p.mu.Unlock()

	// Per-query measured load: engine busy-seconds per wall second since
	// the last fold; nominal estimate until engines have measured (or
	// forever, for metric-less engines like MiniEngine).
	newBusy := make(map[string]float64, len(qids))
	for _, q := range qids {
		busy, _, ok := en.ent.QueryWork(q)
		if !ok {
			row.QueryLoads[q] = specLoad[q]
			continue
		}
		newBusy[q] = busy
		if prev, seen := prevBusy[q]; seen && dt > 0.01 {
			rate := (busy - prev) / dt
			if rate < 0 {
				rate = 0
			}
			row.QueryLoads[q] = rate
		} else {
			row.QueryLoads[q] = specLoad[q]
		}
	}

	// Per-query drop attribution (full engine queues / shard rings).
	for _, q := range qids {
		if dropped, ok := en.ent.QueryDrops(q); ok {
			if row.QueryDrops == nil {
				row.QueryDrops = make(map[string]int64, len(qids))
			}
			row.QueryDrops[q] = dropped
		}
	}

	// Per-query PR and the entity PR_max.
	for _, q := range qids {
		if pr, ok := f.QueryPR(q); ok && pr > row.PRMax {
			row.PRMax = pr
		}
	}

	// Per-stream relay traffic with a differentiated byte rate.
	newBytes := make(map[string]int64, len(relays))
	for s, r := range relays {
		ss := coordinator.StreamStats{Bytes: r.bytes, Messages: r.messages}
		newBytes[s] = r.bytes
		if prev, seen := prevBytes[s]; seen && dt > 0.01 {
			bps := float64(r.bytes-prev) / dt
			if bps < 0 {
				bps = 0
			}
			ss.BytesPerSec = bps
		}
		row.Streams[s] = ss
		row.SendErrors += r.sendErrs
		row.DecodeErrors += r.decErrs
	}

	// Entity-level engine drops: the lifetime total plus a
	// differentiated drops-per-second sparkline ring.
	row.Dropped = en.ent.DroppedTotal()

	p.mu.Lock()
	st.prevT = now
	st.prevBusy = newBusy
	st.prevBytes = newBytes
	st.spark = append(st.spark, row.PRMax)
	if len(st.spark) > coordinator.SparkLen {
		st.spark = st.spark[len(st.spark)-coordinator.SparkLen:]
	}
	row.PRSpark = append([]float64(nil), st.spark...)
	dropRate := 0.0
	if dt > 0.01 {
		if r := float64(row.Dropped-st.prevDropped) / dt; r > 0 {
			dropRate = r
		}
	}
	st.prevDropped = row.Dropped
	st.dropSpark = append(st.dropSpark, dropRate)
	if len(st.dropSpark) > coordinator.SparkLen {
		st.dropSpark = st.dropSpark[len(st.dropSpark)-coordinator.SparkLen:]
	}
	row.DropSpark = append([]float64(nil), st.dropSpark...)
	p.mu.Unlock()

	// Latency attribution rides the row so the root can merge cluster
	// percentiles bucket-wise (nil when the plane is off); the engine
	// telemetry snapshot rides the same way for shard heatmaps.
	row.Latency = f.latencyRowFor(id)
	row.Engine = f.engineRowFor(en.ent)
	return row
}

type relayRef struct {
	bytes    int64
	messages int64
	sendErrs int64
	decErrs  int64
}

// collect is the cluster registry's collector: it renders the root
// digest as sspd_cluster_* Prometheus families, every per-entity series
// labeled with `entity`.
func (p *statsPlane) collect(emit func(metrics.Sample)) {
	f := p.f
	rows, root, ok := f.ClusterStats()
	health := f.ClusterHealth()

	gauge := func(name, help string, v float64, labels ...metrics.Label) {
		emit(metrics.Sample{Name: name, Help: help, Kind: metrics.KindGauge, Labels: labels, Value: v})
	}
	counter := func(name, help string, v float64, labels ...metrics.Label) {
		emit(metrics.Sample{Name: name, Help: help, Kind: metrics.KindCounter, Labels: labels, Value: v})
	}

	gauge("sspd_cluster_digest_ok", "1 when the tree root serves a merged digest.", b2f(ok))
	if !ok {
		return
	}
	_ = root

	ids := make([]string, 0, len(rows))
	for id := range rows {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	now := time.Now()
	prMax := 0.0
	queries := 0
	for _, id := range ids {
		row := rows[id]
		le := metrics.L("entity", id)
		gauge("sspd_cluster_entity_load", "Entity engine load from the cluster digest.", row.Load, le)
		gauge("sspd_cluster_entity_queries", "Queries hosted per entity from the cluster digest.",
			float64(row.Queries), le)
		gauge("sspd_cluster_entity_pr_max", "Entity-local maximum Performance Ratio from the cluster digest.",
			row.PRMax, le)
		gauge("sspd_cluster_digest_age_seconds", "Age of the entity's digest row at the root.",
			row.Age(now).Seconds(), le)
		counter("sspd_cluster_entity_dropped_total",
			"Engine-lifetime tuples dropped per entity, including drops charged to since-unregistered queries.",
			float64(row.Dropped), le)
		counter("sspd_cluster_send_errors_total", "Relay send errors per entity from the cluster digest.",
			float64(row.SendErrors), le)
		counter("sspd_cluster_decode_errors_total", "Relay decode errors per entity from the cluster digest.",
			float64(row.DecodeErrors), le)
		qids := make([]string, 0, len(row.QueryLoads))
		for q := range row.QueryLoads {
			qids = append(qids, q)
		}
		sort.Strings(qids)
		for _, q := range qids {
			gauge("sspd_cluster_query_load", "Measured query load from the cluster digest.",
				row.QueryLoads[q], le, metrics.L("query", q))
		}
		dqids := make([]string, 0, len(row.QueryDrops))
		for q := range row.QueryDrops {
			dqids = append(dqids, q)
		}
		sort.Strings(dqids)
		for _, q := range dqids {
			counter("sspd_cluster_query_dropped_total",
				"Tuples dropped per query by full engine queues or shard rings.",
				float64(row.QueryDrops[q]), le, metrics.L("query", q))
		}
		streams := make([]string, 0, len(row.Streams))
		for s := range row.Streams {
			streams = append(streams, s)
		}
		sort.Strings(streams)
		for _, s := range streams {
			ss := row.Streams[s]
			ls := metrics.L("stream", s)
			counter("sspd_cluster_stream_bytes_total", "Dissemination bytes per entity and stream.",
				float64(ss.Bytes), le, ls)
			counter("sspd_cluster_stream_messages_total", "Dissemination messages per entity and stream.",
				float64(ss.Messages), le, ls)
			gauge("sspd_cluster_stream_bytes_per_sec", "Measured dissemination byte rate per entity and stream.",
				ss.BytesPerSec, le, ls)
		}
		if row.PRMax > prMax {
			prMax = row.PRMax
		}
		queries += row.Queries
	}
	gauge("sspd_cluster_entities", "Entities covered by the root digest.", float64(len(ids)))
	gauge("sspd_cluster_queries", "Queries covered by the root digest.", float64(queries))
	gauge("sspd_cluster_pr_max", "Cluster-wide maximum Performance Ratio from the root digest.", prMax)

	for _, h := range health {
		gauge("sspd_cluster_entity_up", "1 when the entity is a live, freshly-reporting member.",
			b2f(h.Healthy), metrics.L("entity", h.Entity))
	}

	// Measured source rates (the StatsSource feed).
	rates := f.StreamRates()
	streams := make([]string, 0, len(rates))
	for s := range rates {
		streams = append(streams, s)
	}
	sort.Strings(streams)
	for _, s := range streams {
		gauge("sspd_cluster_stream_tuples_per_sec", "Measured arrival rate at the stream source.",
			rates[s], metrics.L("stream", s))
	}

	// The engine introspection families are re-emitted here so
	// /cluster/metrics serves the same sspd_engine_* families as
	// /metrics (no-op while the plane is disabled).
	f.engineCollectInto(emit)
	// Likewise the Adaptation Module families (sspd_am_*), so both
	// endpoints agree on routing state.
	f.amCollectInto(emit)
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
