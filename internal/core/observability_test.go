package core

import (
	"strings"
	"testing"
	"time"

	"sspd/internal/simnet"
	"sspd/internal/trace"
	"sspd/internal/workload"
)

// TestFederationTraceEndToEnd traces a tuple through every layer:
// publish at the source, relay hops down the dissemination tree, local
// delivery, the delegation processor, the operator fragment, and the
// final result.
func TestFederationTraceEndToEnd(t *testing.T) {
	fed, net := newTestFederation(t, 3)
	tr, err := fed.EnableTracing(1, 64)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fed.EnableTracing(1, 64); err == nil {
		t.Fatal("double EnableTracing accepted")
	}
	defer trace.SetActive(nil)

	if _, err := fed.SubmitQuery(priceQuery("q1", 0, 1000), simnet.Point{X: 15}, nil); err != nil {
		t.Fatal(err)
	}
	if !net.Quiesce(2 * time.Second) {
		t.Fatal("quiesce after submit")
	}
	tick := workload.NewTicker(1, 100, 1.2)
	if err := fed.Publish("quotes", tick.Batch(5)); err != nil {
		t.Fatal(err)
	}
	if !net.Quiesce(2 * time.Second) {
		t.Fatal("quiesce after publish")
	}
	if tr.Sampled.Value() != 5 {
		t.Fatalf("Sampled = %d, want 5 (every=1)", tr.Sampled.Value())
	}
	spans := tr.Recent(5)
	if len(spans) != 5 {
		t.Fatalf("Recent returned %d spans", len(spans))
	}
	// Every span must show the full journey, starting with the publish
	// hop. (Hops interleave across entities in arrival order — a relay
	// hop at an uninterested entity may land after the result hop at the
	// hosting one — so only the first hop's position is fixed.)
	for _, span := range spans {
		seen := map[string]bool{}
		for _, h := range span.Hops {
			seen[h.Stage] = true
		}
		for _, stage := range []string{trace.StagePublish, trace.StageRelay, trace.StageDeliver,
			trace.StageDelegate, trace.StageOperator, trace.StageResult} {
			if !seen[stage] {
				t.Fatalf("span %d missing stage %q: %+v", span.ID, stage, span.Hops)
			}
		}
		if span.Hops[0].Stage != trace.StagePublish {
			t.Fatalf("span %d first hop = %q", span.ID, span.Hops[0].Stage)
		}
	}
	if fed.Tracer() != tr {
		t.Fatal("Tracer accessor mismatch")
	}
}

// TestFederationMetricsCollector scrapes the registry and checks that
// every federation-level family the observability layer promises is
// present.
func TestFederationMetricsCollector(t *testing.T) {
	fed, net := newTestFederation(t, 3)
	if _, err := fed.EnableTracing(2, 32); err != nil {
		t.Fatal(err)
	}
	defer trace.SetActive(nil)
	if _, err := fed.SubmitQuery(priceQuery("q1", 0, 1000), simnet.Point{X: 15}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := fed.SubmitQuery(priceQuery("q2", 0, 500), simnet.Point{X: 25}, nil); err != nil {
		t.Fatal(err)
	}
	if !net.Quiesce(2 * time.Second) {
		t.Fatal("quiesce after submit")
	}
	tick := workload.NewTicker(1, 100, 1.2)
	if err := fed.Publish("quotes", tick.Batch(20)); err != nil {
		t.Fatal(err)
	}
	if !net.Quiesce(2 * time.Second) {
		t.Fatal("quiesce after publish")
	}

	var sb strings.Builder
	if err := fed.MetricsRegistry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		"sspd_entities 3",
		"sspd_queries 2",
		`sspd_pr_ratio{query="q1"}`,
		`sspd_pr_ratio{query="q2"}`,
		"sspd_pr_max ",
		`sspd_coordinator_events_total{event="join"} 3`,
		`sspd_relay_delivered_total{stream="quotes"}`,
		`sspd_relay_link_bytes_total{stream="quotes"}`,
		`sspd_relay_link_messages_total{stream="quotes"}`,
		`sspd_entity_load{entity="e00"}`,
		"sspd_edge_cut",
		"sspd_trace_sample_every 2",
		"sspd_trace_sampled_total 10",
		"sspd_rebalance_moves_total 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("scrape missing %q\n%s", want, text)
		}
	}
	// Link bytes must be non-zero: the source relayed 20 tuples downstream.
	if strings.Contains(text, `sspd_relay_link_bytes_total{stream="quotes"} 0`) {
		t.Error("link bytes stayed zero after publishing")
	}
}

// TestFederationPRMaxWithMiniEngines: MiniEngine exposes no latency
// metrics, so PR falls back to 0 — present but zero, never absent.
func TestFederationPRMaxWithMiniEngines(t *testing.T) {
	fed, net := newTestFederation(t, 2)
	if _, err := fed.SubmitQuery(priceQuery("q1", 0, 1000), simnet.Point{X: 15}, nil); err != nil {
		t.Fatal(err)
	}
	if !net.Quiesce(time.Second) {
		t.Fatal("quiesce")
	}
	if pr, ok := fed.QueryPR("q1"); ok || pr != 0 {
		t.Fatalf("QueryPR on MiniEngine = %v/%v, want 0/false", pr, ok)
	}
	if pr, q := fed.PRMax(); pr != 0 || q != "" {
		t.Fatalf("PRMax = %v/%q, want 0 and no query", pr, q)
	}
}
