package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"sspd/internal/engine"
	"sspd/internal/querygraph"
	"sspd/internal/simnet"
	"sspd/internal/stream"
	"sspd/internal/workload"
)

func TestJoinEntityLive(t *testing.T) {
	fed, net := newTestFederation(t, 2)
	if err := fed.JoinEntity("late", simnet.Point{X: 50}, 2, miniFactory); err != nil {
		t.Fatal(err)
	}
	if err := fed.JoinEntity("late", simnet.Point{}, 1, miniFactory); err == nil {
		t.Error("duplicate live join accepted")
	}
	if got := len(fed.EntityIDs()); got != 3 {
		t.Fatalf("entities = %d", got)
	}
	// The late joiner can host queries and receives stream data.
	var mu sync.Mutex
	results := 0
	if err := fed.SubmitQueryTo(priceQuery("q-late", 0, 1000), "late",
		func(stream.Tuple) { mu.Lock(); results++; mu.Unlock() }); err != nil {
		t.Fatal(err)
	}
	if !net.Quiesce(2 * time.Second) {
		t.Fatal("quiesce")
	}
	tick := workload.NewTicker(5, 100, 1.2)
	if err := fed.Publish("quotes", tick.Batch(30)); err != nil {
		t.Fatal(err)
	}
	if !net.Quiesce(2 * time.Second) {
		t.Fatal("quiesce")
	}
	mu.Lock()
	defer mu.Unlock()
	if results != 30 {
		t.Fatalf("late joiner results = %d, want 30", results)
	}
	// Dissemination trees remain valid with the new member.
	if err := fed.DisseminationTree("quotes").Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestJoinEntityRequiresStart(t *testing.T) {
	net := simnet.NewSim(nil)
	defer net.Close()
	fed, err := New(net, workload.Catalog(10, 10), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer fed.Close()
	if err := fed.JoinEntity("x", simnet.Point{}, 1, miniFactory); err == nil {
		t.Error("live join before Start accepted")
	}
}

func TestLeaveEntityMigratesQueries(t *testing.T) {
	fed, net := newTestFederation(t, 3)
	var mu sync.Mutex
	results := map[string]int{}
	for i := 0; i < 4; i++ {
		id := fmt.Sprintf("q%d", i)
		qid := id
		if err := fed.SubmitQueryTo(priceQuery(id, 0, 1000), "e00",
			func(stream.Tuple) { mu.Lock(); results[qid]++; mu.Unlock() }); err != nil {
			t.Fatal(err)
		}
	}
	if !net.Quiesce(2 * time.Second) {
		t.Fatal("quiesce")
	}
	migrated, err := fed.LeaveEntity("e00")
	if err != nil {
		t.Fatal(err)
	}
	if migrated != 4 {
		t.Fatalf("migrated = %d, want 4", migrated)
	}
	if _, err := fed.LeaveEntity("e00"); err == nil {
		t.Error("double leave accepted")
	}
	if got := len(fed.EntityIDs()); got != 2 {
		t.Fatalf("entities = %d", got)
	}
	for i := 0; i < 4; i++ {
		host, ok := fed.QueryEntity(fmt.Sprintf("q%d", i))
		if !ok || host == "e00" {
			t.Fatalf("q%d on %s/%v after leave", i, host, ok)
		}
	}
	// All queries still produce results on the survivors.
	if !net.Quiesce(2 * time.Second) {
		t.Fatal("quiesce")
	}
	tick := workload.NewTicker(6, 100, 1.2)
	if err := fed.Publish("quotes", tick.Batch(10)); err != nil {
		t.Fatal(err)
	}
	if !net.Quiesce(2 * time.Second) {
		t.Fatal("quiesce")
	}
	mu.Lock()
	defer mu.Unlock()
	for i := 0; i < 4; i++ {
		if got := results[fmt.Sprintf("q%d", i)]; got != 10 {
			t.Errorf("q%d results after migration = %d, want 10", i, got)
		}
	}
	if err := fed.DisseminationTree("quotes").Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLeaveLastEntityRefused(t *testing.T) {
	fed, _ := newTestFederation(t, 2)
	if _, err := fed.LeaveEntity("e00"); err != nil {
		t.Fatal(err)
	}
	if _, err := fed.LeaveEntity("e01"); err == nil {
		t.Error("removing the last entity accepted")
	}
}

func TestReorganizeTreesLive(t *testing.T) {
	// Build with the Balanced strategy (geometry-blind) so reorganizing
	// toward locality has work to do.
	net := simnet.NewSim(nil)
	t.Cleanup(func() { net.Close() })
	catalog := workload.Catalog(100, 20)
	fed, err := New(net, catalog, Options{Strategy: 1 /* Balanced */, Fanout: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fed.Close)
	if err := fed.AddSource("quotes", simnet.Point{}, StreamRate{TuplesPerSec: 100, BytesPerTuple: 60}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		pos := simnet.Point{X: float64((i * 37) % 100), Y: float64((i * 61) % 100)}
		if err := fed.AddEntity(fmt.Sprintf("e%02d", i), pos, 1, miniFactory); err != nil {
			t.Fatal(err)
		}
	}
	if err := fed.Start(); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	results := 0
	if err := fed.SubmitQueryTo(priceQuery("q", 0, 1000), "e03",
		func(stream.Tuple) { mu.Lock(); results++; mu.Unlock() }); err != nil {
		t.Fatal(err)
	}
	if !net.Quiesce(2 * time.Second) {
		t.Fatal("quiesce")
	}
	tree := fed.DisseminationTree("quotes")
	before := tree.TotalEdgeLength()
	total := 0
	for pass := 0; pass < 10; pass++ {
		n, err := fed.ReorganizeTrees()
		if err != nil {
			t.Fatal(err)
		}
		total += n
		if n == 0 {
			break
		}
	}
	if total == 0 {
		t.Fatal("reorganization found nothing to improve on a balanced tree")
	}
	if after := tree.TotalEdgeLength(); after >= before {
		t.Fatalf("edge length %v -> %v", before, after)
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	// Data still flows to the query after rewiring.
	if !net.Quiesce(2 * time.Second) {
		t.Fatal("quiesce")
	}
	tick := workload.NewTicker(7, 100, 1.2)
	if err := fed.Publish("quotes", tick.Batch(20)); err != nil {
		t.Fatal(err)
	}
	if !net.Quiesce(2 * time.Second) {
		t.Fatal("quiesce")
	}
	mu.Lock()
	defer mu.Unlock()
	if results != 20 {
		t.Fatalf("results after reorganization = %d, want 20", results)
	}
}

func TestChurnThenRebalance(t *testing.T) {
	// Join + leave + rebalance interleaved: the federation stays
	// consistent and queries keep flowing.
	fed, net := newTestFederation(t, 3)
	for i := 0; i < 9; i++ {
		if err := fed.SubmitQueryTo(priceQuery(fmt.Sprintf("q%d", i), 0, 500), "e00", nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := fed.JoinEntity("e99", simnet.Point{X: 70}, 2, miniFactory); err != nil {
		t.Fatal(err)
	}
	if _, err := fed.Rebalance(querygraph.HybridRepartitioner{}); err != nil {
		t.Fatal(err)
	}
	// The late joiner should have received some of the load.
	hostCounts := map[string]int{}
	for i := 0; i < 9; i++ {
		host, _ := fed.QueryEntity(fmt.Sprintf("q%d", i))
		hostCounts[host]++
	}
	if hostCounts["e00"] == 9 {
		t.Error("rebalance after join moved nothing")
	}
	if _, err := fed.LeaveEntity("e01"); err != nil {
		t.Fatal(err)
	}
	if !net.Quiesce(2 * time.Second) {
		t.Fatal("quiesce")
	}
	if fed.NumQueries() != 9 {
		t.Fatalf("queries = %d", fed.NumQueries())
	}
}

func TestFederationAdaptOrdering(t *testing.T) {
	// Early filtering means a lone query's filters only ever see
	// matching tuples; operator ordering matters when co-located
	// queries share the entity's (union) interest traffic. q1 and q2
	// have disjoint volume interests; the workload matches q2, so q1's
	// volume filter rejects everything and must move to the front.
	fed, net := newTestFederation(t, 2)
	q1 := engine.QuerySpec{
		ID:     "q1",
		Source: "quotes",
		Filters: []engine.FilterSpec{
			{Field: "price", Lo: 0, Hi: 1000, Cost: 1}, // passes all
			{Field: "volume", Lo: 0, Hi: 100, Cost: 1}, // rejects the workload
		},
	}
	q2 := engine.QuerySpec{
		ID:     "q2",
		Source: "quotes",
		Filters: []engine.FilterSpec{
			{Field: "volume", Lo: 200000, Hi: 1000000, Cost: 1},
		},
	}
	if err := fed.SubmitQueryTo(q1, "e00", nil); err != nil {
		t.Fatal(err)
	}
	if err := fed.SubmitQueryTo(q2, "e00", nil); err != nil {
		t.Fatal(err)
	}
	if !net.Quiesce(2 * time.Second) {
		t.Fatal("quiesce")
	}
	var batch stream.Batch
	for i := 0; i < 300; i++ {
		batch = append(batch, stream.NewTuple("quotes", uint64(i),
			time.Unix(int64(i), 0).UTC(),
			stream.String("S0000"), stream.Float(500), stream.Int(999999)))
	}
	if err := fed.Publish("quotes", batch); err != nil {
		t.Fatal(err)
	}
	if !net.Quiesce(2 * time.Second) {
		t.Fatal("quiesce")
	}
	if n := fed.AdaptOrdering(0); n != 1 {
		t.Fatalf("federation adapted %d queries, want 1 (q1)", n)
	}
}

func TestAutoRebalance(t *testing.T) {
	fed, _ := newTestFederation(t, 3)
	if err := fed.StartAutoRebalance(0, querygraph.HybridRepartitioner{}); err == nil {
		t.Error("zero interval accepted")
	}
	if err := fed.StartAutoRebalance(time.Hour, nil); err == nil {
		t.Error("nil repartitioner accepted")
	}
	// Pile queries on one entity; the loop should spread them.
	for i := 0; i < 6; i++ {
		if err := fed.SubmitQueryTo(priceQuery(fmt.Sprintf("q%d", i), 0, 500), "e00", nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := fed.StartAutoRebalance(20*time.Millisecond, querygraph.HybridRepartitioner{}); err != nil {
		t.Fatal(err)
	}
	if err := fed.StartAutoRebalance(time.Hour, querygraph.HybridRepartitioner{}); err == nil {
		t.Error("double start accepted")
	}
	deadline := time.Now().Add(5 * time.Second)
	for fed.AutoRebalanceMoves() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("auto-rebalance never moved a query")
		}
		time.Sleep(10 * time.Millisecond)
	}
	fed.StopAutoRebalance()
	fed.StopAutoRebalance() // idempotent
	// Consistency after the loop.
	if fed.NumQueries() != 6 {
		t.Fatalf("queries = %d", fed.NumQueries())
	}
	hostCounts := map[string]int{}
	for i := 0; i < 6; i++ {
		host, ok := fed.QueryEntity(fmt.Sprintf("q%d", i))
		if !ok {
			t.Fatalf("q%d lost", i)
		}
		hostCounts[host]++
	}
	if hostCounts["e00"] == 6 {
		t.Error("nothing moved off e00")
	}
}
