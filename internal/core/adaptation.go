// The adaptation controller: the background loop that closes the
// paper's adaptive-repartitioning cycle (Section 3.2.2). Each period it
// feeds the *measured* query graph (stats-plane rates and loads) into
// the Hybrid repartitioner, weighs every proposed move against the cost
// of actually performing it — serialized operator state plus the tuples
// that would need replaying — and executes only the moves whose gain
// clears the hysteresis threshold, through live migration.
package core

import (
	"fmt"
	"time"

	"sspd/internal/querygraph"
)

// adaptAmortization is the window over which a migration's one-time
// byte cost is amortized to compare against a continuous gain rate: a
// move must pay for itself within this horizon.
const adaptAmortization = 30 * time.Second

// adaptPauseEstimate approximates the handoff pause when estimating how
// many in-flight bytes a migration will buffer and replay.
const adaptPauseEstimate = 200 * time.Millisecond

// StartAdaptation launches the adaptation controller with the
// configured (or default) interval. Options.EnableAdaptation does this
// automatically at Start.
func (f *Federation) StartAdaptation() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.started {
		return fmt.Errorf("core: federation not started")
	}
	return f.startAdaptationLocked(f.opts.AdaptationInterval)
}

func (f *Federation) startAdaptationLocked(interval time.Duration) error {
	if f.adaptStop != nil {
		return fmt.Errorf("core: adaptation already running")
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	f.adaptStop = stop
	f.adaptDone = done
	go func() {
		defer close(done)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				_, _ = f.AdaptOnce()
			case <-stop:
				return
			}
		}
	}()
	return nil
}

// StopAdaptation halts the controller loop (idempotent).
func (f *Federation) StopAdaptation() {
	f.mu.Lock()
	stop, done := f.adaptStop, f.adaptDone
	f.adaptStop = nil
	f.adaptDone = nil
	f.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}

// AdaptationMoves reports the total queries moved by the controller.
func (f *Federation) AdaptationMoves() int64 { return f.adaptMoves.Value() }

// AdaptOnce runs one controller decision round synchronously (the loop
// calls it on every tick; tests call it directly for determinism). It
// returns how many queries were migrated.
func (f *Federation) AdaptOnce() (int, error) {
	g := f.MeasuredQueryGraph(0)
	old, ids := f.Assignment()
	if len(ids) < 2 || g.NumVertices() == 0 {
		return 0, nil
	}
	res, err := querygraph.HybridRepartitioner{}.Repartition(g, old,
		querygraph.Options{K: len(ids), Epsilon: f.opts.PartitionEpsilon})
	if err != nil {
		return 0, err
	}

	planned, moved, skipped := 0, 0, 0
	cur := old.Clone()
	for _, v := range g.Vertices() {
		to, ok := res.Assignment[v]
		if !ok || to == cur[v] {
			continue
		}
		planned++
		// Gain rate: edge-cut reduction (bytes/sec kept local) plus
		// hottest-entity relief, both evaluated against the *evolving*
		// assignment so sequential moves don't double-count.
		gain := querygraph.MoveGain(g, cur, v, to) +
			querygraph.BalanceGain(g, cur, v, to, len(ids))
		cost := f.migrationCostRate(string(v), ids[cur[v]])
		if gain <= f.opts.AdaptationHysteresis*cost {
			skipped++
			continue
		}
		if err := f.MigrateQuery(string(v), ids[to]); err != nil {
			skipped++
			continue
		}
		cur[v] = to
		moved++
		f.adaptMoves.Inc()
	}
	if planned > 0 {
		f.logger.Info("migration.plan", "", "adaptation round",
			"planned", fmt.Sprint(planned), "moved", fmt.Sprint(moved),
			"skipped", fmt.Sprint(skipped),
			"cut", fmt.Sprintf("%.1f", g.EdgeCut(cur)))
	}
	return moved, nil
}

// migrationCostRate estimates what moving a query costs, expressed as a
// byte rate commensurable with the repartitioner's edge weights: the
// serialized operator state plus the bytes expected to buffer during
// the handoff pause, amortized over the adaptation horizon.
func (f *Federation) migrationCostRate(id, entityID string) float64 {
	f.mu.Lock()
	en := f.entities[entityID]
	fq := f.queries[id]
	var rates map[string]StreamRate
	if fq != nil {
		rates = make(map[string]StreamRate)
		for _, s := range fq.spec.Streams() {
			rates[s] = f.rates[s]
		}
	}
	f.mu.Unlock()
	if en == nil || fq == nil {
		return 0
	}
	stateBytes := 0
	if n, ok := en.ent.QueryStateBytes(id); ok {
		stateBytes = n
	}
	replayBytes := 0.0
	for _, r := range rates {
		replayBytes += r.BytesPerSec() * adaptPauseEstimate.Seconds()
	}
	return (float64(stateBytes) + replayBytes) / adaptAmortization.Seconds()
}
