package core

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"sspd/internal/dissemination"
	"sspd/internal/simnet"
	"sspd/internal/stream"
	"sspd/internal/workload"
)

// newChaosFederation builds a started federation whose transport is a
// seeded FaultPlan: one quotes source, n entities on a line.
func newChaosFederation(t *testing.T, seed int64, n int, opts Options) (*Federation, *simnet.FaultPlan) {
	t.Helper()
	plan := simnet.NewFaultPlan(simnet.NewSim(nil), seed)
	t.Cleanup(func() { plan.Close() })
	catalog := workload.Catalog(100, 20)
	fed, err := New(plan, catalog, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fed.Close)
	if err := fed.AddSource("quotes", simnet.Point{}, StreamRate{TuplesPerSec: 1000, BytesPerTuple: 60}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("e%02d", i)
		if err := fed.AddEntity(id, simnet.Point{X: float64(10 + i*10)}, 2, miniFactory); err != nil {
			t.Fatal(err)
		}
	}
	if err := fed.Start(); err != nil {
		t.Fatal(err)
	}
	return fed, plan
}

// TestChaosEndToEndRecovery is the headline robustness property: under
// injected loss, duplication, a transient partition, AND a full entity
// crash, the federation detects the failure, repairs the dissemination
// tree, re-places the dead entity's queries, and — once the faults lift
// — delivers every published tuple to every query exactly once. Zero
// tuples are silently lost after recovery.
func TestChaosEndToEndRecovery(t *testing.T) {
	const n = 4
	fed, plan := newChaosFederation(t, 42, n, Options{
		Strategy:        dissemination.Balanced,
		Fanout:          2,
		ReliableControl: true,
		InterestRefresh: 25 * time.Millisecond,
	})
	var counts [n]atomic.Int64
	for i := 0; i < n; i++ {
		c := &counts[i]
		if err := fed.SubmitQueryTo(priceQuery(fmt.Sprintf("q%d", i), 0, 1000),
			fmt.Sprintf("e%02d", i),
			func(stream.Tuple) { c.Add(1) }); err != nil {
			t.Fatal(err)
		}
	}
	fed.Settle(2 * time.Second)
	snapshot := func() (s [n]int64) {
		for i := range counts {
			s[i] = counts[i].Load()
		}
		return s
	}
	tick := workload.NewTicker(3, 100, 1.2)
	publish := func(k int) {
		t.Helper()
		if err := fed.Publish("quotes", tick.Batch(k)); err != nil {
			t.Fatal(err)
		}
		fed.Settle(2 * time.Second)
	}

	// Baseline: exact delivery with the plan transparent.
	plan.SetEnabled(false)
	publish(10)
	for i, got := range snapshot() {
		if got != 10 {
			t.Fatalf("baseline: q%d delivered %d, want 10", i, got)
		}
	}

	// Chaos: light loss and duplication on every link, a transient
	// partition of e00's data link, and a full crash of e03 (all its
	// endpoints blackholed, as if the process died).
	if err := fed.EnableFailureDetection(20*time.Millisecond, 5); err != nil {
		t.Fatal(err)
	}
	plan.SetDefaultFaults(simnet.LinkFaults{Drop: 0.03, Duplicate: 0.02})
	plan.Partition("src:quotes", relayID("e00", "quotes"))
	plan.Blackhole(hbID("e03"), relayID("e03", "quotes"), "e03/p0", "e03/p1")
	plan.SetEnabled(true)
	publish(5) // traffic during the outage; no delivery guarantees here

	// Self-healing: the monitor expels e03 and its query is re-placed.
	deadline := time.Now().Add(10 * time.Second)
	for {
		host, ok := fed.QueryEntity("q3")
		if len(fed.EntityIDs()) == n-1 && ok && host != "e03" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("crashed entity not expelled/re-placed: entities=%v q3@%s/%v",
				fed.EntityIDs(), host, ok)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if fed.Coordinator().Events().Fails == 0 {
		t.Fatal("coordinator recorded no fail event")
	}

	// Faults lift; soft-state refresh re-converges the interest filters.
	plan.SetEnabled(false)
	fed.Settle(2 * time.Second)
	deadline = time.Now().Add(10 * time.Second)
	for {
		before := snapshot()
		publish(1)
		after := snapshot()
		ok := true
		for i := range after {
			if after[i]-before[i] != 1 {
				ok = false
			}
		}
		if ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("interest filters did not re-converge: probe deltas %v -> %v", before, after)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// The recovery guarantee: exactly-once delivery for every query,
	// including the re-placed one — nothing silently lost or duplicated.
	before := snapshot()
	publish(10)
	after := snapshot()
	for i := range after {
		if d := after[i] - before[i]; d != 10 {
			t.Errorf("after recovery: q%d delivered %d of 10 (lost or duplicated)", i, d)
		}
	}

	// The chaos actually happened and is visible in the metrics.
	if tot := plan.InjectedTotals(); len(tot) == 0 {
		t.Error("no faults recorded as injected")
	}
	var sb strings.Builder
	if err := fed.MetricsRegistry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{"sspd_faults_injected", "sspd_control_retries_total", "sspd_control_giveups_total"} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics exposition missing %s", want)
		}
	}
}

// TestControlGiveUpDoesNotExpelHealthyEntity: a give-up report against
// a reachable entity (e.g. the reporter was the partitioned side) must
// not get it expelled — the detector's confirmation probe clears it.
func TestControlGiveUpDoesNotExpelHealthyEntity(t *testing.T) {
	fed, _ := newChaosFederation(t, 1, 3, Options{ReliableControl: true})
	if err := fed.EnableFailureDetection(20*time.Millisecond, 3); err != nil {
		t.Fatal(err)
	}
	fed.controlGiveUp(relayID("e01", "quotes"), dissemination.KindInterest)
	if fed.ControlGiveUps() != 1 {
		t.Fatalf("ControlGiveUps = %d, want 1", fed.ControlGiveUps())
	}
	// Several detection windows pass; the healthy entity stays.
	time.Sleep(200 * time.Millisecond)
	if got := len(fed.EntityIDs()); got != 3 {
		t.Fatalf("healthy entity expelled after give-up report: entities = %v", fed.EntityIDs())
	}
}

func TestEntityForEndpoint(t *testing.T) {
	cases := []struct {
		ep   simnet.NodeID
		id   string
		ok   bool
		what string
	}{
		{relayID("e01", "quotes"), "e01", true, "relay endpoint"},
		{hbID("e01"), "e01", true, "heartbeat endpoint"},
		{"e01/p0", "e01", true, "processor endpoint"},
		{sourceID("quotes"), "", false, "stream source"},
		{"portal/hb", "", false, "portal monitor"},
		{"bare", "", false, "unstructured name"},
	}
	for _, c := range cases {
		id, ok := entityForEndpoint(c.ep)
		if id != c.id || ok != c.ok {
			t.Errorf("%s %q: got (%q, %v), want (%q, %v)", c.what, c.ep, id, ok, c.id, c.ok)
		}
	}
}
