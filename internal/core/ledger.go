// Package core assembles the paper's two-layer architecture: the
// inter-entity layer (dissemination trees, coordinator-tree query
// routing, query-graph allocation, business accounting) on top of the
// intra-entity layer (package entity) and the substrates (engine,
// dissemination, coordinator, querygraph, simnet).
package core

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Ledger implements the paper's incentive model: "an entity can be paid
// based on the length of time when it is executing the queries". It
// accumulates query-execution seconds per entity, following queries as
// they migrate.
type Ledger struct {
	mu      sync.Mutex
	now     func() time.Time
	accrued map[string]time.Duration // entity -> closed-out execution time
	active  map[string]activeQuery   // query -> current run
}

type activeQuery struct {
	entity string
	since  time.Time
}

// NewLedger returns an empty ledger. clock may be nil (wall clock).
func NewLedger(clock func() time.Time) *Ledger {
	if clock == nil {
		clock = time.Now
	}
	return &Ledger{
		now:     clock,
		accrued: make(map[string]time.Duration),
		active:  make(map[string]activeQuery),
	}
}

// Start begins accruing a query's execution time to an entity.
func (l *Ledger) Start(queryID, entityID string) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, dup := l.active[queryID]; dup {
		return fmt.Errorf("core: query %s already accruing", queryID)
	}
	l.active[queryID] = activeQuery{entity: entityID, since: l.now()}
	return nil
}

// Stop closes out a query's accrual.
func (l *Ledger) Stop(queryID string) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	a, ok := l.active[queryID]
	if !ok {
		return fmt.Errorf("core: query %s not accruing", queryID)
	}
	l.accrued[a.entity] += l.now().Sub(a.since)
	delete(l.active, queryID)
	return nil
}

// Move transfers a query's accrual to another entity (migration): the
// old entity is paid for the time served so far.
func (l *Ledger) Move(queryID, toEntity string) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	a, ok := l.active[queryID]
	if !ok {
		return fmt.Errorf("core: query %s not accruing", queryID)
	}
	now := l.now()
	l.accrued[a.entity] += now.Sub(a.since)
	l.active[queryID] = activeQuery{entity: toEntity, since: now}
	return nil
}

// Charge returns an entity's total accrued execution time including
// in-flight accrual.
func (l *Ledger) Charge(entityID string) time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	total := l.accrued[entityID]
	now := l.now()
	for _, a := range l.active {
		if a.entity == entityID {
			total += now.Sub(a.since)
		}
	}
	return total
}

// Charges returns every entity's total, sorted by entity ID.
func (l *Ledger) Charges() []EntityCharge {
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.now()
	totals := make(map[string]time.Duration, len(l.accrued))
	for e, d := range l.accrued {
		totals[e] += d
	}
	for _, a := range l.active {
		totals[a.entity] += now.Sub(a.since)
	}
	out := make([]EntityCharge, 0, len(totals))
	for e, d := range totals {
		out = append(out, EntityCharge{Entity: e, Execution: d})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Entity < out[j].Entity })
	return out
}

// EntityCharge is one entity's accrued execution time.
type EntityCharge struct {
	Entity    string
	Execution time.Duration
}

// ActiveQueries returns the number of queries currently accruing.
func (l *Ledger) ActiveQueries() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.active)
}

// ledgerState is the ledger's serialized form: closed-out accrual per
// entity plus in-flight runs, both with absolute times so a restore on
// another clock stays consistent.
type ledgerState struct {
	AccruedNs map[string]int64        `json:"accrued_ns"`
	Active    map[string]activeState `json:"active,omitempty"`
}

type activeState struct {
	Entity      string `json:"entity"`
	SinceUnixNs int64  `json:"since_unix_ns"`
}

// Snapshot serializes the ledger for the checkpoint store, so accrued
// execution time survives a coordinator crash (billing durability).
func (l *Ledger) Snapshot() []byte {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := ledgerState{
		AccruedNs: make(map[string]int64, len(l.accrued)),
		Active:    make(map[string]activeState, len(l.active)),
	}
	for e, d := range l.accrued {
		st.AccruedNs[e] = int64(d)
	}
	for q, a := range l.active {
		st.Active[q] = activeState{Entity: a.entity, SinceUnixNs: a.since.UnixNano()}
	}
	data, err := json.Marshal(st)
	if err != nil {
		return nil // unreachable: ledgerState marshals cleanly by construction
	}
	return data
}

// Restore replaces the ledger's contents from a Snapshot. In-flight
// runs resume accruing from their recorded start times.
func (l *Ledger) Restore(data []byte) error {
	var st ledgerState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("core: ledger restore: %w", err)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.accrued = make(map[string]time.Duration, len(st.AccruedNs))
	for e, ns := range st.AccruedNs {
		l.accrued[e] = time.Duration(ns)
	}
	l.active = make(map[string]activeQuery, len(st.Active))
	for q, a := range st.Active {
		l.active[q] = activeQuery{entity: a.Entity, since: time.Unix(0, a.SinceUnixNs)}
	}
	return nil
}
