package core

import (
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sspd/internal/coordinator"
	"sspd/internal/dissemination"
	"sspd/internal/engine"
	"sspd/internal/entity"
	"sspd/internal/metrics"
	"sspd/internal/obslog"
	"sspd/internal/profile"
	"sspd/internal/querygraph"
	"sspd/internal/simnet"
	"sspd/internal/stream"
	"sspd/internal/trace"
)

// Options configures a federation.
type Options struct {
	// Strategy selects the dissemination-tree shape (default Locality).
	Strategy dissemination.Strategy
	// Fanout bounds dissemination-tree children per node (default 4).
	Fanout int
	// CoordinatorK is the coordinator-tree cluster parameter (default 3).
	CoordinatorK int
	// PartitionEpsilon is the allocation balance tolerance (default 0.2).
	PartitionEpsilon float64
	// FragmentsPerQuery is how many fragments each query splits into
	// inside its entity (default 1; joins never split).
	FragmentsPerQuery int
	// Clock is the accounting clock (default wall clock).
	Clock func() time.Time
	// ReliableControl delivers interest registrations through reliable
	// endpoints (acks, bounded retries, exponential backoff); exhausted
	// retries feed the failure detector. Tuple traffic is unaffected.
	ReliableControl bool
	// InterestRefresh, when positive, re-announces every relay's
	// aggregate interest upward on this period — soft state that
	// re-converges ancestor filters after loss or tree repair.
	InterestRefresh time.Duration
	// Logger receives the federation's structured events (obslog). Nil
	// builds a default logger: warnings and errors as slog text on
	// stderr, every event recorded in a bounded journal served at
	// GET /events.
	Logger *obslog.Logger
	// EnableAdaptation starts the background adaptation controller at
	// Start: it periodically feeds the measured query graph into the
	// Hybrid repartitioner and executes the moves that clear the
	// migration-cost hysteresis check through live migration
	// (DESIGN.md §10).
	EnableAdaptation bool
	// AdaptationInterval is the controller's decision period (default
	// 2s when adaptation is enabled).
	AdaptationInterval time.Duration
	// AdaptationHysteresis scales the migration-cost threshold a move's
	// gain must exceed before it is executed (default 1; higher values
	// move less).
	AdaptationHysteresis float64
	// Engine names the engine implementation entities compile queries
	// with when AddEntity/JoinEntity receive a nil factory: "" or
	// "async" (the per-query-goroutine Engine), "mini" (synchronous),
	// "sched" (single scheduler goroutine), or "shard" (the
	// shard-per-core vectorized engine, DESIGN.md §13). An explicit
	// factory always wins.
	Engine string
	// EnableTupleRouting activates the Adaptation Module's per-tuple
	// downstream selection (paper §4.2, DESIGN.md §15): every placement
	// replicates middle query fragments on RoutingReplicas processors
	// and each inter-fragment tuple is routed to the candidate with the
	// lowest smoothed observed delay. The AM plane feeds the choosers
	// from latency-attribution trace completions, so routing needs
	// EnableTracing to adapt (without it the choosers fall back to
	// round-robin balancing). Off (the default) is the paper's static
	// ordering baseline: one instance per fragment, fixed chain.
	EnableTupleRouting bool
	// RoutingReplicas is the candidate-set size for middle fragments
	// when tuple routing is enabled (default 2).
	RoutingReplicas int
	// RoutingExplore sends every Nth routed tuple to a non-best
	// candidate so stale delay scores recover (default 32).
	RoutingExplore int
}

// engineFactoryFor resolves an Options.Engine kind to a factory; nil
// with no error means the entity default (the asynchronous Engine).
func engineFactoryFor(kind string) (entity.EngineFactory, error) {
	switch kind {
	case "", "async":
		return nil, nil
	case "mini":
		return func(name string, cat *stream.Catalog) engine.Processor {
			return engine.NewMini(name, cat)
		}, nil
	case "sched":
		return func(name string, cat *stream.Catalog) engine.Processor {
			return engine.NewSched(name, cat, engine.PolicyFIFO)
		}, nil
	case "shard":
		return func(name string, cat *stream.Catalog) engine.Processor {
			return engine.NewShard(name, cat, 0)
		}, nil
	default:
		return nil, fmt.Errorf("core: unknown engine kind %q (valid: async, mini, sched, shard)", kind)
	}
}

func (o Options) normalized() Options {
	if o.Fanout <= 0 {
		o.Fanout = 4
	}
	if o.CoordinatorK < 2 {
		o.CoordinatorK = 3
	}
	if o.PartitionEpsilon <= 0 {
		o.PartitionEpsilon = 0.2
	}
	if o.FragmentsPerQuery <= 0 {
		o.FragmentsPerQuery = 1
	}
	if o.AdaptationInterval <= 0 {
		o.AdaptationInterval = 2 * time.Second
	}
	if o.AdaptationHysteresis <= 0 {
		o.AdaptationHysteresis = 1
	}
	if o.RoutingReplicas <= 0 {
		o.RoutingReplicas = 2
	}
	if o.RoutingExplore <= 0 {
		o.RoutingExplore = 32
	}
	return o
}

// Federation is the running two-layer system (Figure 1): stream sources,
// entities (each an intra-entity cluster wrapped by dissemination
// relays), the coordinator tree that routes the query stream, the query
// graph that drives allocation, and the ledger that pays entities.
type Federation struct {
	transport simnet.Transport
	catalog   *stream.Catalog
	opts      Options

	mu       sync.Mutex
	sources  map[string]*sourceNode
	entities map[string]*entityNode
	coord    *coordinator.Tree
	ledger   *Ledger
	rates    map[string]StreamRate
	queries  map[string]*fedQuery
	results  map[string]func(stream.Tuple)
	// relayIndex locates any relay (entity or source) by endpoint, for
	// refreshing interests after dynamic tree rewires.
	relayIndex map[simnet.NodeID]*dissemination.Relay
	// monitor is the portal-side failure detector (nil until
	// EnableFailureDetection).
	monitor *coordinator.Detector
	// rebalanceStop/Done manage the auto-rebalance loop.
	rebalanceStop  chan struct{}
	rebalanceDone  chan struct{}
	rebalanceMoves metrics.Counter
	// adaptStop/Done manage the adaptation-controller loop; the
	// migration counters and history ring back sspd_migrations_total
	// and the /cluster migration table.
	adaptStop     chan struct{}
	adaptDone     chan struct{}
	adaptMoves    metrics.Counter
	migCommits    metrics.Counter
	migRollbacks  metrics.Counter
	migStateBytes metrics.Counter
	migReplayed   metrics.Counter
	migLog        []MigrationRecord
	// controlGiveUps counts control-plane deliveries abandoned after
	// exhausting their retries (each one is also reported to the failure
	// detector when monitoring is enabled).
	controlGiveUps metrics.Counter
	// registry is the federation's metric registry; the portal scrapes
	// it at GET /metrics. Derived gauges (PR_k, PR_max, edge cut) are
	// computed by a collector at scrape time, never on the hot path.
	registry *metrics.Registry
	// tracer is the per-tuple trace sampler (nil until EnableTracing).
	tracer *trace.Tracer
	// logger is the structured event sink (never nil); its journal
	// backs GET /events.
	logger *obslog.Logger
	// stats is the cluster stats plane (nil until EnableStatsPlane).
	stats *statsPlane
	// lat is the latency attribution plane (nil until
	// EnableLatencyAttribution).
	lat *latencyPlane
	// spanLat points at the latency plane's span-completion consumer —
	// copy-on-write so the tracer's completion hook (tuple path) never
	// takes f.mu. Nil until EnableLatencyAttribution.
	spanLat atomic.Pointer[latencyPlane]
	// am is the Adaptation Module plane (nil unless EnableTupleRouting):
	// it routes trace-measured per-candidate delays back into the
	// entities' downstream choosers.
	am *amPlane
	// amReorders counts operator reorders applied by AdaptOrdering
	// sweeps across the federation (sspd_am_reorders_total).
	amReorders metrics.Counter
	// ckpt is the durable-checkpoint plane (nil until
	// EnableCheckpoints).
	ckpt *ckptPlane
	// eng is the engine introspection plane (nil until
	// EnableEngineIntrospection).
	eng *enginePlane
	// prof is the continuous profiling recorder (nil until
	// EnableProfiling).
	prof *profile.Recorder
	// entityFailErrors counts detector-confirmed expulsions whose
	// FailEntity call itself failed — failures that would otherwise be
	// silently dropped by the async confirm callback.
	entityFailErrors metrics.Counter
	// Recovery counters and history ring back sspd_recoveries_total and
	// the /cluster recovery table.
	recRestored      metrics.Counter
	recStateless     metrics.Counter
	recFailed        metrics.Counter
	recReplayed      metrics.Counter
	recReplayFetched metrics.Counter
	recLog           []RecoveryRecord
	started          bool
	closed           bool
}

type sourceNode struct {
	stream string
	pos    simnet.Point
	rate   StreamRate
	relay  *dissemination.Relay
	tree   *dissemination.Tree
	// published counts tuples injected at this source — the measured
	// arrival rate the stats plane differentiates for the query graph.
	published metrics.Counter
}

type entityNode struct {
	id     string
	pos    simnet.Point
	ent    *entity.Entity
	relays map[string]*dissemination.Relay // stream -> relay
	// hb is the entity's heartbeat responder endpoint.
	hb *coordinator.Detector
}

// hbID names an entity's heartbeat endpoint.
func hbID(entityID string) simnet.NodeID {
	return simnet.NodeID(entityID + "/hb")
}

type fedQuery struct {
	spec   engine.QuerySpec
	entity string
	// migrating guards the query against concurrent migration or
	// removal while a live migration is in flight.
	migrating bool
}

// relayID names an entity's per-stream dissemination endpoint.
func relayID(entityID, streamName string) simnet.NodeID {
	return simnet.NodeID(entityID + ":" + streamName)
}

func sourceID(streamName string) simnet.NodeID {
	return simnet.NodeID("src:" + streamName)
}

// New creates an empty federation.
func New(transport simnet.Transport, catalog *stream.Catalog, opts Options) (*Federation, error) {
	if transport == nil || catalog == nil {
		return nil, fmt.Errorf("core: federation needs a transport and a catalog")
	}
	opts = opts.normalized()
	f := &Federation{
		transport:  transport,
		catalog:    catalog,
		opts:       opts,
		sources:    make(map[string]*sourceNode),
		entities:   make(map[string]*entityNode),
		coord:      coordinator.NewTree(opts.CoordinatorK),
		ledger:     NewLedger(opts.Clock),
		rates:      make(map[string]StreamRate),
		queries:    make(map[string]*fedQuery),
		results:    make(map[string]func(stream.Tuple)),
		relayIndex: make(map[simnet.NodeID]*dissemination.Relay),
		registry:   metrics.NewRegistry(),
		logger:     opts.Logger,
	}
	if f.logger == nil {
		f.logger = obslog.NewText(os.Stderr, obslog.LevelWarn, obslog.DefaultJournalCapacity)
	}
	// Structural tree operations the tree decides on its own become
	// journal events; driven operations (join/leave/fail) are journaled
	// at their call sites with richer context.
	f.coord.SetEventSink(func(op string, leader coordinator.MemberID, level int) {
		f.logger.Info("coordinator."+op, string(leader), "coordinator tree "+op, "level", level)
	})
	f.registry.RegisterCollector(f.collectMetrics)
	if opts.EnableTupleRouting {
		f.am = newAMPlane(f)
	}
	f.registry.RegisterCollector(f.amCollectInto)
	// A fault-injecting transport exports its injection counters through
	// the federation's registry.
	if fp, ok := transport.(interface {
		SetRegistry(*metrics.Registry)
	}); ok {
		fp.SetRegistry(f.registry)
	}
	return f, nil
}

// relayOptions builds the dissemination options every relay in this
// federation is constructed with.
func (f *Federation) relayOptions() dissemination.RelayOptions {
	opts := dissemination.RelayOptions{RefreshInterval: f.opts.InterestRefresh, Log: f.logger}
	if f.opts.ReliableControl {
		opts.Reliable = &simnet.ReliableConfig{OnGiveUp: f.controlGiveUp}
	}
	return opts
}

// Logger returns the federation's structured event logger (never nil).
func (f *Federation) Logger() *obslog.Logger { return f.logger }

// Journal returns the bounded event flight recorder backing GET /events.
func (f *Federation) Journal() *obslog.Journal { return f.logger.Journal() }

// controlGiveUp is the reliable layer's give-up callback: a control
// message to `to` exhausted its retries. The endpoint is mapped back to
// its entity and fed to the failure detector as an out-of-band
// suspicion: the detector fast-tracks its own probe of that entity and
// expels it only if the probe also goes unanswered — so a dead entity
// is discovered through control traffic well before the full heartbeat
// deadline, while a healthy one (the reporter may be the partitioned
// side) survives the report.
func (f *Federation) controlGiveUp(to simnet.NodeID, kind string) {
	f.controlGiveUps.Inc()
	id, ok := entityForEndpoint(to)
	if !ok {
		return
	}
	f.mu.Lock()
	mon := f.monitor
	_, present := f.entities[id]
	f.mu.Unlock()
	f.logger.Info("control.giveup", id, "control delivery abandoned after retries",
		"endpoint", to, "kind", kind)
	if mon != nil && present {
		if mon.ReportFailure(hbID(id)) {
			f.logger.Warn("detector.suspect", id, "entity suspected after control give-up",
				"endpoint", to)
		}
	}
}

// entityForEndpoint maps a transport endpoint back to the entity that
// owns it: "<entity>:<stream>" (relay), "<entity>/hb" (heartbeat), and
// "<entity>/p<i>" (processor) all resolve to "<entity>". Source and
// portal endpoints resolve to nothing.
func entityForEndpoint(ep simnet.NodeID) (string, bool) {
	s := string(ep)
	if strings.HasPrefix(s, "src:") || strings.HasPrefix(s, "portal/") {
		return "", false
	}
	if i := strings.IndexAny(s, ":/"); i > 0 {
		return s[:i], true
	}
	return "", false
}

// ControlGiveUps reports abandoned control-plane deliveries so far.
func (f *Federation) ControlGiveUps() int64 { return f.controlGiveUps.Value() }

// AddSource registers a stream source before Start. rate is the nominal
// stream rate used for query-graph edge weights.
func (f *Federation) AddSource(streamName string, pos simnet.Point, rate StreamRate) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.started {
		return fmt.Errorf("core: sources must be added before Start")
	}
	if _, ok := f.catalog.Lookup(streamName); !ok {
		return fmt.Errorf("core: stream %q not in the global schema", streamName)
	}
	if _, dup := f.sources[streamName]; dup {
		return fmt.Errorf("core: source for %q already added", streamName)
	}
	f.sources[streamName] = &sourceNode{stream: streamName, pos: pos, rate: rate}
	f.rates[streamName] = rate
	return nil
}

// AddEntity registers a business entity before Start. factory selects
// its engine (nil = the full asynchronous engine).
func (f *Federation) AddEntity(id string, pos simnet.Point, nProcs int, factory entity.EngineFactory) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.started {
		return fmt.Errorf("core: entities must be added before Start")
	}
	if _, dup := f.entities[id]; dup {
		return fmt.Errorf("core: entity %q already added", id)
	}
	if factory == nil {
		var ferr error
		if factory, ferr = engineFactoryFor(f.opts.Engine); ferr != nil {
			return ferr
		}
	}
	ent, err := entity.New(id, f.transport, f.catalog, nProcs, factory)
	if err != nil {
		return err
	}
	ent.SetResultHandler(f.deliverResult)
	if f.opts.EnableTupleRouting {
		ent.SetTupleRouting(f.opts.RoutingReplicas, f.opts.RoutingExplore)
	}
	hb, err := coordinator.NewDetector(f.transport, hbID(id), time.Second, 3, nil)
	if err != nil {
		ent.Close()
		return err
	}
	if _, err := f.coord.Join(coordinator.MemberID(id), pos); err != nil {
		_ = hb.Close()
		ent.Close()
		return err
	}
	f.entities[id] = &entityNode{
		id:     id,
		pos:    pos,
		ent:    ent,
		relays: make(map[string]*dissemination.Relay),
		hb:     hb,
	}
	f.logger.Info("entity.join", id, "entity added", "procs", nProcs)
	return nil
}

// Start builds one dissemination tree per source stream over all
// entities and wires each entity's relay to its intra-entity ingest.
func (f *Federation) Start() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.started {
		return fmt.Errorf("core: already started")
	}
	if len(f.sources) == 0 {
		return fmt.Errorf("core: no sources")
	}
	if len(f.entities) == 0 {
		return fmt.Errorf("core: no entities")
	}
	ids := make([]string, 0, len(f.entities))
	for id := range f.entities {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	streams := make([]string, 0, len(f.sources))
	for s := range f.sources {
		streams = append(streams, s)
	}
	sort.Strings(streams)

	for _, s := range streams {
		src := f.sources[s]
		members := make([]dissemination.Member, 0, len(ids))
		for _, id := range ids {
			members = append(members, dissemination.Member{
				ID:  relayID(id, s),
				Pos: f.entities[id].pos,
			})
		}
		tree, err := dissemination.Build(s, dissemination.Member{ID: sourceID(s), Pos: src.pos},
			members, f.opts.Strategy, f.opts.Fanout)
		if err != nil {
			return err
		}
		schema, _ := f.catalog.Lookup(s)
		srcRelay, err := dissemination.NewRelayWith(tree, sourceID(s), schema, f.transport, nil, f.relayOptions())
		if err != nil {
			return err
		}
		src.relay = srcRelay
		src.tree = tree
		f.relayIndex[sourceID(s)] = srcRelay
		for _, id := range ids {
			en := f.entities[id]
			// Batch delivery: the relay clones locally matched tuples and
			// hands them over in one call per batch.
			opts := f.relayOptions()
			opts.DeliverBatch = en.ent.IngestBatch
			relay, err := dissemination.NewRelayWith(tree, relayID(id, s), schema,
				f.transport, nil, opts)
			if err != nil {
				return err
			}
			en.relays[s] = relay
			f.relayIndex[relayID(id, s)] = relay
		}
	}
	f.started = true
	if f.opts.EnableAdaptation {
		f.startAdaptationLocked(f.opts.AdaptationInterval)
	}
	return nil
}

// Publish injects a batch at a stream's source and disseminates it. When
// tracing is enabled, sampled tuples get a span stamped here (the batch
// is copied before mutation so callers keep their tuples untouched).
func (f *Federation) Publish(streamName string, batch stream.Batch) error {
	f.mu.Lock()
	src, ok := f.sources[streamName]
	started := f.started
	tracer := f.tracer
	f.mu.Unlock()
	if !started {
		return fmt.Errorf("core: federation not started")
	}
	if !ok || src.relay == nil {
		return fmt.Errorf("core: no source for %q", streamName)
	}
	src.published.Add(int64(len(batch)))
	if tracer != nil && tracer.SampleEvery() > 0 {
		node := string(sourceID(streamName))
		var out stream.Batch
		for i, t := range batch {
			if id := tracer.Sample(streamName, t.Seq, node); id != 0 {
				if out == nil {
					out = append(stream.Batch(nil), batch...)
				}
				out[i].Span = uint64(id)
			}
		}
		if out != nil {
			batch = out
		}
	}
	if err := src.relay.Publish(batch); err != nil {
		return err
	}
	// The replay ring records what was actually disseminated, so
	// recovery can re-feed the post-checkpoint suffix.
	if p := f.ckptRef(); p != nil {
		p.observePublish(streamName, batch)
	}
	return nil
}

// SubmitQuery allocates a query via the coordinator tree: the query
// enters at its client's origin, descends to the least-loaded entity of
// the closest leaf cluster, and is placed there. onResult may be nil.
// It returns the chosen entity.
func (f *Federation) SubmitQuery(spec engine.QuerySpec, origin simnet.Point,
	onResult func(stream.Tuple)) (string, error) {
	f.mu.Lock()
	if !f.started {
		f.mu.Unlock()
		return "", fmt.Errorf("core: federation not started")
	}
	if _, dup := f.queries[spec.ID]; dup {
		f.mu.Unlock()
		return "", fmt.Errorf("core: query %s already submitted", spec.ID)
	}
	load := func(m coordinator.MemberID) float64 {
		if en, ok := f.entities[string(m)]; ok {
			return en.ent.Load()
		}
		return 0
	}
	member, _, err := f.coord.RouteQuery(origin, load)
	f.mu.Unlock()
	if err != nil {
		return "", err
	}
	entityID := string(member)
	if err := f.placeOn(entityID, spec, onResult); err != nil {
		return "", err
	}
	return entityID, nil
}

// SubmitQueryTo places a query on a specific entity (the batch
// allocator's path).
func (f *Federation) SubmitQueryTo(spec engine.QuerySpec, entityID string,
	onResult func(stream.Tuple)) error {
	f.mu.Lock()
	if !f.started {
		f.mu.Unlock()
		return fmt.Errorf("core: federation not started")
	}
	if _, dup := f.queries[spec.ID]; dup {
		f.mu.Unlock()
		return fmt.Errorf("core: query %s already submitted", spec.ID)
	}
	f.mu.Unlock()
	return f.placeOn(entityID, spec, onResult)
}

func (f *Federation) placeOn(entityID string, spec engine.QuerySpec, onResult func(stream.Tuple)) error {
	f.mu.Lock()
	en, ok := f.entities[entityID]
	if !ok {
		f.mu.Unlock()
		return fmt.Errorf("core: unknown entity %q", entityID)
	}
	f.mu.Unlock()

	if err := en.ent.PlaceQuery(spec, f.opts.FragmentsPerQuery); err != nil {
		return err
	}
	f.mu.Lock()
	f.queries[spec.ID] = &fedQuery{spec: spec, entity: entityID}
	if onResult != nil {
		f.results[spec.ID] = onResult
	}
	f.mu.Unlock()
	if err := f.ledger.Start(spec.ID, entityID); err != nil {
		f.logger.Warn("ledger.error", entityID, "ledger start failed",
			"query", spec.ID, "err", err.Error())
	}
	f.routesChanged()
	return f.refreshInterests(entityID, spec.Streams())
}

// RemoveQuery withdraws a query from the federation. The federation's
// books are updated only after the entity-level removal succeeds, so
// the two can never disagree about the query's existence.
func (f *Federation) RemoveQuery(id string) error {
	f.mu.Lock()
	fq, ok := f.queries[id]
	if !ok {
		f.mu.Unlock()
		return fmt.Errorf("core: unknown query %s", id)
	}
	if fq.migrating {
		f.mu.Unlock()
		return fmt.Errorf("core: query %s is migrating", id)
	}
	en := f.entities[fq.entity]
	f.mu.Unlock()
	if _, err := en.ent.RemoveQuery(id); err != nil {
		return err
	}
	f.mu.Lock()
	delete(f.queries, id)
	delete(f.results, id)
	f.mu.Unlock()
	if p := f.ckptRef(); p != nil {
		p.forgetQuery(id)
	}
	if err := f.ledger.Stop(id); err != nil {
		f.logger.Warn("ledger.error", fq.entity, "ledger stop failed",
			"query", id, "err", err.Error())
	}
	f.routesChanged()
	return f.refreshInterests(fq.entity, fq.spec.Streams())
}

// refreshInterests pushes an entity's current aggregated interest for
// the given streams into its dissemination relays (which re-register up
// their trees).
func (f *Federation) refreshInterests(entityID string, streams []string) error {
	f.mu.Lock()
	en, ok := f.entities[entityID]
	f.mu.Unlock()
	if !ok {
		return fmt.Errorf("core: unknown entity %q", entityID)
	}
	for _, s := range streams {
		relay := en.relays[s]
		if relay == nil {
			continue
		}
		if err := relay.SetLocalInterest(en.ent.Interest(s)); err != nil {
			return err
		}
	}
	return nil
}

// deliverResult routes a final result tuple to its query's subscriber.
func (f *Federation) deliverResult(queryID string, t stream.Tuple) {
	f.mu.Lock()
	fn := f.results[queryID]
	f.mu.Unlock()
	if fn != nil {
		fn(t)
	}
}

// QueryGraph builds the current query graph from all active queries.
func (f *Federation) QueryGraph(minEdge float64) *querygraph.Graph {
	f.mu.Lock()
	specs := make([]engine.QuerySpec, 0, len(f.queries))
	ids := make([]string, 0, len(f.queries))
	for id := range f.queries {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		specs = append(specs, f.queries[id].spec)
	}
	rates := make(map[string]StreamRate, len(f.rates))
	for s, r := range f.rates {
		rates[s] = r
	}
	f.mu.Unlock()
	return BuildQueryGraph(specs, f.catalog, rates, 0)
}

// Assignment returns the current query→entity allocation as a
// partitioning over the sorted entity list.
func (f *Federation) Assignment() (querygraph.Partitioning, []string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	ids := f.entityIDsLocked()
	index := make(map[string]int, len(ids))
	for i, id := range ids {
		index[id] = i
	}
	p := make(querygraph.Partitioning, len(f.queries))
	for q, fq := range f.queries {
		p[querygraph.VertexID(q)] = index[fq.entity]
	}
	return p, ids
}

func (f *Federation) entityIDsLocked() []string {
	ids := make([]string, 0, len(f.entities))
	for id := range f.entities {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Rebalance runs a repartitioner over the live query graph and migrates
// queries to realize the new assignment. It returns the number of
// migrations performed.
func (f *Federation) Rebalance(r querygraph.Repartitioner) (int, error) {
	g := f.QueryGraph(0)
	old, ids := f.Assignment()
	res, err := r.Repartition(g, old, querygraph.Options{
		K:       len(ids),
		Epsilon: f.opts.PartitionEpsilon,
	})
	if err != nil {
		return 0, err
	}
	moved := 0
	// Deterministic migration order.
	qids := make([]string, 0, len(res.Assignment))
	for q := range res.Assignment {
		qids = append(qids, string(q))
	}
	sort.Strings(qids)
	for _, q := range qids {
		part := res.Assignment[querygraph.VertexID(q)]
		if part < 0 || part >= len(ids) {
			continue
		}
		target := ids[part]
		f.mu.Lock()
		fq, ok := f.queries[q]
		cur := ""
		if ok {
			cur = fq.entity
		}
		f.mu.Unlock()
		if !ok || cur == target {
			continue
		}
		if err := f.MigrateQuery(q, target); err != nil {
			return moved, err
		}
		moved++
	}
	if moved > 0 {
		f.logger.Info("migration.decide", "", "rebalance migrated queries",
			"moves", moved, "edge_cut", fmt.Sprintf("%.1f", g.EdgeCut(res.Assignment)))
	}
	return moved, nil
}

// JoinEntity adds an entity to a RUNNING federation (the paper's
// "entities may join at any time"): it joins the coordinator tree and
// every stream's dissemination tree, and becomes eligible for query
// allocation immediately.
func (f *Federation) JoinEntity(id string, pos simnet.Point, nProcs int, factory entity.EngineFactory) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.started {
		return fmt.Errorf("core: federation not started (use AddEntity before Start)")
	}
	if _, dup := f.entities[id]; dup {
		return fmt.Errorf("core: entity %q already present", id)
	}
	if factory == nil {
		var ferr error
		if factory, ferr = engineFactoryFor(f.opts.Engine); ferr != nil {
			return ferr
		}
	}
	ent, err := entity.New(id, f.transport, f.catalog, nProcs, factory)
	if err != nil {
		return err
	}
	ent.SetResultHandler(f.deliverResult)
	if f.opts.EnableTupleRouting {
		ent.SetTupleRouting(f.opts.RoutingReplicas, f.opts.RoutingExplore)
	}
	hb, err := coordinator.NewDetector(f.transport, hbID(id), time.Second, 3, nil)
	if err != nil {
		ent.Close()
		return err
	}
	if _, err := f.coord.Join(coordinator.MemberID(id), pos); err != nil {
		_ = hb.Close()
		ent.Close()
		return err
	}
	en := &entityNode{id: id, pos: pos, ent: ent, relays: make(map[string]*dissemination.Relay), hb: hb}
	for _, s := range f.streamNamesLocked() {
		src := f.sources[s]
		rid := relayID(id, s)
		rw, err := src.tree.AddMember(dissemination.Member{ID: rid, Pos: pos}, f.opts.Fanout)
		if err != nil {
			f.detachEntityLocked(en, id)
			return err
		}
		schema, _ := f.catalog.Lookup(s)
		opts := f.relayOptions()
		opts.DeliverBatch = ent.IngestBatch
		relay, err := dissemination.NewRelayWith(src.tree, rid, schema, f.transport, nil, opts)
		if err != nil {
			_, _ = src.tree.RemoveMember(rid, f.opts.Fanout)
			f.detachEntityLocked(en, id)
			return err
		}
		en.relays[s] = relay
		f.relayIndex[rid] = relay
		_ = rw // the new member has no interest yet; refresh happens on placement
	}
	f.entities[id] = en
	f.logger.Info("entity.join", id, "entity joined running federation", "procs", nProcs)
	if f.stats != nil {
		f.stats.addNode(id)
	}
	if f.ckpt != nil {
		f.ckpt.addNode(id, ent)
	}
	return nil
}

// detachEntityLocked rolls back a partial JoinEntity.
func (f *Federation) detachEntityLocked(en *entityNode, id string) {
	for s, relay := range en.relays {
		_ = relay.Close()
		delete(f.relayIndex, relayID(id, s))
		if src, ok := f.sources[s]; ok {
			_, _ = src.tree.RemoveMember(relayID(id, s), f.opts.Fanout)
		}
	}
	_ = f.coord.Leave(coordinator.MemberID(id))
	if en.hb != nil {
		_ = en.hb.Close()
	}
	en.ent.Close()
}

// LeaveEntity removes an entity from a RUNNING federation: its queries
// migrate (query-level, as always) to surviving entities chosen through
// the coordinator tree, its relays close, and the dissemination trees
// rewire around it. It returns the number of queries migrated.
func (f *Federation) LeaveEntity(id string) (int, error) {
	f.mu.Lock()
	en, ok := f.entities[id]
	if !ok {
		f.mu.Unlock()
		return 0, fmt.Errorf("core: unknown entity %q", id)
	}
	if len(f.entities) < 2 {
		f.mu.Unlock()
		return 0, fmt.Errorf("core: cannot remove the last entity")
	}
	// Queries hosted here, to migrate after the entity leaves the
	// coordinator tree (so routing cannot pick it again).
	var hosted []string
	for q, fq := range f.queries {
		if fq.entity == id {
			hosted = append(hosted, q)
		}
	}
	sort.Strings(hosted)
	if err := f.coord.Leave(coordinator.MemberID(id)); err != nil {
		f.mu.Unlock()
		return 0, err
	}
	pos := en.pos
	f.mu.Unlock()
	f.logger.Info("entity.leave", id, "entity leaving", "queries", len(hosted))

	// Migrate each orphaned query to the entity the coordinator tree
	// picks for the departing entity's locality.
	migrated := 0
	for _, q := range hosted {
		f.mu.Lock()
		load := func(m coordinator.MemberID) float64 {
			if target, ok := f.entities[string(m)]; ok && string(m) != id {
				return target.ent.Load()
			}
			return 0
		}
		member, _, err := f.coord.RouteQuery(pos, load)
		f.mu.Unlock()
		if err != nil {
			return migrated, err
		}
		if err := f.MigrateQuery(q, string(member)); err != nil {
			return migrated, err
		}
		migrated++
	}

	// Rewire the dissemination trees and drop the entity.
	f.mu.Lock()
	delete(f.entities, id)
	streams := f.streamNamesLocked()
	var refresh []*dissemination.Relay
	rewired := make(map[string]int, len(streams))
	for _, s := range streams {
		src := f.sources[s]
		rid := relayID(id, s)
		relay := en.relays[s]
		oldParent := src.tree.Parent(rid)
		rewires, err := src.tree.RemoveMember(rid, f.opts.Fanout)
		if err != nil {
			f.mu.Unlock()
			return migrated, err
		}
		rewired[s] = len(rewires)
		if relay != nil {
			_ = relay.Close()
		}
		delete(f.relayIndex, rid)
		if pr, ok := f.relayIndex[oldParent]; ok {
			pr.DropChild(rid)
			refresh = append(refresh, pr)
		}
		for _, rw := range rewires {
			if child, ok := f.relayIndex[rw.Child]; ok {
				refresh = append(refresh, child)
			}
		}
	}
	stats := f.stats
	lat := f.lat
	f.mu.Unlock()
	for _, s := range streams {
		f.logger.Info("tree.repair", id, "dissemination tree rewired around departed entity",
			"stream", s, "rewires", rewired[s])
	}
	if stats != nil {
		stats.removeNode(id)
	}
	if lat != nil {
		lat.forgetEntity(id)
	}
	for _, r := range refresh {
		if err := r.Refresh(); err != nil {
			return migrated, err
		}
	}
	if en.hb != nil {
		_ = en.hb.Close()
	}
	en.ent.Close()
	return migrated, nil
}

// FailEntity expels a crashed entity: unlike LeaveEntity, nothing is
// asked of the entity itself. Its queries are re-placed on survivors
// from their stored declarative specs (the loose coupling's recovery
// story: a spec plus the stream is enough to rebuild a query anywhere).
// It returns the number of queries re-placed.
func (f *Federation) FailEntity(id string) (int, error) {
	f.mu.Lock()
	en, ok := f.entities[id]
	if !ok {
		f.mu.Unlock()
		return 0, fmt.Errorf("core: unknown entity %q", id)
	}
	if len(f.entities) < 2 {
		f.mu.Unlock()
		return 0, fmt.Errorf("core: cannot expel the last entity")
	}
	delete(f.entities, id)
	_ = f.coord.Fail(coordinator.MemberID(id))
	f.logger.Error("entity.fail", id, "entity expelled as failed")
	// Collect the dead entity's queries; they leave the books entirely
	// and re-enter through the normal placement path.
	var orphans []orphanQuery
	for q, fq := range f.queries {
		if fq.entity == id {
			orphans = append(orphans, orphanQuery{spec: fq.spec, onResult: f.results[q]})
			delete(f.queries, q)
			delete(f.results, q)
		}
	}
	sort.Slice(orphans, func(i, j int) bool { return orphans[i].spec.ID < orphans[j].spec.ID })
	pos := en.pos
	streams := f.streamNamesLocked()
	var refresh []*dissemination.Relay
	rewired := make(map[string]int, len(streams))
	for _, s := range streams {
		src := f.sources[s]
		rid := relayID(id, s)
		oldParent := src.tree.Parent(rid)
		rewires, err := src.tree.RemoveMember(rid, f.opts.Fanout)
		if err != nil {
			f.mu.Unlock()
			return 0, err
		}
		rewired[s] = len(rewires)
		if relay := en.relays[s]; relay != nil {
			_ = relay.Close()
		}
		delete(f.relayIndex, rid)
		if pr, ok := f.relayIndex[oldParent]; ok {
			pr.DropChild(rid)
			refresh = append(refresh, pr)
		}
		for _, rw := range rewires {
			if child, ok := f.relayIndex[rw.Child]; ok {
				refresh = append(refresh, child)
			}
		}
	}
	stats := f.stats
	lat := f.lat
	f.mu.Unlock()
	for _, s := range streams {
		f.logger.Warn("tree.repair", id, "dissemination tree rewired around failed entity",
			"stream", s, "rewires", rewired[s])
	}
	if stats != nil {
		stats.removeNode(id)
	}
	if lat != nil {
		lat.forgetEntity(id)
	}

	if en.hb != nil {
		_ = en.hb.Close()
	}
	en.ent.Close()
	f.mu.Lock()
	if f.monitor != nil {
		f.monitor.Unwatch(hbID(id))
	}
	f.mu.Unlock()
	for _, r := range refresh {
		if err := r.Refresh(); err != nil {
			return 0, err
		}
	}
	// With the checkpoint plane enabled, orphans are restored from
	// their newest quorum-acked checkpoint and caught up by bounded
	// replay; without it they re-enter stateless through the normal
	// placement path.
	if p := f.ckptRef(); p != nil {
		p.killReplica(id)
		return f.recoverOrphans(p, id, pos, orphans)
	}
	// Re-place every orphan where the coordinator tree routes it.
	replaced := 0
	for _, o := range orphans {
		_ = f.ledger.Stop(o.spec.ID) // the dead entity's accrual ends
		f.mu.Lock()
		load := func(m coordinator.MemberID) float64 {
			if target, ok := f.entities[string(m)]; ok {
				return target.ent.Load()
			}
			return 0
		}
		member, _, err := f.coord.RouteQuery(pos, load)
		f.mu.Unlock()
		if err != nil {
			return replaced, err
		}
		if err := f.placeOn(string(member), o.spec, o.onResult); err != nil {
			return replaced, err
		}
		f.logger.Info("migration.place", string(member), "orphaned query re-placed",
			"query", o.spec.ID, "failed", id)
		replaced++
	}
	return replaced, nil
}

// EnableFailureDetection starts portal-side heartbeat monitoring of
// every current entity: an entity that misses `threshold` intervals is
// expelled via FailEntity. Entities joining later are watched
// automatically on their next WatchNewEntities call. It is safe to call
// once, after Start.
func (f *Federation) EnableFailureDetection(interval time.Duration, threshold int) error {
	f.mu.Lock()
	if !f.started {
		f.mu.Unlock()
		return fmt.Errorf("core: federation not started")
	}
	if f.monitor != nil {
		f.mu.Unlock()
		return fmt.Errorf("core: failure detection already enabled")
	}
	f.mu.Unlock()
	mon, err := coordinator.NewDetector(f.transport, "portal/hb", interval, threshold,
		func(peer simnet.NodeID) {
			id := strings.TrimSuffix(string(peer), "/hb")
			f.logger.Warn("detector.confirm", id, "failure confirmed, expelling entity")
			go f.expelConfirmed(id)
		})
	if err != nil {
		return err
	}
	f.mu.Lock()
	f.monitor = mon
	for id := range f.entities {
		mon.Watch(hbID(id))
	}
	f.mu.Unlock()
	mon.Start()
	return nil
}

// WatchNewEntities adds any unwatched entities to the failure monitor.
func (f *Federation) WatchNewEntities() {
	f.mu.Lock()
	mon := f.monitor
	ids := f.entityIDsLocked()
	f.mu.Unlock()
	if mon == nil {
		return
	}
	watched := make(map[simnet.NodeID]bool)
	for _, w := range mon.Watched() {
		watched[w] = true
	}
	for _, id := range ids {
		if !watched[hbID(id)] {
			mon.Watch(hbID(id))
		}
	}
}

// Monitor exposes the failure detector (nil when disabled); tests drive
// its Tick directly for determinism.
func (f *Federation) Monitor() *coordinator.Detector {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.monitor
}

// AdaptOrdering runs the Adaptation Module sweep on every entity's
// engines (where supported), returning the number of queries whose
// operator plan actually changed — the federation-wide form of Section
// 4.2's runtime re-ordering. Every engine kind reports applied reorders
// (not requests), so the sum is comparable across mixed engines.
func (f *Federation) AdaptOrdering(minGain float64) int {
	f.mu.Lock()
	entities := make([]*entityNode, 0, len(f.entities))
	for _, en := range f.entities {
		entities = append(entities, en)
	}
	f.mu.Unlock()
	n := 0
	for _, en := range entities {
		k := en.ent.AdaptOrdering(minGain)
		if k > 0 {
			f.logger.Info("am.reorder", en.id, "operator plans re-ordered", "applied", k)
		}
		n += k
	}
	f.amReorders.Add(int64(n))
	return n
}

// ReorganizeTrees incrementally reorganizes every dissemination tree
// toward shorter edges under the fanout bound. Each rewire is
// make-before-break: the child's interest is pre-registered along the
// new path and the registrations are allowed to settle BEFORE the tree
// edge flips, so no in-flight tuple is filtered away by an ancestor that
// does not yet know about the moved subtree. It returns the total number
// of parent switches.
func (f *Federation) ReorganizeTrees() (int, error) {
	f.mu.Lock()
	if !f.started {
		f.mu.Unlock()
		return 0, fmt.Errorf("core: federation not started")
	}
	streams := f.streamNamesLocked()
	f.mu.Unlock()

	total := 0
	for _, s := range streams {
		f.mu.Lock()
		src := f.sources[s]
		f.mu.Unlock()
		if src == nil || src.tree == nil {
			continue
		}
		for moves := 0; moves < 4*len(src.tree.Members()); moves++ {
			rw, ok := src.tree.ReorganizeStep(f.opts.Fanout)
			if !ok {
				break
			}
			f.mu.Lock()
			child := f.relayIndex[rw.Child]
			oldParent := f.relayIndex[rw.OldParent]
			f.mu.Unlock()
			// Phase A: the future parent (and transitively the new
			// path's ancestors) learn the subtree's interest first.
			if child != nil {
				if err := child.PreRegister(rw.NewParent); err != nil {
					return total, err
				}
				f.Settle(2 * time.Second)
			}
			// Phase B: flip the edge; the new path already forwards
			// for this subtree, the old path drains naturally.
			if err := src.tree.ApplyRewire(rw, f.opts.Fanout); err != nil {
				return total, err
			}
			total++
			if child != nil {
				if err := child.Refresh(); err != nil {
					return total, err
				}
			}
			if oldParent != nil {
				oldParent.DropChild(rw.Child)
				if err := oldParent.Refresh(); err != nil {
					return total, err
				}
			}
			f.Settle(2 * time.Second)
		}
	}
	return total, nil
}

// StartAutoRebalance launches a background loop that re-runs the given
// repartitioner every interval — the federation's continuous adaptation
// to workload drift. Stop it with StopAutoRebalance (or Close).
func (f *Federation) StartAutoRebalance(interval time.Duration, r querygraph.Repartitioner) error {
	if interval <= 0 {
		return fmt.Errorf("core: auto-rebalance needs a positive interval")
	}
	if r == nil {
		return fmt.Errorf("core: auto-rebalance needs a repartitioner")
	}
	f.mu.Lock()
	if !f.started {
		f.mu.Unlock()
		return fmt.Errorf("core: federation not started")
	}
	if f.rebalanceStop != nil {
		f.mu.Unlock()
		return fmt.Errorf("core: auto-rebalance already running")
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	f.rebalanceStop = stop
	f.rebalanceDone = done
	f.mu.Unlock()
	go func() {
		defer close(done)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				if n, err := f.Rebalance(r); err == nil && n > 0 {
					f.rebalanceMoves.Add(int64(n))
				}
			case <-stop:
				return
			}
		}
	}()
	return nil
}

// StopAutoRebalance halts the loop (idempotent).
func (f *Federation) StopAutoRebalance() {
	f.mu.Lock()
	stop, done := f.rebalanceStop, f.rebalanceDone
	f.rebalanceStop = nil
	f.rebalanceDone = nil
	f.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}

// AutoRebalanceMoves reports the total queries moved by the background
// loop so far.
func (f *Federation) AutoRebalanceMoves() int64 {
	return f.rebalanceMoves.Value()
}

// Settle waits for in-flight control traffic (interest registrations) to
// drain: on transports that support quiescence detection (SimNet) it
// waits exactly as long as needed; on others (TCP) it sleeps briefly.
// Call it after churn operations before relying on exact filtering.
func (f *Federation) Settle(timeout time.Duration) {
	type quiescer interface {
		Quiesce(time.Duration) bool
	}
	if q, ok := f.transport.(quiescer); ok {
		q.Quiesce(timeout)
		return
	}
	sleep := timeout / 20
	if sleep > 50*time.Millisecond {
		sleep = 50 * time.Millisecond
	}
	time.Sleep(sleep)
}

func (f *Federation) streamNamesLocked() []string {
	out := make([]string, 0, len(f.sources))
	for s := range f.sources {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// EntityIDs returns the sorted entity IDs.
func (f *Federation) EntityIDs() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.entityIDsLocked()
}

// EntityLoad returns an entity's current engine load.
func (f *Federation) EntityLoad(id string) float64 {
	f.mu.Lock()
	en, ok := f.entities[id]
	f.mu.Unlock()
	if !ok {
		return 0
	}
	return en.ent.Load()
}

// QueryEntity reports which entity hosts a query.
func (f *Federation) QueryEntity(id string) (string, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	fq, ok := f.queries[id]
	if !ok {
		return "", false
	}
	return fq.entity, true
}

// NumQueries returns the number of active queries.
func (f *Federation) NumQueries() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.queries)
}

// Ledger exposes the accounting ledger.
func (f *Federation) Ledger() *Ledger { return f.ledger }

// Coordinator exposes the coordinator tree (read-only use).
func (f *Federation) Coordinator() *coordinator.Tree { return f.coord }

// DisseminationTree returns the tree for a stream (nil before Start).
func (f *Federation) DisseminationTree(streamName string) *dissemination.Tree {
	f.mu.Lock()
	defer f.mu.Unlock()
	if src, ok := f.sources[streamName]; ok {
		return src.tree
	}
	return nil
}

// Close shuts everything down.
func (f *Federation) Close() {
	f.StopAdaptation()
	f.StopAutoRebalance()
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	f.closed = true
	entities := f.entities
	sources := f.sources
	tracer := f.tracer
	f.tracer = nil
	stats := f.stats
	f.stats = nil
	lat := f.lat
	f.lat = nil
	ckpt := f.ckpt
	f.ckpt = nil
	eng := f.eng
	f.eng = nil
	prof := f.prof
	f.prof = nil
	f.mu.Unlock()
	if prof != nil {
		prof.Close()
	}
	if eng != nil {
		eng.close()
	}
	if ckpt != nil {
		ckpt.close()
	}
	if lat != nil {
		lat.close()
	}
	if stats != nil {
		stats.close()
	}
	if tracer != nil && trace.Active() == tracer {
		trace.SetActive(nil)
	}
	for _, src := range sources {
		if src.relay != nil {
			_ = src.relay.Close()
		}
	}
	for _, en := range entities {
		for _, relay := range en.relays {
			_ = relay.Close()
		}
		if en.hb != nil {
			_ = en.hb.Close()
		}
		en.ent.Close()
	}
	if f.monitor != nil {
		_ = f.monitor.Close()
	}
}
