// The checkpoint plane (DESIGN.md §12): periodic durable checkpoints of
// every stateful query, replicated to K peer entities over the reliable
// control plane, plus the portal-side machinery recovery needs — the
// per-query monotonic checkpoint sequence (assigned here so it survives
// the query moving between hosts), bounded per-stream upstream replay
// rings trimmed by quorum acks, and the fetch protocol that locates the
// newest surviving record after an entity dies.
//
// Follows the plane idiom (statsplane.go): EnableCheckpoints with a
// non-positive interval starts no background loop — tests and benches
// drive CheckpointTick deterministically.
//
// Lock order: f.mu before p.mu, never the reverse. Replica callbacks
// (quorum, fetch responses) run on transport goroutines and take only
// p.mu.
package core

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"

	"sspd/internal/checkpoint"
	"sspd/internal/engine"
	"sspd/internal/metrics"
	"sspd/internal/simnet"
	"sspd/internal/stream"
)

const (
	// LedgerQuery is the reserved record name under which the
	// accounting ledger is persisted through the checkpoint store.
	LedgerQuery = "__ledger__"
	// defaultReplayRingCap bounds one stream's upstream replay ring; it
	// matches the entity pause-buffer bound so a full-ring replay can
	// always be buffered by a recovering gate.
	defaultReplayRingCap = 1 << 15
	// recoveryFetchTimeout bounds the wait for surviving replicas to
	// answer a recovery fetch; on SimNet every reachable replica
	// answers in a few hops, so the deadline only matters when replicas
	// died with the entity.
	recoveryFetchTimeout = 2 * time.Second
)

// ckptID names an entity's (or the portal's) checkpoint endpoint; the
// "<owner>/ckpt" shape lets entityForEndpoint map give-ups back to the
// entity for failure suspicion.
func ckptID(owner string) simnet.NodeID {
	return simnet.NodeID(owner + "/ckpt")
}

type ckptPlane struct {
	f        *Federation
	k        int // replicas per checkpoint
	quorum   int // distinct acks before a checkpoint counts as durable
	interval time.Duration

	mu       sync.Mutex
	replicas map[string]*checkpoint.Replica // entity -> replica
	portal   *checkpoint.Replica
	seqs     map[string]uint64 // query -> last assigned checkpoint seq
	// written marks queries with at least one checkpoint attempt; until
	// such a query is quorum-acked it pins its streams' rings at 0.
	written map[string]bool
	// ackedMarks holds each query's newest quorum-acked marks — the
	// trim floor contribution per stream.
	ackedMarks map[string]map[string]uint64
	streamsOf  map[string][]string
	rings      map[string]*replayRing // stream -> replay ring
	fetches    map[string]*fetchWait  // query -> in-flight recovery fetch
	stop       chan struct{}
	done       chan struct{}

	writes  metrics.Counter // sspd_checkpoints_total
	bytes   metrics.Counter // sspd_checkpoint_bytes_total
	quorums metrics.Counter // quorum-acked checkpoints
	errors  metrics.Counter // failed checkpoint attempts
}

type fetchWait struct {
	expected int
	got      int
}

// replayRing buffers one stream's recent tuples in ascending sequence
// order so recovery can replay the post-checkpoint suffix. Bounded;
// trimmed as checkpoints quorum-ack.
type replayRing struct {
	mu      sync.Mutex
	cap     int
	buf     []stream.Tuple
	trimmed uint64 // highest sequence discarded
}

func (r *replayRing) append(b stream.Batch) {
	r.mu.Lock()
	r.buf = append(r.buf, b...)
	if over := len(r.buf) - r.cap; over > 0 {
		r.trimmed = r.buf[over-1].Seq
		r.buf = append(r.buf[:0:0], r.buf[over:]...)
	}
	r.mu.Unlock()
}

// since returns a copy of the buffered tuples with Seq > seq, plus the
// ring's trim floor — when floor > seq the caller is missing tuples the
// ring no longer holds (a replay gap).
func (r *replayRing) since(seq uint64) (stream.Batch, uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	i := sort.Search(len(r.buf), func(i int) bool { return r.buf[i].Seq > seq })
	if i == len(r.buf) {
		return nil, r.trimmed
	}
	out := make(stream.Batch, len(r.buf)-i)
	copy(out, r.buf[i:])
	return out, r.trimmed
}

func (r *replayRing) trim(seq uint64) {
	r.mu.Lock()
	i := sort.Search(len(r.buf), func(i int) bool { return r.buf[i].Seq > seq })
	if i > 0 {
		if r.buf[i-1].Seq > r.trimmed {
			r.trimmed = r.buf[i-1].Seq
		}
		r.buf = append(r.buf[:0:0], r.buf[i:]...)
	}
	r.mu.Unlock()
}

func (r *replayRing) size() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buf)
}

// EnableCheckpoints starts the durable-checkpoint plane after Start:
// every stateful query is checkpointed each interval and replicated to
// k peer entities (quorum = k/2+1 acks make it durable). A
// non-positive interval starts no background loop; call CheckpointTick
// to drive the plane deterministically. Ingest dedup is switched on
// across all entities so recovery replay is idempotent.
func (f *Federation) EnableCheckpoints(interval time.Duration, k int) error {
	f.mu.Lock()
	if !f.started {
		f.mu.Unlock()
		return fmt.Errorf("core: federation not started")
	}
	if f.ckpt != nil {
		f.mu.Unlock()
		return fmt.Errorf("core: checkpoints already enabled")
	}
	if k <= 0 {
		k = 2
	}
	if k > len(f.entities)-1 {
		k = len(f.entities) - 1
	}
	if k < 1 {
		f.mu.Unlock()
		return fmt.Errorf("core: checkpoint replication needs at least two entities")
	}
	p := &ckptPlane{
		f:          f,
		k:          k,
		quorum:     k/2 + 1,
		interval:   interval,
		replicas:   make(map[string]*checkpoint.Replica),
		seqs:       make(map[string]uint64),
		written:    make(map[string]bool),
		ackedMarks: make(map[string]map[string]uint64),
		streamsOf:  make(map[string][]string),
		rings:      make(map[string]*replayRing),
		fetches:    make(map[string]*fetchWait),
	}
	for _, s := range f.streamNamesLocked() {
		p.rings[s] = &replayRing{cap: defaultReplayRingCap}
	}
	ids := f.entityIDsLocked()
	ents := make([]*entityNode, 0, len(ids))
	for _, id := range ids {
		ents = append(ents, f.entities[id])
	}
	f.ckpt = p
	f.mu.Unlock()

	fail := func(err error) error {
		p.mu.Lock()
		reps := make([]*checkpoint.Replica, 0, len(p.replicas)+1)
		for _, r := range p.replicas {
			reps = append(reps, r)
		}
		if p.portal != nil {
			reps = append(reps, p.portal)
		}
		p.mu.Unlock()
		for _, r := range reps {
			_ = r.Close()
		}
		f.mu.Lock()
		f.ckpt = nil
		f.mu.Unlock()
		return err
	}
	for _, en := range ents {
		if err := p.addReplica(en.id); err != nil {
			return fail(err)
		}
		en.ent.SetIngestDedup(true)
	}
	portal, err := checkpoint.NewReplica(f.transport, ckptID("portal"), nil, checkpoint.ReplicaConfig{
		Reliable: simnet.ReliableConfig{OnGiveUp: f.controlGiveUp},
		Quorum:   p.quorum,
		Log:      f.logger,
		OnQuorum: p.onQuorum,
		OnRecord: func(rec checkpoint.Record, from simnet.NodeID, res checkpoint.PutResult) {
			p.noteFetchResponse(rec.Query)
		},
		OnNone: func(query string, from simnet.NodeID) {
			p.noteFetchResponse(query)
		},
	})
	if err != nil {
		return fail(err)
	}
	p.mu.Lock()
	p.portal = portal
	if interval > 0 {
		p.stop = make(chan struct{})
		p.done = make(chan struct{})
		go p.loop(p.stop, p.done)
	}
	p.mu.Unlock()
	f.logger.Info("ckpt.enable", "", "durable checkpoints enabled",
		"interval", interval.String(), "replicas", k, "quorum", p.quorum)
	return nil
}

// addReplica registers one entity's checkpoint store node.
func (p *ckptPlane) addReplica(id string) error {
	rep, err := checkpoint.NewReplica(p.f.transport, ckptID(id), nil, checkpoint.ReplicaConfig{
		Reliable: simnet.ReliableConfig{OnGiveUp: p.f.controlGiveUp},
		Quorum:   p.quorum,
		Log:      p.f.logger,
		OnQuorum: p.onQuorum,
	})
	if err != nil {
		return err
	}
	p.mu.Lock()
	p.replicas[id] = rep
	p.mu.Unlock()
	return nil
}

// addNode wires a late-joining entity into the plane (JoinEntity).
func (p *ckptPlane) addNode(id string, ent interface{ SetIngestDedup(bool) }) {
	if err := p.addReplica(id); err != nil {
		p.f.logger.Warn("ckpt.error", id, "checkpoint replica for joining entity failed",
			"err", err.Error())
		return
	}
	ent.SetIngestDedup(true)
}

// killReplica tears down a dead entity's store node (idempotent).
func (p *ckptPlane) killReplica(id string) {
	p.mu.Lock()
	rep := p.replicas[id]
	delete(p.replicas, id)
	p.mu.Unlock()
	if rep != nil {
		_ = rep.Close()
	}
}

// forgetQuery drops a removed query's trim bookkeeping.
func (p *ckptPlane) forgetQuery(id string) {
	p.mu.Lock()
	delete(p.written, id)
	delete(p.ackedMarks, id)
	delete(p.streamsOf, id)
	p.mu.Unlock()
	p.trimRings()
}

// observePublish appends freshly published tuples to the stream's
// replay ring (called from Federation.Publish after dissemination).
func (p *ckptPlane) observePublish(streamName string, b stream.Batch) {
	p.mu.Lock()
	r := p.rings[streamName]
	p.mu.Unlock()
	if r != nil {
		r.append(b)
	}
}

func (p *ckptPlane) loop(stop, done chan struct{}) {
	defer close(done)
	ticker := time.NewTicker(p.interval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			p.tick()
		case <-stop:
			return
		}
	}
}

// CheckpointTick runs one checkpoint sweep: snapshot + replicate every
// non-migrating query, anti-entropy the replica groups, and persist the
// ledger. Tests and benches call it directly when the plane was enabled
// with a non-positive interval.
func (f *Federation) CheckpointTick() {
	if p := f.ckptRef(); p != nil {
		p.tick()
	}
}

func (f *Federation) ckptRef() *ckptPlane {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ckpt
}

func (p *ckptPlane) tick() {
	f := p.f
	type job struct {
		entity string
		query  string
		spec   engine.QuerySpec
	}
	f.mu.Lock()
	jobs := make([]job, 0, len(f.queries))
	for q, fq := range f.queries {
		if fq.migrating {
			continue
		}
		jobs = append(jobs, job{entity: fq.entity, query: q, spec: fq.spec})
	}
	f.mu.Unlock()
	sort.Slice(jobs, func(i, j int) bool { return jobs[i].query < jobs[j].query })
	for _, j := range jobs {
		p.checkpointQuery(j.entity, j.query, j.spec)
	}
	p.antiEntropy()
	p.persistLedger()
}

// checkpointQuery captures and replicates one query's checkpoint. The
// query's migrating flag is held for the duration so a concurrent
// migration and a checkpoint can never interleave their pause/snapshot
// choreography.
func (p *ckptPlane) checkpointQuery(entityID, id string, spec engine.QuerySpec) {
	f := p.f
	f.mu.Lock()
	fq, ok := f.queries[id]
	en, okEn := f.entities[entityID]
	if !ok || !okEn || fq.entity != entityID || fq.migrating {
		f.mu.Unlock()
		return
	}
	fq.migrating = true
	f.mu.Unlock()
	defer func() {
		f.mu.Lock()
		fq.migrating = false
		f.mu.Unlock()
	}()

	st, marks, stateBytes, can, err := en.ent.CheckpointQuery(id)
	if err != nil {
		p.errors.Inc()
		f.logger.Warn("ckpt.error", entityID, "checkpoint snapshot failed",
			"query", id, "err", err.Error())
		return
	}
	if !can {
		// Engine lacks StateSnapshotter; the query recovers stateless
		// from its spec, so there is nothing durable to write.
		return
	}
	rec, err := p.buildRecord(id, entityID, spec, st, marks)
	if err != nil {
		p.errors.Inc()
		f.logger.Warn("ckpt.error", entityID, "checkpoint record build failed",
			"query", id, "err", err.Error())
		return
	}
	peers := p.peersFor(entityID)
	rep := p.replicaOf(entityID)
	if rep == nil || len(peers) == 0 {
		p.errors.Inc()
		f.logger.Warn("ckpt.error", entityID, "no checkpoint replicas reachable", "query", id)
		return
	}
	wire, err := rep.Replicate(rec, peers)
	if err != nil {
		p.errors.Inc()
		f.logger.Warn("ckpt.error", entityID, "checkpoint replication failed",
			"query", id, "err", err.Error())
		return
	}
	p.writes.Inc()
	p.bytes.Add(int64(wire))
	p.mu.Lock()
	p.written[id] = true
	p.streamsOf[id] = spec.Streams()
	p.mu.Unlock()
	f.logger.Debug("ckpt.write", entityID, "checkpoint written",
		"query", id, "seq", rec.Seq, "state_bytes", stateBytes,
		"replicas", len(peers), "wire_bytes", wire)
}

// buildRecord assembles the durable record for one snapshot.
func (p *ckptPlane) buildRecord(id, entityID string, spec engine.QuerySpec,
	st map[string]engine.QueryState, marks map[string]uint64) (checkpoint.Record, error) {
	specJSON, err := json.Marshal(spec)
	if err != nil {
		return checkpoint.Record{}, err
	}
	fragIDs := make([]string, 0, len(st))
	for fid := range st {
		fragIDs = append(fragIDs, fid)
	}
	sort.Strings(fragIDs)
	frags := make([]checkpoint.FragmentState, 0, len(fragIDs))
	for _, fid := range fragIDs {
		fs := checkpoint.FragmentState{ID: fid}
		for _, os := range st[fid] {
			fs.Ops = append(fs.Ops, checkpoint.OperatorState{Name: os.Name, Data: os.Data})
		}
		frags = append(frags, fs)
	}
	return checkpoint.Record{
		Query:  id,
		Entity: entityID,
		Seq:    p.nextSeq(id),
		Spec:   specJSON,
		Marks:  marks,
		Frags:  frags,
	}, nil
}

// nextSeq assigns the query's next monotonic checkpoint sequence.
func (p *ckptPlane) nextSeq(id string) uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.seqs[id]++
	return p.seqs[id]
}

// bumpSeq raises the plane's sequence floor to at least seq (recovery
// installs the restored record's sequence so the next checkpoint
// supersedes it everywhere).
func (p *ckptPlane) bumpSeq(id string, seq uint64) {
	p.mu.Lock()
	if p.seqs[id] < seq {
		p.seqs[id] = seq
	}
	p.mu.Unlock()
}

// peersFor picks the K replica entities for a host: the next K entities
// after it on the sorted-ID ring (deterministic, so recovery knows
// where to look even without fetching everyone — though it fetches from
// all survivors for robustness to membership drift).
func (p *ckptPlane) peersFor(host string) []simnet.NodeID {
	f := p.f
	f.mu.Lock()
	ids := f.entityIDsLocked()
	f.mu.Unlock()
	if len(ids) < 2 {
		return nil
	}
	at := sort.SearchStrings(ids, host)
	peers := make([]simnet.NodeID, 0, p.k)
	for i := 1; i < len(ids) && len(peers) < p.k; i++ {
		id := ids[(at+i)%len(ids)]
		if id == host {
			continue
		}
		peers = append(peers, ckptID(id))
	}
	return peers
}

// replicaOf returns an entity's store node.
func (p *ckptPlane) replicaOf(id string) *checkpoint.Replica {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.replicas[id]
}

// onQuorum is the writer-side durability callback: the record now lives
// on a quorum of replicas, so the upstream rings can trim to its marks.
func (p *ckptPlane) onQuorum(rec checkpoint.Record, acks int) {
	p.quorums.Inc()
	p.mu.Lock()
	marks := make(map[string]uint64, len(rec.Marks))
	for s, seq := range rec.Marks {
		marks[s] = seq
	}
	p.ackedMarks[rec.Query] = marks
	p.mu.Unlock()
	p.f.logger.Info("ckpt.replicate", rec.Entity, "checkpoint quorum-acked",
		"query", rec.Query, "seq", rec.Seq, "acks", acks)
	p.trimRings()
}

// trimRings advances every ring's floor to the minimum quorum-acked
// mark across the queries consuming it. A query with a written but not
// yet quorum-acked checkpoint pins its streams at 0 — never trim what
// an unacked restore might need.
func (p *ckptPlane) trimRings() {
	p.mu.Lock()
	floors := make(map[string]uint64)
	for q := range p.written {
		if q == LedgerQuery {
			continue
		}
		marks := p.ackedMarks[q]
		for _, s := range p.streamsOf[q] {
			m := marks[s] // 0 when nil or absent: pins the ring
			if cur, ok := floors[s]; !ok || m < cur {
				floors[s] = m
			}
		}
	}
	rings := make(map[string]*replayRing, len(floors))
	for s := range floors {
		rings[s] = p.rings[s]
	}
	p.mu.Unlock()
	for s, floor := range floors {
		if floor > 0 && rings[s] != nil {
			rings[s].trim(floor)
		}
	}
}

// ringSince returns the replay suffix for a stream above seq and the
// ring's trim floor.
func (p *ckptPlane) ringSince(streamName string, seq uint64) (stream.Batch, uint64) {
	p.mu.Lock()
	r := p.rings[streamName]
	p.mu.Unlock()
	if r == nil {
		return nil, 0
	}
	return r.since(seq)
}

// antiEntropy exchanges digests within each query's replica group so a
// replica that missed a write (lossy window, late join) catches up to
// the newest sequence.
func (p *ckptPlane) antiEntropy() {
	f := p.f
	f.mu.Lock()
	hosts := make(map[string]string, len(f.queries))
	for q, fq := range f.queries {
		hosts[q] = fq.entity
	}
	f.mu.Unlock()
	// Group: host + its K ring successors, per query; every ordered
	// pair inside a group exchanges one digest entry.
	byPair := make(map[string]map[simnet.NodeID][]string) // sender entity -> peer -> queries
	for q, host := range hosts {
		group := append([]simnet.NodeID{ckptID(host)}, p.peersFor(host)...)
		for _, from := range group {
			fromEntity := string(from[:len(from)-len("/ckpt")])
			for _, to := range group {
				if to == from {
					continue
				}
				if byPair[fromEntity] == nil {
					byPair[fromEntity] = make(map[simnet.NodeID][]string)
				}
				byPair[fromEntity][to] = append(byPair[fromEntity][to], q)
			}
		}
	}
	senders := make([]string, 0, len(byPair))
	for id := range byPair {
		senders = append(senders, id)
	}
	sort.Strings(senders)
	for _, id := range senders {
		rep := p.replicaOf(id)
		if rep == nil {
			continue
		}
		peers := make([]string, 0, len(byPair[id]))
		for to := range byPair[id] {
			peers = append(peers, string(to))
		}
		sort.Strings(peers)
		for _, to := range peers {
			qs := byPair[id][simnet.NodeID(to)]
			sort.Strings(qs)
			rep.AntiEntropy(simnet.NodeID(to), qs)
		}
	}
}

// persistLedger writes the accounting ledger through the checkpoint
// store (satellite durability: billing survives a coordinator crash).
// Its replica set is the first K entities in ID order.
func (p *ckptPlane) persistLedger() {
	f := p.f
	data := f.ledger.Snapshot()
	if data == nil {
		return
	}
	f.mu.Lock()
	ids := f.entityIDsLocked()
	f.mu.Unlock()
	peers := make([]simnet.NodeID, 0, p.k)
	for _, id := range ids {
		if len(peers) == p.k {
			break
		}
		peers = append(peers, ckptID(id))
	}
	if len(peers) == 0 {
		return
	}
	rec := checkpoint.Record{
		Query:  LedgerQuery,
		Entity: "portal",
		Seq:    p.nextSeq(LedgerQuery),
		Frags: []checkpoint.FragmentState{{
			ID:  "ledger",
			Ops: []checkpoint.OperatorState{{Name: "ledger", Data: data}},
		}},
	}
	p.mu.Lock()
	portal := p.portal
	p.mu.Unlock()
	if portal == nil {
		return
	}
	wire, err := portal.Replicate(rec, peers)
	if err != nil {
		p.errors.Inc()
		return
	}
	p.writes.Inc()
	p.bytes.Add(int64(wire))
}

// RecoverLedger refetches the newest persisted ledger record from the
// surviving entities and restores the accounting ledger from it — the
// coordinator-crash recovery path. It reports whether a record was
// found.
func (f *Federation) RecoverLedger(timeout time.Duration) (bool, error) {
	p := f.ckptRef()
	if p == nil {
		return false, fmt.Errorf("core: checkpoints not enabled")
	}
	recs := p.fetchRecords([]string{LedgerQuery}, timeout)
	rec, ok := recs[LedgerQuery]
	if !ok {
		return false, nil
	}
	if len(rec.Frags) == 0 || len(rec.Frags[0].Ops) == 0 {
		return false, fmt.Errorf("core: ledger record %d is empty", rec.Seq)
	}
	if err := f.ledger.Restore(rec.Frags[0].Ops[0].Data); err != nil {
		return false, err
	}
	p.bumpSeq(LedgerQuery, rec.Seq)
	f.logger.Info("recovery.restore", "", "accounting ledger restored from checkpoint",
		"seq", rec.Seq, "bytes", len(rec.Frags[0].Ops[0].Data))
	return true, nil
}

// fetchRecords asks every surviving replica for its newest record of
// each query and waits (bounded) until all respond; the portal store
// then holds the newest surviving sequence per query — the quorum-write
// rule guarantees at least one survivor has the newest quorum-acked
// record when fewer than quorum replicas died.
func (p *ckptPlane) fetchRecords(queries []string, timeout time.Duration) map[string]checkpoint.Record {
	p.mu.Lock()
	targets := make([]simnet.NodeID, 0, len(p.replicas))
	for id := range p.replicas {
		targets = append(targets, ckptID(id))
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i] < targets[j] })
	portal := p.portal
	for _, q := range queries {
		p.fetches[q] = &fetchWait{expected: len(targets)}
	}
	p.mu.Unlock()
	out := make(map[string]checkpoint.Record, len(queries))
	if portal == nil || len(targets) == 0 {
		p.clearFetches(queries)
		return out
	}
	for _, q := range queries {
		portal.Fetch(q, targets)
	}
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		p.mu.Lock()
		pending := 0
		for _, q := range queries {
			if fw := p.fetches[q]; fw != nil && fw.got < fw.expected {
				pending++
			}
		}
		p.mu.Unlock()
		if pending == 0 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	p.clearFetches(queries)
	for _, q := range queries {
		if rec, ok := portal.Store().Get(q); ok {
			out[q] = rec
		}
	}
	return out
}

func (p *ckptPlane) clearFetches(queries []string) {
	p.mu.Lock()
	for _, q := range queries {
		delete(p.fetches, q)
	}
	p.mu.Unlock()
}

// noteFetchResponse credits one replica's answer (record or none)
// toward an in-flight fetch wait.
func (p *ckptPlane) noteFetchResponse(query string) {
	p.mu.Lock()
	if fw := p.fetches[query]; fw != nil {
		fw.got++
	}
	p.mu.Unlock()
}

// close tears the plane down (Federation.Close).
func (p *ckptPlane) close() {
	p.mu.Lock()
	stop, done := p.stop, p.done
	p.stop, p.done = nil, nil
	reps := make([]*checkpoint.Replica, 0, len(p.replicas)+1)
	for _, r := range p.replicas {
		reps = append(reps, r)
	}
	p.replicas = make(map[string]*checkpoint.Replica)
	if p.portal != nil {
		reps = append(reps, p.portal)
		p.portal = nil
	}
	p.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
	for _, r := range reps {
		_ = r.Close()
	}
}

// CheckpointInfo is the plane's status summary for GET /cluster.
type CheckpointInfo struct {
	Enabled     bool   `json:"enabled"`
	Replicas    int    `json:"replicas"`
	Quorum      int    `json:"quorum"`
	Writes      int64  `json:"writes"`
	QuorumAcked int64  `json:"quorum_acked"`
	WireBytes   int64  `json:"wire_bytes"`
	Errors      int64  `json:"errors"`
	Corrupt     int64  `json:"corrupt"`
	StaleDrops  int64  `json:"stale_drops"`
	RingTuples  int    `json:"ring_tuples"`
	Records     int    `json:"records"`
	LedgerSeq   uint64 `json:"ledger_seq"`
}

// Checkpoints reports the checkpoint plane's status (zero value when
// the plane is disabled).
func (f *Federation) Checkpoints() CheckpointInfo {
	p := f.ckptRef()
	if p == nil {
		return CheckpointInfo{}
	}
	info := CheckpointInfo{
		Enabled:     true,
		Replicas:    p.k,
		Quorum:      p.quorum,
		Writes:      p.writes.Value(),
		QuorumAcked: p.quorums.Value(),
		WireBytes:   p.bytes.Value(),
		Errors:      p.errors.Value(),
	}
	p.mu.Lock()
	reps := make([]*checkpoint.Replica, 0, len(p.replicas))
	for _, r := range p.replicas {
		reps = append(reps, r)
	}
	rings := make([]*replayRing, 0, len(p.rings))
	for _, r := range p.rings {
		rings = append(rings, r)
	}
	info.LedgerSeq = p.seqs[LedgerQuery]
	p.mu.Unlock()
	for _, r := range reps {
		info.Corrupt += r.Corrupt.Value()
		info.StaleDrops += r.StaleDrops.Value()
		info.Records += r.Store().Len()
	}
	for _, r := range rings {
		info.RingTuples += r.size()
	}
	return info
}
