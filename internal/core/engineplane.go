package core

// The engine introspection plane (DESIGN.md §14): per-shard telemetry
// snapshots federated up the coordinator stats tree, a backpressure
// watchdog reusing the SLO rule machinery over windowed engine-level
// quantities (drop rate, p99 ring occupancy), and sspd_engine_* metric
// families rendered on both the local and the cluster registry. The
// watchdog journals engine.saturated / engine.recovered transitions
// and, when continuous profiling is enabled, triggers a capture on the
// saturation edge — so the profile ring holds the flame graph of the
// overload, not of the quiet aftermath.
//
// Snapshots walk engine atomics at tick/scrape time; the tuple path is
// untouched.

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"sspd/internal/engine"
	"sspd/internal/entity"
	"sspd/internal/latency"
	"sspd/internal/metrics"
	"sspd/internal/profile"
)

// DefaultEngineRules is the backpressure rule set used when
// EnableEngineIntrospection is given none: the engine is saturated when
// more than 1% of offered tuples drop in a window, or when the 99th
// percentile enqueue-time ring occupancy exceeds 75% of capacity.
var DefaultEngineRules = []string{
	"drop_rate < 1%",
	"ring_occupancy_p99 < 75%",
}

// EntityEngine is one entity's row in the cluster engine view.
type EntityEngine struct {
	Entity string `json:"entity"`
	// Dropped is the entity's engine-lifetime dropped-tuple total;
	// DropSpark its recent drops-per-second history (stats-plane folds,
	// oldest first).
	Dropped   int64     `json:"dropped"`
	DropSpark []float64 `json:"drop_spark,omitempty"`
	// Stats is the entity's merged shard telemetry.
	Stats engine.EngineStats `json:"stats"`
}

// ClusterEngineView is the GET /cluster/engine payload: every entity's
// shard telemetry plus the watchdog's last windowed readings.
type ClusterEngineView struct {
	Entities []EntityEngine `json:"entities"`
	// DropRate and RingOccP99 are the last watchdog window's readings.
	DropRate   float64 `json:"drop_rate"`
	RingOccP99 float64 `json:"ring_occupancy_p99"`
	// Saturated is true while any backpressure rule is in breach.
	Saturated bool `json:"saturated"`
	// Verdicts is the last watchdog evaluation, in rule order.
	Verdicts []latency.Verdict `json:"verdicts,omitempty"`
}

// enginePlane owns the backpressure watchdog's differencing state and
// the sspd_engine_* collector.
type enginePlane struct {
	f        *Federation
	watchdog *latency.Watchdog

	mu sync.Mutex
	// prevOffered/prevDropped/prevHist are the cumulative cluster totals
	// at the previous tick; eval differences against them so the rules
	// see only the last window's traffic and a breach clears once the
	// overload stops.
	prevOffered int64
	prevDropped int64
	prevHist    []int64
	// lastDropRate/lastOcc are the last window's readings (the view and
	// the gauges re-serve them between ticks).
	lastDropRate float64
	lastOcc      float64
	breaches     map[string]int64 // rule → saturation transitions
	state        map[string]bool  // rule → currently breached
	verdicts     []latency.Verdict

	loopMu sync.Mutex
	stop   chan struct{}
	done   chan struct{}
}

// EnableEngineIntrospection starts the engine introspection plane.
// interval > 0 runs a background watchdog loop; interval <= 0 leaves
// evaluation to StatsTick (and EngineTick), the deterministic path
// tests drive. rules are backpressure rule lines (drop_rate,
// ring_occupancy_p99; see latency.ParseRule); none installs
// DefaultEngineRules.
func (f *Federation) EnableEngineIntrospection(interval time.Duration, rules ...string) error {
	if len(rules) == 0 {
		rules = DefaultEngineRules
	}
	parsed, err := latency.ParseRules(rules)
	if err != nil {
		return err
	}
	f.mu.Lock()
	if !f.started {
		f.mu.Unlock()
		return fmt.Errorf("core: federation not started")
	}
	if f.eng != nil {
		f.mu.Unlock()
		return fmt.Errorf("core: engine introspection already enabled")
	}
	p := &enginePlane{
		f:        f,
		watchdog: latency.NewWatchdog(parsed),
		breaches: make(map[string]int64, len(parsed)),
		state:    make(map[string]bool, len(parsed)),
	}
	for _, r := range parsed {
		p.breaches[r.Raw] = 0
		p.state[r.Raw] = false
	}
	f.eng = p
	f.mu.Unlock()

	f.registry.RegisterCollector(p.collect)
	if interval > 0 {
		p.start(interval)
	}
	f.logger.Info("engine.watch", "", "engine introspection plane enabled",
		"rules", len(parsed), "interval", interval)
	return nil
}

// EngineIntrospectionEnabled reports whether the plane is running.
func (f *Federation) EngineIntrospectionEnabled() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.eng != nil
}

// EngineTick runs one backpressure watchdog evaluation over the window
// since the previous tick, journaling saturation transitions (and
// triggering a profile capture on the saturation edge). StatsTick calls
// this automatically; exposed for tests and manual federation. Returns
// the per-rule verdicts (nil when the plane is disabled).
func (f *Federation) EngineTick() []latency.Verdict {
	f.mu.Lock()
	p := f.eng
	f.mu.Unlock()
	if p == nil {
		return nil
	}
	return p.eval()
}

// EngineWatchStatus returns the verdicts of the most recent watchdog
// tick.
func (f *Federation) EngineWatchStatus() []latency.Verdict {
	f.mu.Lock()
	p := f.eng
	f.mu.Unlock()
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]latency.Verdict(nil), p.verdicts...)
}

// ClusterEngine returns the cluster engine view. Entities federated
// through the stats plane contribute their digest rows (so the root
// answers for remote entities too); locally hosted entities not yet
// covered by a digest are read live. ok is false while the plane is
// disabled.
func (f *Federation) ClusterEngine() (ClusterEngineView, bool) {
	f.mu.Lock()
	p := f.eng
	f.mu.Unlock()
	if p == nil {
		return ClusterEngineView{}, false
	}
	byID := make(map[string]EntityEngine)
	for _, ee := range f.liveEngineEntities() {
		byID[ee.Entity] = ee
	}
	if rows, _, ok := f.ClusterStats(); ok {
		for id, row := range rows {
			if row.Engine == nil {
				continue
			}
			byID[id] = EntityEngine{
				Entity:    id,
				Dropped:   row.Dropped,
				DropSpark: append([]float64(nil), row.DropSpark...),
				Stats:     *row.Engine,
			}
		}
	}
	ids := make([]string, 0, len(byID))
	for id := range byID {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	view := ClusterEngineView{Entities: make([]EntityEngine, 0, len(ids))}
	for _, id := range ids {
		view.Entities = append(view.Entities, byID[id])
	}
	p.mu.Lock()
	view.DropRate = p.lastDropRate
	view.RingOccP99 = p.lastOcc
	for _, b := range p.state {
		if b {
			view.Saturated = true
		}
	}
	view.Verdicts = append([]latency.Verdict(nil), p.verdicts...)
	p.mu.Unlock()
	return view, true
}

// engineRowFor is the stats plane's fold hook: one entity's merged
// telemetry snapshot (nil when the plane is off or the entity runs no
// introspectable engine).
func (f *Federation) engineRowFor(ent *entity.Entity) *engine.EngineStats {
	f.mu.Lock()
	p := f.eng
	f.mu.Unlock()
	if p == nil || ent == nil {
		return nil
	}
	es, ok := ent.EngineTelemetry()
	if !ok {
		return nil
	}
	return &es
}

// liveEngineEntities reads every locally hosted entity's telemetry
// directly (no digest lag); entities with no introspectable engine are
// omitted.
func (f *Federation) liveEngineEntities() []EntityEngine {
	f.mu.Lock()
	ents := make(map[string]*entity.Entity, len(f.entities))
	for id, en := range f.entities {
		ents[id] = en.ent
	}
	f.mu.Unlock()
	ids := make([]string, 0, len(ents))
	for id := range ents {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]EntityEngine, 0, len(ids))
	for _, id := range ids {
		ent := ents[id]
		es, ok := ent.EngineTelemetry()
		if !ok {
			continue
		}
		out = append(out, EntityEngine{Entity: id, Dropped: ent.DroppedTotal(), Stats: es})
	}
	return out
}

// eval runs one watchdog tick: cumulative cluster totals are read live,
// differenced into this window's drop rate and occupancy percentile,
// and the rules evaluated; saturation transitions are journaled and the
// saturation edge triggers a profile capture.
func (p *enginePlane) eval() []latency.Verdict {
	f := p.f
	var offered, dropped, ringCap int64
	hist := make([]int64, engine.OccBuckets)
	for _, ee := range f.liveEngineEntities() {
		t := ee.Stats.Totals()
		offered += t.Offered
		dropped += t.Dropped
		if t.RingCap > ringCap {
			ringCap = t.RingCap
		}
		for i, c := range t.OccHist {
			if i < len(hist) {
				hist[i] += c
			}
		}
	}

	p.mu.Lock()
	winOff := offered - p.prevOffered
	winDrop := dropped - p.prevDropped
	winHist := make([]int64, len(hist))
	for i := range hist {
		winHist[i] = hist[i]
		if p.prevHist != nil && i < len(p.prevHist) {
			winHist[i] -= p.prevHist[i]
		}
	}
	p.prevOffered, p.prevDropped, p.prevHist = offered, dropped, hist
	p.mu.Unlock()

	o := latency.Observation{}
	if winOff > 0 {
		o.EngineWindow = true
		o.DropRate = float64(winDrop) / float64(winOff)
		o.RingOccP99 = engine.OccP99(winHist, ringCap)
	}
	vs := p.watchdog.Eval(o)

	p.mu.Lock()
	if o.EngineWindow {
		p.lastDropRate, p.lastOcc = o.DropRate, o.RingOccP99
	}
	p.verdicts = vs
	for _, v := range vs {
		if v.Evaluated {
			p.state[v.Rule.Raw] = v.Breached
		}
		if v.Transition && v.Breached {
			p.breaches[v.Rule.Raw]++
		}
	}
	p.mu.Unlock()

	prof := f.Profiler()
	for _, v := range vs {
		if !v.Transition {
			continue
		}
		if v.Breached {
			f.logger.Warn("engine.saturated", "", "engine backpressure rule breached",
				"rule", v.Rule.Raw, "value", fmt.Sprintf("%.6g", v.Value))
			if prof != nil {
				// Capture the overload while it is happening.
				prof.Trigger(v.Rule.Raw)
			}
		} else {
			f.logger.Info("engine.recovered", "", "engine backpressure rule recovered",
				"rule", v.Rule.Raw, "value", fmt.Sprintf("%.6g", v.Value))
		}
	}
	return vs
}

func (p *enginePlane) start(interval time.Duration) {
	p.loopMu.Lock()
	defer p.loopMu.Unlock()
	if p.stop != nil {
		return
	}
	p.stop = make(chan struct{})
	p.done = make(chan struct{})
	go func(stop, done chan struct{}) {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				p.eval()
			}
		}
	}(p.stop, p.done)
}

func (p *enginePlane) close() {
	p.loopMu.Lock()
	stop, done := p.stop, p.done
	p.stop, p.done = nil, nil
	p.loopMu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}

// collect renders the plane as sspd_engine_* Prometheus families. It is
// registered on the federation registry (GET /metrics) and re-emitted
// by the stats plane's cluster collector (GET /cluster/metrics), so
// both endpoints serve the same families.
func (p *enginePlane) collect(emit func(metrics.Sample)) {
	f := p.f
	gauge := func(name, help string, v float64, labels ...metrics.Label) {
		emit(metrics.Sample{Name: name, Help: help, Kind: metrics.KindGauge, Labels: labels, Value: v})
	}
	counter := func(name, help string, v float64, labels ...metrics.Label) {
		emit(metrics.Sample{Name: name, Help: help, Kind: metrics.KindCounter, Labels: labels, Value: v})
	}

	view, ok := f.ClusterEngine()
	if !ok {
		return
	}
	for _, ee := range view.Entities {
		le := metrics.L("entity", ee.Entity)
		t := ee.Stats.Totals()
		gauge("sspd_engine_queries", "Queries installed across the entity's shard engines.",
			float64(ee.Stats.Queries), le)
		counter("sspd_engine_offered_total", "Tuples offered to shard rings per entity.",
			float64(t.Offered), le)
		counter("sspd_engine_dropped_total",
			"Engine-lifetime tuples dropped per entity, including since-unregistered queries.",
			float64(ee.Dropped), le)
		counter("sspd_engine_batches_total", "(query, batch) feeds executed per entity.",
			float64(t.Batches), le)
		counter("sspd_engine_tuples_total", "Tuples processed per entity by execution path.",
			float64(t.KernelTuples), le, metrics.L("path", "kernel"))
		counter("sspd_engine_tuples_total", "Tuples processed per entity by execution path.",
			float64(t.InterpTuples), le, metrics.L("path", "interpreted"))
		gauge("sspd_engine_kernel_selectivity",
			"Fraction of rows entering the filter kernels that survive into the stateful tail.",
			t.Selectivity(), le)
		gauge("sspd_engine_kernel_share",
			"Fraction of processed tuples that took the vectorized kernel path.",
			t.KernelShare(), le)
		counter("sspd_engine_ctl_total", "Control items processed by shard goroutines per entity.",
			float64(t.CtlItems), le)
		counter("sspd_engine_ctl_wait_seconds_total",
			"Cumulative control-item ring queueing latency per entity.",
			float64(t.CtlWaitNs)/1e9, le)
		for _, sh := range ee.Stats.Shards {
			ls := []metrics.Label{le, metrics.L("engine", sh.Engine),
				metrics.L("shard", fmt.Sprintf("%d", sh.Shard))}
			gauge("sspd_engine_shard_occupancy", "Instantaneous shard-ring depth.",
				float64(sh.Occupancy), ls...)
			gauge("sspd_engine_shard_high_water", "Worst shard-ring occupancy any enqueue observed.",
				float64(sh.HighWater), ls...)
			counter("sspd_engine_shard_dropped_total", "Tuples refused by the full shard ring.",
				float64(sh.Dropped), ls...)
		}
	}

	gauge("sspd_engine_drop_rate", "Dropped/offered ratio of the last watchdog window.",
		view.DropRate)
	gauge("sspd_engine_ring_occupancy_p99",
		"p99 enqueue-time ring occupancy (fraction of capacity) of the last watchdog window.",
		view.RingOccP99)

	p.mu.Lock()
	rules := make([]string, 0, len(p.breaches))
	for r := range p.breaches {
		rules = append(rules, r)
	}
	sort.Strings(rules)
	for _, r := range rules {
		lr := metrics.L("rule", r)
		gauge("sspd_engine_saturated", "1 while the backpressure rule is in breach.",
			b2f(p.state[r]), lr)
		counter("sspd_engine_saturations_total", "Saturation transitions per backpressure rule.",
			float64(p.breaches[r]), lr)
	}
	p.mu.Unlock()

	var captures float64
	if prof := f.Profiler(); prof != nil {
		captures = float64(prof.Total())
	}
	counter("sspd_engine_profile_captures_total", "Profiles stored by the continuous profiling ring.",
		captures)
}

// engineCollectInto re-emits the sspd_engine_* families into another
// collector (the cluster registry), so /metrics and /cluster/metrics
// serve the same engine families.
func (f *Federation) engineCollectInto(emit func(metrics.Sample)) {
	f.mu.Lock()
	p := f.eng
	f.mu.Unlock()
	if p != nil {
		p.collect(emit)
	}
}

// EnableProfiling starts the continuous profiling hook: periodic CPU
// and heap captures into a bounded on-disk ring under dir, served at
// GET /profiles. period <= 0 disables the periodic loop — captures then
// happen only when the backpressure watchdog triggers them. Every
// stored capture is journaled as profile.captured.
func (f *Federation) EnableProfiling(dir string, period time.Duration) error {
	f.mu.Lock()
	if !f.started {
		f.mu.Unlock()
		return fmt.Errorf("core: federation not started")
	}
	if f.prof != nil {
		f.mu.Unlock()
		return fmt.Errorf("core: profiling already enabled")
	}
	f.mu.Unlock()
	rec, err := profile.NewRecorder(profile.Options{Dir: dir, Period: period})
	if err != nil {
		return err
	}
	rec.SetOnCapture(func(c profile.Capture) {
		f.logger.Info("profile.captured", "", "profile stored",
			"name", c.Name, "kind", c.Kind, "reason", c.Reason,
			"bytes", fmt.Sprintf("%d", c.Bytes))
	})
	f.mu.Lock()
	if f.prof != nil {
		f.mu.Unlock()
		rec.Close()
		return fmt.Errorf("core: profiling already enabled")
	}
	f.prof = rec
	f.mu.Unlock()
	rec.Start()
	f.logger.Info("profile.enable", "", "continuous profiling enabled",
		"dir", dir, "period", period)
	return nil
}

// Profiler returns the profile recorder (nil until EnableProfiling).
func (f *Federation) Profiler() *profile.Recorder {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.prof
}
