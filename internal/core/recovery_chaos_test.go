package core

import (
	"testing"
	"time"

	"sspd/internal/engine"
	"sspd/internal/stream"
	"sspd/internal/workload"
)

// TestHardKillRecoveryZeroLoss is the headline robustness property of
// the checkpoint plane: an entity running a stateful windowed aggregate
// AND a windowed join is hard-killed (kill -9: no goodbye, no state
// handoff) while tuples are published into the outage. After the
// coordinator expels it, both queries must come back on a survivor
// restored from their last quorum-acked checkpoint, the outage-window
// tuples must be replayed from the ring, and the final result stream
// must show every published tuple exactly once with window contents
// carried across the crash.
func TestHardKillRecoveryZeroLoss(t *testing.T) {
	const window = 64
	fed, _ := newTestFederation(t, 4)

	aggLog, joinLog := &seqLog{}, &seqLog{}
	if err := fed.SubmitQueryTo(countQuery("agg", window), "e01", aggLog.observe); err != nil {
		t.Fatal(err)
	}
	if err := fed.SubmitQueryTo(symbolJoinQuery("join"), "e01", joinLog.observe); err != nil {
		t.Fatal(err)
	}
	if err := fed.EnableCheckpoints(0, 2); err != nil {
		t.Fatal(err)
	}
	fed.Settle(2 * time.Second)

	// Fix the trade-side join windows before any quotes, so each
	// quote's match count is independent of recovery timing.
	tick := workload.NewTicker(7, 100, 1.2)
	var trades stream.Batch
	for i := 0; i < 200; i++ {
		trades = append(trades, tick.NextTrade())
	}
	if err := fed.Publish("trades", trades); err != nil {
		t.Fatal(err)
	}
	fed.Settle(2 * time.Second)

	var quotes []stream.Batch
	publish := func(k int) {
		t.Helper()
		b := tick.Batch(k)
		quotes = append(quotes, b)
		if err := fed.Publish("quotes", b); err != nil {
			t.Fatal(err)
		}
	}

	// Warm the windows past one full turn, then take a durable cut.
	publish(100)
	fed.Settle(2 * time.Second)
	fed.CheckpointTick()
	waitUntil(t, 2*time.Second, "checkpoint quorum", func() bool {
		return fed.Checkpoints().QuorumAcked >= 2 // agg + join
	})
	fed.Settle(2 * time.Second)

	// Hard crash: the entity vanishes mid-operation. Tuples published
	// into the outage reach no query — only the replay ring holds them.
	if err := fed.KillEntity("e01"); err != nil {
		t.Fatal(err)
	}
	const outage = 60
	publish(outage)

	// Expulsion triggers checkpoint-backed recovery: re-place, restore,
	// replay the outage suffix.
	moved, err := fed.FailEntity("e01")
	if err != nil {
		t.Fatal(err)
	}
	if moved != 2 {
		t.Fatalf("recovered %d queries, want 2", moved)
	}
	fed.Settle(2 * time.Second)

	// Life goes on: post-recovery traffic flows through the repaired
	// tree to the new hosts.
	publish(50)
	fed.Settle(2 * time.Second)

	// Both recoveries restored durable state — not stateless restarts.
	recs := fed.Recoveries()
	if len(recs) != 2 {
		t.Fatalf("recovery history has %d records, want 2: %+v", len(recs), recs)
	}
	replayed := int64(0)
	for _, r := range recs {
		if r.Outcome != "restored" {
			t.Fatalf("recovery %s: outcome %s (%s), want restored", r.Query, r.Outcome, r.Reason)
		}
		if r.Failed != "e01" || r.Target == "e01" || r.Target == "" {
			t.Fatalf("recovery %s: failed=%s target=%s", r.Query, r.Failed, r.Target)
		}
		if r.Seq == 0 {
			t.Fatalf("recovery %s restored from seq 0", r.Query)
		}
		replayed += int64(r.Replayed)
	}
	if replayed == 0 {
		t.Fatal("no tuples replayed despite an outage window")
	}

	// Replay amplification is bounded: at worst each recovery group
	// fetches the outage suffix once.
	if fetched := fed.RecoveryReplayFetched(); fetched == 0 || fetched > 2*outage {
		t.Fatalf("replay fetched %d tuples for a %d-tuple outage (bound 2x)", fetched, outage)
	}

	// Zero committed-result loss, zero duplication: every published
	// quote produced its aggregate result exactly once, across the
	// crash, the replay, and the post-recovery traffic.
	aggCounts, aggValues := aggLog.snapshot()
	published := 0
	for _, b := range quotes {
		published += len(b)
		for _, tu := range b {
			switch aggCounts[tu.Seq] {
			case 1:
			case 0:
				t.Fatalf("tuple seq %d lost across the crash", tu.Seq)
			default:
				t.Fatalf("tuple seq %d processed %d times (replay duplicated)",
					tu.Seq, aggCounts[tu.Seq])
			}
		}
	}
	if len(aggValues) != published {
		t.Fatalf("agg results = %d, want %d", len(aggValues), published)
	}
	assertWindowContinuity(t, aggValues, window)

	// The join's window state survived the crash: per-seq match counts
	// equal an oracle fed the identical tuple sequence.
	oracle := engine.NewMini("oracle", workload.Catalog(100, 20))
	defer oracle.Close()
	oracleJoin := &seqLog{}
	if err := oracle.Register(symbolJoinQuery("join"), oracleJoin.observe); err != nil {
		t.Fatal(err)
	}
	oracle.IngestBatch(trades)
	for _, b := range quotes {
		oracle.IngestBatch(b)
	}
	joinCounts, _ := joinLog.snapshot()
	wantJoin, _ := oracleJoin.snapshot()
	if len(joinCounts) != len(wantJoin) {
		t.Fatalf("join produced results for %d seqs, oracle %d", len(joinCounts), len(wantJoin))
	}
	for seq, want := range wantJoin {
		if joinCounts[seq] != want {
			t.Fatalf("join seq %d: %d results, oracle %d", seq, joinCounts[seq], want)
		}
	}

	// No silently dropped expulsion errors (satellite), and the journal
	// tells the whole story: durable write → quorum → recovery.
	if got := fed.EntityFailErrors(); got != 0 {
		t.Fatalf("EntityFailErrors = %d, want 0", got)
	}
	for _, kind := range []string{
		"ckpt.write", "ckpt.replicate", "entity.kill",
		"recovery.start", "recovery.restore", "recovery.done",
	} {
		if len(fed.Journal().Since(0, kind)) == 0 {
			t.Fatalf("journal missing %s events", kind)
		}
	}
}

// Without checkpoints enabled, FailEntity falls back to the legacy
// stateless re-placement; with checkpoints enabled but no written
// record yet, recovery must degrade to a stateless restart — never
// fail, never restore garbage.
func TestHardKillWithoutCheckpointIsStateless(t *testing.T) {
	fed, _ := newTestFederation(t, 3)
	log := &seqLog{}
	if err := fed.SubmitQueryTo(countQuery("agg", 8), "e01", log.observe); err != nil {
		t.Fatal(err)
	}
	if err := fed.EnableCheckpoints(0, 2); err != nil {
		t.Fatal(err)
	}
	fed.Settle(2 * time.Second)
	// No CheckpointTick: the kill races ahead of the first checkpoint.
	if err := fed.KillEntity("e01"); err != nil {
		t.Fatal(err)
	}
	moved, err := fed.FailEntity("e01")
	if err != nil {
		t.Fatal(err)
	}
	if moved != 1 {
		t.Fatalf("moved = %d, want 1", moved)
	}
	recs := fed.Recoveries()
	if len(recs) != 1 || recs[0].Outcome != "stateless" {
		t.Fatalf("recoveries = %+v, want one stateless record", recs)
	}
	// The query still works on its new host.
	tick := workload.NewTicker(9, 100, 1.2)
	if err := fed.Publish("quotes", tick.Batch(20)); err != nil {
		t.Fatal(err)
	}
	fed.Settle(2 * time.Second)
	counts, _ := log.snapshot()
	if len(counts) != 20 {
		t.Fatalf("post-recovery results for %d seqs, want 20", len(counts))
	}
}
