package core

import (
	"fmt"
	"math"
	"strings"
	"testing"
	"time"

	"sspd/internal/dissemination"
	"sspd/internal/engine"
	"sspd/internal/latency"
	"sspd/internal/metrics"
	"sspd/internal/simnet"
	"sspd/internal/stream"
	"sspd/internal/trace"
	"sspd/internal/workload"
)

// fullFactory builds the metered Engine, whose d_k/p_k back the
// *estimated* PR the drift gauge compares against.
func fullFactory(name string, c *stream.Catalog) engine.Processor {
	return engine.New(name, c)
}

// waitLatencyCount re-federates until the cluster view covers at least
// `want` completed spans (full engines finish results asynchronously).
func waitLatencyCount(t *testing.T, fed *Federation, want uint64) latency.Attribution {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		settleTicks(fed, 1)
		att, ok := fed.ClusterLatency()
		if ok && att.E2E.Count >= want {
			return att
		}
		if time.Now().After(deadline) {
			t.Fatalf("cluster latency count stuck at %d, want >= %d", att.E2E.Count, want)
		}
	}
}

// TestLatencyAttributionFederation is the tentpole integration test:
// spans complete into per-entity stage histograms, ride the stats
// federation's rows, and the root's merged view answers cluster-wide
// percentiles, measured PR, and real Prometheus histogram families.
func TestLatencyAttributionFederation(t *testing.T) {
	net := simnet.NewSim(nil)
	defer net.Close()
	fed, err := New(net, workload.Catalog(100, 20), Options{Strategy: dissemination.Balanced, Fanout: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer fed.Close()
	if err := fed.AddSource("quotes", simnet.Point{}, StreamRate{TuplesPerSec: 1000, BytesPerTuple: 60}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := fed.AddEntity(fmt.Sprintf("e%02d", i), simnet.Point{X: float64(10 + i*10)}, 2, miniFactory); err != nil {
			t.Fatal(err)
		}
	}
	if err := fed.Start(); err != nil {
		t.Fatal(err)
	}

	// The plane needs the tracer's completion hook.
	if err := fed.EnableLatencyAttribution(0); err == nil {
		t.Fatal("EnableLatencyAttribution without tracing accepted")
	}
	if _, err := fed.EnableTracing(1, 1024); err != nil {
		t.Fatal(err)
	}
	defer trace.SetActive(nil)
	if err := fed.EnableLatencyAttribution(0); err != nil {
		t.Fatal(err)
	}
	if err := fed.EnableLatencyAttribution(0); err == nil {
		t.Fatal("double enable accepted")
	}
	if !fed.LatencyEnabled() {
		t.Fatal("LatencyEnabled = false after enable")
	}
	if err := fed.EnableLatencyAttribution(0, "nonsense rule"); err == nil {
		t.Fatal("bad rule accepted")
	}

	for i := 0; i < 3; i++ {
		if err := fed.SubmitQueryTo(priceQuery(fmt.Sprintf("q%d", i), 0, 1000),
			fmt.Sprintf("e%02d", i), nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := fed.EnableStatsPlane(0); err != nil {
		t.Fatal(err)
	}
	fed.Settle(2 * time.Second)

	tick := workload.NewTicker(3, 100, 1.2)
	if err := fed.Publish("quotes", tick.Batch(20)); err != nil {
		t.Fatal(err)
	}
	fed.Settle(2 * time.Second)

	// 20 tuples × 3 matching queries, every tuple sampled.
	att := waitLatencyCount(t, fed, 60)
	if att.E2E.Count != 60 {
		t.Fatalf("cluster e2e count = %d, want 60", att.E2E.Count)
	}

	// The acceptance criterion: per-span stage deltas telescope, so the
	// summed stage histograms account for the summed end-to-end delay
	// exactly (same clock reads, only float addition error).
	var stageSum float64
	for _, st := range latency.Stages {
		s := att.Stages[st]
		if s.Count != 60 {
			t.Errorf("stage %s count = %d, want 60", st, s.Count)
		}
		stageSum += s.Sum
	}
	if math.Abs(stageSum-att.E2E.Sum) > 1e-6*att.E2E.Sum+1e-9 {
		t.Fatalf("stage sums %.9g != e2e sum %.9g — attribution leaks time", stageSum, att.E2E.Sum)
	}

	// The federated rows actually carried the histograms.
	rows, _, ok := fed.ClusterStats()
	if !ok {
		t.Fatal("no root digest")
	}
	withLatency := 0
	for id, row := range rows {
		if row.Latency == nil {
			continue
		}
		withLatency++
		if row.Latency.E2E.Count != 20 {
			t.Errorf("%s: row e2e count = %d, want 20", id, row.Latency.E2E.Count)
		}
	}
	if withLatency != 3 {
		t.Fatalf("%d rows carry latency, want 3", withLatency)
	}

	// Per-query measured PR present for every query.
	if len(att.Queries) != 3 {
		t.Fatalf("cluster view has %d query rows, want 3: %+v", len(att.Queries), att.Queries)
	}
	for _, q := range att.Queries {
		if q.PRMeasured <= 0 || q.EvalMean <= 0 {
			t.Errorf("%s: PRMeasured=%g EvalMean=%g, want > 0", q.Query, q.PRMeasured, q.EvalMean)
		}
	}
	if pr, q := fed.PRMeasuredMax(); pr <= 0 || q == "" {
		t.Fatalf("PRMeasuredMax = %g/%q", pr, q)
	}

	// The default watchdog ran during the stats ticks.
	if vs := fed.SLOStatus(); len(vs) != len(DefaultSLORules) {
		t.Fatalf("SLOStatus has %d verdicts, want %d", len(vs), len(DefaultSLORules))
	}

	// Exposition: real histogram families that survive the strict parser.
	var sb strings.Builder
	if err := fed.MetricsRegistry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		"# TYPE sspd_latency_e2e_seconds histogram",
		`sspd_latency_e2e_seconds_count 60`,
		`sspd_latency_stage_seconds_bucket{stage="network",le="+Inf"} 60`,
		`sspd_pr_measured{query="q0"}`,
		`sspd_slo_breached{rule="p99_end_to_end < 250ms"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if _, err := metrics.ParsePrometheus(strings.NewReader(text)); err != nil {
		t.Fatalf("strict parser rejected exposition: %v", err)
	}
}

// TestLatencyChaosJitterDriftAndSLO is the fault-injection acceptance
// test: an induced network-delay fault makes the measured PR diverge
// from the engine-estimated PR (the engine clock starts at its own
// queue, so link jitter is invisible to it), breaches the end-to-end
// SLO with a slo.breach journal event, and — once the fault lifts —
// the windowed watchdog emits the matching slo.clear.
func TestLatencyChaosJitterDriftAndSLO(t *testing.T) {
	plan := simnet.NewFaultPlan(simnet.NewSim(nil), 17)
	defer plan.Close()
	fed, err := New(plan, workload.Catalog(100, 20), Options{Strategy: dissemination.Balanced, Fanout: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer fed.Close()
	if err := fed.AddSource("quotes", simnet.Point{}, StreamRate{TuplesPerSec: 1000, BytesPerTuple: 60}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := fed.AddEntity(fmt.Sprintf("e%02d", i), simnet.Point{X: float64(10 + i*10)}, 2, fullFactory); err != nil {
			t.Fatal(err)
		}
	}
	if err := fed.Start(); err != nil {
		t.Fatal(err)
	}
	if _, err := fed.EnableTracing(1, 4096); err != nil {
		t.Fatal(err)
	}
	defer trace.SetActive(nil)
	rule := "p99_end_to_end < 30ms"
	if err := fed.EnableLatencyAttribution(0, rule); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := fed.SubmitQueryTo(priceQuery(fmt.Sprintf("q%d", i), 0, 1000),
			fmt.Sprintf("e%02d", i), nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := fed.EnableStatsPlane(0); err != nil {
		t.Fatal(err)
	}
	fed.Settle(2 * time.Second)

	tick := workload.NewTicker(2, 100, 1.2)
	publish := func(n int) {
		t.Helper()
		if err := fed.Publish("quotes", tick.Batch(n)); err != nil {
			t.Fatal(err)
		}
		if !plan.Quiesce(5 * time.Second) {
			t.Fatal("quiesce")
		}
	}

	// Phase 1 — healthy baseline.
	publish(30)
	att := waitLatencyCount(t, fed, 60)
	healthyPR, _ := fed.PRMeasuredMax()
	if healthyPR <= 0 {
		t.Fatal("no measured PR after healthy traffic")
	}
	healthyCount := att.E2E.Count
	for _, v := range fed.SLOStatus() {
		if v.Breached {
			t.Fatalf("breached during healthy phase: %+v (p99=%gs)", v, att.E2E.Quantile(0.99))
		}
	}

	// Phase 2 — 60-100ms of uniform link jitter: network delay the
	// engine's own delay clock never sees.
	plan.SetDefaultFaults(simnet.LinkFaults{Jitter: 80 * time.Millisecond})
	plan.SetEnabled(true)
	publish(30)
	att = waitLatencyCount(t, fed, healthyCount+60)
	plan.SetEnabled(false)

	jitterPR, prQuery := fed.PRMeasuredMax()
	estPR, okEst := fed.QueryPR(prQuery)
	if !okEst {
		t.Fatalf("no estimated PR for %s (engine metrics missing)", prQuery)
	}
	// The measured ratio must diverge hard from the estimate: jitter
	// lands in the span but not in the engine's queue-to-result clock.
	if jitterPR < estPR*3 {
		t.Fatalf("measured PR %.3g did not diverge from estimated %.3g under jitter", jitterPR, estPR)
	}
	if jitterPR < healthyPR*2 {
		t.Fatalf("measured PR %.3g barely moved from healthy %.3g under 80ms jitter", jitterPR, healthyPR)
	}

	breaches := fed.Journal().Since(0, "slo.breach")
	if len(breaches) == 0 {
		t.Fatalf("no slo.breach journal event; status %+v", fed.SLOStatus())
	}
	if breaches[0].Fields["rule"] != rule {
		t.Fatalf("breach event names rule %q, want %q", breaches[0].Fields["rule"], rule)
	}

	// Phase 3 — fault lifted: a healthy window clears the breach even
	// though the cumulative histogram still holds every slow sample.
	deadline := time.Now().Add(10 * time.Second)
	for {
		publish(40)
		settleTicks(fed, 2)
		if clears := fed.Journal().Since(0, "slo.clear"); len(clears) > 0 {
			if clears[0].Seq <= breaches[0].Seq {
				t.Fatalf("slo.clear seq %d precedes slo.breach seq %d", clears[0].Seq, breaches[0].Seq)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no slo.clear after fault lifted; status %+v", fed.SLOStatus())
		}
	}

	// The breach counter survives in the exposition.
	var sb strings.Builder
	if err := fed.MetricsRegistry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `sspd_slo_breaches_total{rule="`+rule+`"}`) {
		t.Error("exposition missing sspd_slo_breaches_total for the breached rule")
	}
	if !strings.Contains(sb.String(), "sspd_pr_drift{query=") {
		t.Error("exposition missing sspd_pr_drift")
	}
}
