// Crash recovery (DESIGN.md §12): when an entity is confirmed failed,
// its queries are re-placed on survivors, restored from their newest
// quorum-acked checkpoint, and caught up by replaying the bounded
// post-checkpoint suffix from the upstream replay rings. The placement
// reuses the migration PREPARE choreography — the destination's gate
// opens only after state and replay are staged, and its dissemination
// interests go live before the replay, so the trees overlap rather
// than gap.
//
// Timeline per failed entity (recoverOrphans):
//
//	FETCH    newest surviving record per query, from every live replica
//	ROUTE    each orphan through the coordinator tree (load-aware)
//	PREPARE  paused placements on the targets; interests refreshed; settle
//	RESTORE  operator state + high-water marks from the record
//	REPLAY   ring suffix above the group's min mark, once per stream
//	COMMIT   gates open, replaying buffered + replayed tuples deduped
//	         by (stream, seq) against the restored marks
package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"sspd/internal/checkpoint"
	"sspd/internal/coordinator"
	"sspd/internal/engine"
	"sspd/internal/simnet"
	"sspd/internal/stream"
)

// recoveryLogCap bounds the in-memory recovery history surfaced at
// GET /cluster.
const recoveryLogCap = 64

// RecoveryRecord is one query's crash-recovery outcome.
type RecoveryRecord struct {
	Query  string `json:"query"`
	Failed string `json:"failed"` // the dead entity
	Target string `json:"target"` // where the query was re-placed
	// Outcome is "restored" (from a checkpoint), "stateless" (no
	// usable checkpoint; rebuilt from the spec alone), or "failed".
	Outcome  string    `json:"outcome"`
	Reason   string    `json:"reason,omitempty"`
	Seq      uint64    `json:"ckpt_seq,omitempty"` // restored checkpoint sequence
	Replayed int       `json:"replayed"`           // tuples replayed into the gate
	Time     time.Time `json:"ts"`
}

// Recoveries returns the crash-recovery history, newest first.
func (f *Federation) Recoveries() []RecoveryRecord {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]RecoveryRecord, 0, len(f.recLog))
	for i := len(f.recLog) - 1; i >= 0; i-- {
		out = append(out, f.recLog[i])
	}
	return out
}

func (f *Federation) recordRecovery(rec RecoveryRecord) {
	f.mu.Lock()
	f.recLog = append(f.recLog, rec)
	if len(f.recLog) > recoveryLogCap {
		f.recLog = f.recLog[len(f.recLog)-recoveryLogCap:]
	}
	f.mu.Unlock()
	switch rec.Outcome {
	case "restored":
		f.recRestored.Inc()
	case "stateless":
		f.recStateless.Inc()
	default:
		f.recFailed.Inc()
	}
}

// orphanQuery is one query stranded by an entity failure.
type orphanQuery struct {
	spec     engine.QuerySpec
	onResult func(stream.Tuple)
}

// recoverOrphans is FailEntity's checkpoint-aware re-placement path. It
// returns the number of queries brought back (restored or stateless).
func (f *Federation) recoverOrphans(p *ckptPlane, failedID string, pos simnet.Point,
	orphans []orphanQuery) (int, error) {
	start := time.Now()
	ids := make([]string, 0, len(orphans))
	for _, o := range orphans {
		ids = append(ids, o.spec.ID)
	}
	f.logger.Info("recovery.start", failedID, "crash recovery starting",
		"queries", len(orphans))
	recs := p.fetchRecords(ids, recoveryFetchTimeout)
	delete(recs, LedgerQuery)

	// Route every orphan, then group by target so each destination gets
	// one interest refresh, one settle, and one replay per stream.
	groups := make(map[string][]orphanQuery)
	recovered := 0
	var firstErr error
	for _, o := range orphans {
		_ = f.ledger.Stop(o.spec.ID) // the dead entity's accrual ends
		f.mu.Lock()
		load := func(m coordinator.MemberID) float64 {
			if target, ok := f.entities[string(m)]; ok {
				return target.ent.Load()
			}
			return 0
		}
		member, _, err := f.coord.RouteQuery(pos, load)
		f.mu.Unlock()
		if err != nil {
			f.recordRecovery(RecoveryRecord{Query: o.spec.ID, Failed: failedID,
				Outcome: "failed", Reason: "route: " + err.Error(), Time: time.Now()})
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		groups[string(member)] = append(groups[string(member)], o)
	}
	targets := make([]string, 0, len(groups))
	for t := range groups {
		targets = append(targets, t)
	}
	sort.Strings(targets)
	for _, target := range targets {
		n, err := f.recoverGroup(p, failedID, target, groups[target], recs)
		recovered += n
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	f.routesChanged()
	f.logger.Info("recovery.done", failedID, "crash recovery finished",
		"queries", len(orphans), "recovered", recovered,
		"elapsed_ms", fmt.Sprintf("%.1f", float64(time.Since(start).Microseconds())/1000))
	return recovered, firstErr
}

// recoverGroup re-places one target entity's share of the orphans.
func (f *Federation) recoverGroup(p *ckptPlane, failedID, target string,
	orphans []orphanQuery, recs map[string]checkpoint.Record) (int, error) {
	f.mu.Lock()
	en, ok := f.entities[target]
	f.mu.Unlock()
	if !ok {
		for _, o := range orphans {
			f.recordRecovery(RecoveryRecord{Query: o.spec.ID, Failed: failedID,
				Target: target, Outcome: "failed", Reason: "target lost", Time: time.Now()})
		}
		return 0, fmt.Errorf("core: recovery target %q lost", target)
	}

	// PREPARE every query paused, then bring the target's interests
	// live and let the wider net settle once for the whole group.
	sort.Slice(orphans, func(i, j int) bool { return orphans[i].spec.ID < orphans[j].spec.ID })
	prepared := orphans[:0]
	streamSet := make(map[string]bool)
	for _, o := range orphans {
		if err := en.ent.PrepareQuery(o.spec, f.opts.FragmentsPerQuery); err != nil {
			f.recordRecovery(RecoveryRecord{Query: o.spec.ID, Failed: failedID,
				Target: target, Outcome: "failed", Reason: "prepare: " + err.Error(),
				Time: time.Now()})
			continue
		}
		prepared = append(prepared, o)
		for _, s := range o.spec.Streams() {
			streamSet[s] = true
		}
	}
	streams := make([]string, 0, len(streamSet))
	for s := range streamSet {
		streams = append(streams, s)
	}
	sort.Strings(streams)
	if err := f.refreshInterests(target, streams); err != nil {
		return 0, err
	}
	f.Settle(migrateSettle)

	// RESTORE state and marks; compute each stream's replay floor as
	// the minimum restored mark over the group (no record → 0: replay
	// everything the ring holds).
	type pending struct {
		o   orphanQuery
		rec RecoveryRecord
	}
	pendings := make([]pending, 0, len(prepared))
	floors := make(map[string]uint64, len(streams))
	for _, s := range streams {
		floors[s] = ^uint64(0)
	}
	for _, o := range prepared {
		pr := pending{o: o, rec: RecoveryRecord{Query: o.spec.ID, Failed: failedID,
			Target: target, Outcome: "stateless", Time: time.Now()}}
		ck, has := recs[o.spec.ID]
		if has {
			if specJSON, err := json.Marshal(o.spec); err != nil || !bytes.Equal(specJSON, ck.Spec) {
				// The record was written for a different incarnation of
				// this query ID; restoring it would corrupt state.
				f.logger.Warn("recovery.restore", target, "checkpoint spec mismatch; recovering stateless",
					"query", o.spec.ID, "seq", ck.Seq)
				has = false
			}
		}
		if has {
			st := make(map[string]engine.QueryState, len(ck.Frags))
			for _, fr := range ck.Frags {
				qs := make(engine.QueryState, 0, len(fr.Ops))
				for _, op := range fr.Ops {
					qs = append(qs, engine.OperatorState{Name: op.Name, Data: op.Data})
				}
				st[fr.ID] = qs
			}
			if err := en.ent.RestoreQuery(o.spec.ID, st); err != nil {
				f.logger.Warn("recovery.restore", target, "checkpoint restore failed; recovering stateless",
					"query", o.spec.ID, "seq", ck.Seq, "err", err.Error())
			} else {
				_ = en.ent.SetQueryMarks(o.spec.ID, ck.Marks)
				p.bumpSeq(o.spec.ID, ck.Seq)
				pr.rec.Outcome, pr.rec.Seq = "restored", ck.Seq
				f.logger.Info("recovery.restore", target, "query state restored from checkpoint",
					"query", o.spec.ID, "seq", ck.Seq, "failed", failedID)
			}
		}
		for _, s := range o.spec.Streams() {
			m := uint64(0)
			if pr.rec.Outcome == "restored" {
				m = ck.Marks[s]
			}
			if m < floors[s] {
				floors[s] = m
			}
		}
		pendings = append(pendings, pr)
	}

	// REPLAY each stream's ring suffix once into the target; paused
	// gates buffer it, live gates dedup it away against their marks.
	replayed := 0
	for _, s := range streams {
		floor := floors[s]
		if floor == ^uint64(0) {
			continue
		}
		suffix, trimmed := p.ringSince(s, floor)
		if trimmed > floor {
			f.logger.Warn("recovery.restore", target, "replay gap: ring trimmed past restore floor",
				"stream", s, "floor", floor, "trimmed", trimmed)
		}
		if len(suffix) == 0 {
			continue
		}
		en.ent.IngestBatch(suffix)
		replayed += len(suffix)
	}
	f.recReplayFetched.Add(int64(replayed))

	// COMMIT: open the gates; the pause buffers (replay + any tuples
	// that arrived during the handoff) drain through the (stream, seq)
	// dedup filter seeded from the restored marks.
	recovered := 0
	var firstErr error
	for _, pr := range pendings {
		// Wire the result route before the commit: the flush delivers
		// the replayed suffix's results immediately, and an unrouted
		// result is a lost result.
		f.mu.Lock()
		f.queries[pr.o.spec.ID] = &fedQuery{spec: pr.o.spec, entity: target}
		if pr.o.onResult != nil {
			f.results[pr.o.spec.ID] = pr.o.onResult
		}
		f.mu.Unlock()
		n, dropped, err := en.ent.CommitQuery(pr.o.spec.ID, nil)
		if err != nil {
			f.mu.Lock()
			delete(f.queries, pr.o.spec.ID)
			delete(f.results, pr.o.spec.ID)
			f.mu.Unlock()
			pr.rec.Outcome, pr.rec.Reason = "failed", "commit: "+err.Error()
			f.recordRecovery(pr.rec)
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if dropped > 0 {
			f.logger.Warn("recovery.restore", target, "recovery pause buffer overflowed",
				"query", pr.o.spec.ID, "dropped", dropped)
		}
		pr.rec.Replayed = n
		f.recReplayed.Add(int64(n))
		if err := f.ledger.Start(pr.o.spec.ID, target); err != nil {
			f.logger.Warn("ledger.error", target, "ledger start failed",
				"query", pr.o.spec.ID, "err", err.Error())
		}
		f.recordRecovery(pr.rec)
		recovered++
	}
	return recovered, firstErr
}

// KillEntity simulates a hard crash (kill -9): the entity's relays,
// heartbeat responder, checkpoint replica, and processors stop dead —
// no goodbye, no tree repair, no book-keeping. The failure detector (or
// an explicit FailEntity) discovers the corpse later; until then the
// dissemination trees still route through it. Chaos tests and the
// recovery bench use this to stage real crash windows.
func (f *Federation) KillEntity(id string) error {
	f.mu.Lock()
	en, ok := f.entities[id]
	f.mu.Unlock()
	if !ok {
		return fmt.Errorf("core: unknown entity %q", id)
	}
	f.logger.Warn("entity.kill", id, "entity hard-killed (no goodbye)")
	if p := f.ckptRef(); p != nil {
		p.killReplica(id)
	}
	for _, relay := range en.relays {
		if relay != nil {
			_ = relay.Close()
		}
	}
	if en.hb != nil {
		_ = en.hb.Close()
	}
	en.ent.Close()
	return nil
}

// RecoveryReplayFetched reports the total tuples fetched from the
// replay rings during recoveries (the numerator of the bench's replay
// amplification gate).
func (f *Federation) RecoveryReplayFetched() int64 { return f.recReplayFetched.Value() }

// EntityFailErrors reports detector-confirmed expulsions whose
// FailEntity call failed (satellite: no silently dropped errors).
func (f *Federation) EntityFailErrors() int64 { return f.entityFailErrors.Value() }

// expelConfirmed runs a detector-confirmed expulsion and accounts for
// its outcome — the async confirm callback must never drop an error on
// the floor.
func (f *Federation) expelConfirmed(id string) {
	if _, err := f.FailEntity(id); err != nil {
		f.entityFailErrors.Inc()
		f.logger.Error("detector.expel_failed", id, "confirmed-failure expulsion failed",
			"err", err.Error())
	}
}
