package core

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"sspd/internal/engine"
	"sspd/internal/obslog"
	"sspd/internal/simnet"
	"sspd/internal/stream"
	"sspd/internal/workload"
)

func shardFactory(name string, c *stream.Catalog) engine.Processor {
	return engine.NewShard(name, c, 1)
}

// TestEngineSaturationChaos is the introspection plane's chaos
// acceptance test: a deliberately stalled shard engine overruns its
// ring, and the backpressure watchdog must journal engine.saturated
// (auto-capturing a profile on the edge) and then engine.recovered once
// the load drains.
func TestEngineSaturationChaos(t *testing.T) {
	net := simnet.NewSim(nil)
	defer net.Close()
	catalog := workload.Catalog(100, 20)
	fed, err := New(net, catalog, Options{Fanout: 2,
		Logger: obslog.New(obslog.NewJournal(obslog.DefaultJournalCapacity), nil)})
	if err != nil {
		t.Fatal(err)
	}
	defer fed.Close()
	if err := fed.AddSource("quotes", simnet.Point{},
		StreamRate{TuplesPerSec: 1000, BytesPerTuple: 60}); err != nil {
		t.Fatal(err)
	}
	if err := fed.AddEntity("e00", simnet.Point{X: 10}, 1, shardFactory); err != nil {
		t.Fatal(err)
	}
	if err := fed.Start(); err != nil {
		t.Fatal(err)
	}
	if _, ok := fed.ClusterEngine(); ok {
		t.Fatal("ClusterEngine must report disabled before enable")
	}
	if err := fed.EnableStatsPlane(0); err != nil {
		t.Fatal(err)
	}
	// Only the drop-rate rule: the occupancy rule would also trip here,
	// but its recovery depends on how fast the drain happens, and this
	// test wants a deterministic breach→recover pair.
	if err := fed.EnableEngineIntrospection(0, "drop_rate < 1%"); err != nil {
		t.Fatal(err)
	}
	if err := fed.EnableEngineIntrospection(0); err == nil {
		t.Fatal("double enable must fail")
	}
	if err := fed.EnableProfiling(t.TempDir(), 0); err != nil {
		t.Fatal(err)
	}

	// The first result parks the shard goroutine on the gate; the ring
	// behind it fills and every further delivery drops. The gate is
	// released through a Once and deferred so a failing assertion can
	// never leave the shard parked under fed.Close.
	gate := make(chan struct{})
	var gateOnce sync.Once
	openGate := func() { gateOnce.Do(func() { close(gate) }) }
	defer openGate()
	gated := false
	if err := fed.SubmitQueryTo(priceQuery("qd", 0, 1000), "e00",
		func(stream.Tuple) {
			if !gated {
				gated = true
				<-gate
			}
		}); err != nil {
		t.Fatal(err)
	}
	fed.Settle(2 * time.Second)

	tick := workload.NewTicker(1, 100, 1.2)
	dropped := func() int64 {
		var d int64
		for _, ee := range fed.liveEngineEntities() {
			d += ee.Stats.Totals().Dropped
		}
		return d
	}
	deadline := time.Now().Add(15 * time.Second)
	for dropped() == 0 {
		if err := fed.Publish("quotes", tick.Batch(4)); err != nil {
			t.Fatal(err)
		}
		if time.Now().After(deadline) {
			t.Fatal("could not overrun the shard ring")
		}
	}
	// The ring is now full and its consumer parked, so every further
	// delivery drops: push the window's drop rate far past 1% instead of
	// relying on in-flight backlog for the margin.
	for i := 0; i < 100; i++ {
		if err := fed.Publish("quotes", tick.Batch(4)); err != nil {
			t.Fatal(err)
		}
	}
	fed.Settle(2 * time.Second)

	// One watchdog tick while saturated: way more than 1% of the window
	// dropped.
	fed.StatsTick()
	fed.Settle(2 * time.Second)
	sat := fed.Journal().Since(0, "engine.saturated")
	if len(sat) != 1 {
		t.Fatalf("engine.saturated events = %d, want 1", len(sat))
	}
	if sat[0].Fields["rule"] != "drop_rate < 1%" {
		t.Fatalf("saturated rule = %q", sat[0].Fields["rule"])
	}
	view, ok := fed.ClusterEngine()
	if !ok || !view.Saturated {
		t.Fatalf("ClusterEngine saturated = %v ok = %v, want true", view.Saturated, ok)
	}
	if view.DropRate <= 0.01 {
		t.Fatalf("window drop rate = %v, want > 1%%", view.DropRate)
	}

	// The saturation edge auto-captured into the profile ring (the heap
	// capture is synchronous inside the trigger, the CPU one async).
	prof := fed.Profiler()
	if prof == nil {
		t.Fatal("Profiler() = nil after EnableProfiling")
	}
	prof.WaitIdle()
	if got := prof.Total(); got == 0 {
		t.Fatal("no profile captured on the saturation edge")
	}
	if len(fed.Journal().Since(0, "profile.captured")) == 0 {
		t.Fatal("profile.captured not journaled")
	}

	// A second stalled tick must NOT journal a second transition: the
	// rule is already in breach.
	if err := fed.Publish("quotes", tick.Batch(4)); err != nil {
		t.Fatal(err)
	}
	fed.Settle(2 * time.Second)
	fed.StatsTick()
	if n := len(fed.Journal().Since(0, "engine.saturated")); n != 1 {
		t.Fatalf("engine.saturated events after second stalled tick = %d, want 1 (no re-journal)", n)
	}

	// Open the gate, drain the backlog, and push a clean window through:
	// the drop rate falls to zero and the watchdog journals recovery.
	openGate()
	fed.Settle(5 * time.Second)
	for i := 0; i < 50; i++ {
		if err := fed.Publish("quotes", tick.Batch(4)); err != nil {
			t.Fatal(err)
		}
	}
	fed.Settle(5 * time.Second)
	fed.StatsTick()
	rec := fed.Journal().Since(0, "engine.recovered")
	if len(rec) != 1 {
		t.Fatalf("engine.recovered events = %d, want 1", len(rec))
	}
	if rec[0].Fields["rule"] != "drop_rate < 1%" {
		t.Fatalf("recovered rule = %q", rec[0].Fields["rule"])
	}
	if view, _ := fed.ClusterEngine(); view.Saturated {
		t.Fatal("still saturated after the clean window")
	}

	// The saturated/recovered pair sits in causal order in the journal.
	if sat[0].Seq >= rec[0].Seq {
		t.Fatalf("saturated seq %d not before recovered seq %d", sat[0].Seq, rec[0].Seq)
	}

	// Metric families reflect the episode on the local registry.
	var buf bytes.Buffer
	if err := fed.registry.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`sspd_engine_saturations_total{rule="drop_rate < 1%"} 1`,
		`sspd_engine_saturated{rule="drop_rate < 1%"} 0`,
		`sspd_engine_dropped_total{entity="e00"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("local exposition missing %q", want)
		}
	}
}

// TestEngineViewFederatesRemoteRows: an entity row carried only by the
// stats digest (no live handle) still appears in the cluster engine
// view with its shard telemetry.
func TestEngineViewFederatesRemoteRows(t *testing.T) {
	net := simnet.NewSim(nil)
	defer net.Close()
	fed, err := New(net, workload.Catalog(100, 20), Options{Fanout: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer fed.Close()
	if err := fed.AddSource("quotes", simnet.Point{},
		StreamRate{TuplesPerSec: 1000, BytesPerTuple: 60}); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"e00", "e01"} {
		if err := fed.AddEntity(id, simnet.Point{X: 10}, 1, shardFactory); err != nil {
			t.Fatal(err)
		}
	}
	if err := fed.Start(); err != nil {
		t.Fatal(err)
	}
	if err := fed.EnableStatsPlane(0); err != nil {
		t.Fatal(err)
	}
	if err := fed.EnableEngineIntrospection(0); err != nil {
		t.Fatal(err)
	}
	if err := fed.SubmitQueryTo(priceQuery("q0", 0, 1000), "e00", nil); err != nil {
		t.Fatal(err)
	}
	fed.Settle(2 * time.Second)
	tick := workload.NewTicker(1, 100, 1.2)
	if err := fed.Publish("quotes", tick.Batch(50)); err != nil {
		t.Fatal(err)
	}
	fed.Settle(2 * time.Second)
	settleTicks(fed, 2)

	view, ok := fed.ClusterEngine()
	if !ok {
		t.Fatal("plane enabled but ClusterEngine not ok")
	}
	if len(view.Entities) != 2 {
		t.Fatalf("view has %d entities, want 2: %+v", len(view.Entities), view.Entities)
	}
	for _, ee := range view.Entities {
		if len(ee.Stats.Shards) == 0 {
			t.Fatalf("%s: no shard rows in the view", ee.Entity)
		}
	}
	// The digest rows carry the telemetry (Engine set in EntityStats),
	// so the view answers for entities the root no longer reads live.
	rows, _, ok := fed.ClusterStats()
	if !ok {
		t.Fatal("no root digest")
	}
	for id, row := range rows {
		if row.Engine == nil {
			t.Fatalf("digest row %s missing engine telemetry", id)
		}
		if row.Engine.Queries < 0 || len(row.Engine.Shards) == 0 {
			t.Fatalf("digest row %s engine telemetry empty: %+v", id, row.Engine)
		}
	}
}
