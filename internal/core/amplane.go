package core

// The Adaptation Module plane (paper §4.2, DESIGN.md §15): the
// federation half of per-tuple adaptive downstream selection. Entities
// replicate middle query fragments into candidate sets and route every
// inter-fragment tuple through a shared DownstreamChooser; this plane
// closes the feedback loop by turning latency-attribution trace
// completions into per-candidate delay observations fed back into the
// choosers via Report. Routing tables are copy-on-write (the same
// pattern as latencyPlane): the span-completion hook — which runs on
// tuple-path goroutines — only ever loads an atomic pointer, never a
// federation lock, and the per-tuple Choose itself reads no clock; all
// timing comes from sampled trace hops.

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"sspd/internal/entity"
	"sspd/internal/metrics"
	"sspd/internal/trace"
)

// amRoute is one routed candidate's resolution: which entity, query,
// and fragment boundary the candidate instance belongs to, and the
// shared chooser scoring it.
type amRoute struct {
	entityID string
	query    string
	boundary string
	chooser  *entity.DownstreamChooser
}

// amPlane owns the candidate→route table and the switch bookkeeping.
type amPlane struct {
	f *Federation

	// route maps candidate instance ID ("q#1@r0", federation-unique
	// because query IDs are) → its route. Copy-on-write: the completion
	// hook only loads it.
	route atomic.Pointer[map[string]amRoute]

	// reports counts delay observations fed into choosers; switches
	// counts preferred-candidate changes.
	reports  metrics.Counter
	switches metrics.Counter

	mu sync.Mutex
	// best remembers each boundary's last preferred candidate
	// (entity/query/boundary key) to detect switches.
	best map[string]string
}

func newAMPlane(f *Federation) *amPlane {
	p := &amPlane{f: f, best: make(map[string]string)}
	empty := make(map[string]amRoute)
	p.route.Store(&empty)
	return p
}

// refreshRoutes rebuilds the copy-on-write candidate table from every
// entity's current route bindings. Called on placement changes; must
// not run under f.mu (RouteBindings takes the entity lock).
func (p *amPlane) refreshRoutes() {
	f := p.f
	f.mu.Lock()
	ents := make([]*entityNode, 0, len(f.entities))
	for _, en := range f.entities {
		ents = append(ents, en)
	}
	f.mu.Unlock()
	m := make(map[string]amRoute)
	for _, en := range ents {
		for _, rb := range en.ent.RouteBindings() {
			m[rb.Candidate] = amRoute{
				entityID: en.id,
				query:    rb.Query,
				boundary: rb.Boundary,
				chooser:  rb.Chooser,
			}
		}
	}
	p.route.Store(&m)
}

// onSpanComplete mines a finished span for candidate delays: a routed
// emit stamps a StageOperator hop under the chosen candidate's instance
// ID (again at the remote receive, collapsed here as a same-node run),
// so the candidate's observed delay is the wall-clock distance from its
// first hop to the first hop AFTER the run — network transfer plus
// queueing plus processing on the candidate, exactly the signal that
// separates a slowed processor from a healthy one. Runs on the
// recording goroutine; touches only plane-local state.
func (p *amPlane) onSpanComplete(s trace.Span, hop int) {
	if hop < 0 {
		return // evicted without completing; no trustworthy terminal hop
	}
	m := p.route.Load()
	if m == nil || len(*m) == 0 {
		return
	}
	hops := s.Hops
	for i := 0; i < len(hops); i++ {
		h := hops[i]
		if h.Stage != trace.StageOperator {
			continue
		}
		rt, ok := (*m)[h.Node]
		if !ok {
			continue
		}
		j := i + 1
		for j < len(hops) && hops[j].Stage == trace.StageOperator && hops[j].Node == h.Node {
			j++
		}
		if j < len(hops) {
			d := hops[j].At.Sub(h.At).Seconds()
			if d < 0 {
				d = 0
			}
			p.observe(rt, h.Node, d)
		}
		i = j - 1
	}
}

// observe feeds one measured delay into the candidate's chooser and
// journals exploration observations and preferred-candidate switches.
func (p *amPlane) observe(rt amRoute, candidate string, delaySeconds float64) {
	prev := rt.chooser.Best()
	rt.chooser.Report(candidate, delaySeconds)
	p.reports.Inc()
	if prev != "" && candidate != prev {
		// A measurement for a non-best candidate: the cold-start
		// rotation or an explore tick paid off with fresh data.
		p.f.logger.Debug("am.explore", rt.entityID, "probed non-best candidate",
			"query", rt.query, "boundary", rt.boundary, "candidate", candidate,
			"delay", fmt.Sprintf("%.6g", delaySeconds))
	}
	now := rt.chooser.Best()
	if now == "" {
		return
	}
	key := rt.entityID + "/" + rt.query + "/" + rt.boundary
	p.mu.Lock()
	old, had := p.best[key]
	changed := now != old
	if changed {
		p.best[key] = now
	}
	p.mu.Unlock()
	if !changed {
		return
	}
	if had {
		p.switches.Inc()
	}
	p.f.logger.Info("am.route", rt.entityID, "preferred downstream candidate changed",
		"query", rt.query, "boundary", rt.boundary, "candidate", now, "from", old)
}

// collect renders the sspd_am_* routing families.
func (p *amPlane) collect(emit func(metrics.Sample)) {
	counter := func(name, help string, v float64, labels ...metrics.Label) {
		emit(metrics.Sample{Name: name, Help: help, Kind: metrics.KindCounter, Labels: labels, Value: v})
	}
	gauge := func(name, help string, v float64, labels ...metrics.Label) {
		emit(metrics.Sample{Name: name, Help: help, Kind: metrics.KindGauge, Labels: labels, Value: v})
	}
	counter("sspd_am_reports_total", "Per-candidate delay observations fed into downstream choosers.",
		float64(p.reports.Value()))
	counter("sspd_am_route_switches_total", "Preferred-downstream-candidate changes across routed boundaries.",
		float64(p.switches.Value()))

	m := p.route.Load()
	if m == nil {
		return
	}
	ids := make([]string, 0, len(*m))
	for id := range *m {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var routed, explored int64
	seen := make(map[*entity.DownstreamChooser]bool)
	for _, id := range ids {
		rt := (*m)[id]
		if !seen[rt.chooser] {
			seen[rt.chooser] = true
			routed += rt.chooser.RoutedCount()
			explored += rt.chooser.ExploredCount()
		}
		gauge("sspd_am_candidate_delay_seconds", "Smoothed observed delay per downstream candidate.",
			rt.chooser.Score(id),
			metrics.L("query", rt.query), metrics.L("boundary", rt.boundary), metrics.L("candidate", id))
	}
	counter("sspd_am_routed_total", "Per-tuple downstream routing decisions made.", float64(routed))
	counter("sspd_am_explored_total", "Routing decisions that probed a non-best candidate.", float64(explored))
}

// amCollectInto emits the Adaptation Module families: reorder totals
// always (AdaptOrdering sweeps work without tuple routing), routing
// families when the plane is live. Registered on the federation
// registry and re-driven from the stats plane so GET /metrics and
// GET /cluster/metrics agree.
func (f *Federation) amCollectInto(emit func(metrics.Sample)) {
	emit(metrics.Sample{
		Name:  "sspd_am_reorders_total",
		Help:  "Operator reorders applied by AdaptOrdering sweeps.",
		Kind:  metrics.KindCounter,
		Value: float64(f.amReorders.Value()),
	})
	if f.am != nil {
		f.am.collect(emit)
	}
}

// routesChanged refreshes every copy-on-write routing table derived
// from the current placement: the latency plane's query→recorder map
// and the AM plane's candidate table. Called after any placement
// change; must not run under f.mu.
func (f *Federation) routesChanged() {
	f.latencyRoutesChanged()
	if f.am != nil {
		f.am.refreshRoutes()
	}
}

// dispatchSpanComplete is the tracer's single completion hook: it fans
// finished spans out to the planes that consume them through
// copy-on-write pointers (f.spanLat) or pointers immutable after New
// (f.am), so the tuple-path goroutine recording the terminal hop never
// touches f.mu.
func (f *Federation) dispatchSpanComplete(s trace.Span, hop int) {
	if p := f.spanLat.Load(); p != nil {
		p.onComplete(s, hop)
	}
	if f.am != nil {
		f.am.onSpanComplete(s, hop)
	}
}

// RouteStatus is one routed candidate's externally visible state,
// served at GET /routing.
type RouteStatus struct {
	Query     string `json:"query"`
	Boundary  string `json:"boundary"`
	Candidate string `json:"candidate"`
	// DelaySeconds is the smoothed observed delay (0 until measured).
	DelaySeconds float64 `json:"delay_seconds"`
	// Best marks the boundary's currently preferred candidate.
	Best bool `json:"best"`
}

// AdaptationRoutes lists every routed boundary's candidates with their
// current smoothed delays, sorted by query then candidate. Empty when
// tuple routing is disabled or nothing routed is placed.
func (f *Federation) AdaptationRoutes() []RouteStatus {
	if f.am == nil {
		return nil
	}
	m := f.am.route.Load()
	if m == nil {
		return nil
	}
	out := make([]RouteStatus, 0, len(*m))
	for id, rt := range *m {
		out = append(out, RouteStatus{
			Query:        rt.query,
			Boundary:     rt.boundary,
			Candidate:    id,
			DelaySeconds: rt.chooser.Score(id),
			Best:         rt.chooser.Best() == id,
		})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Query != out[b].Query {
			return out[a].Query < out[b].Query
		}
		return out[a].Candidate < out[b].Candidate
	})
	return out
}
