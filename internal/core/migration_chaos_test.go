package core

import (
	"testing"
	"time"

	"sspd/internal/dissemination"
	"sspd/internal/engine"
	"sspd/internal/simnet"
	"sspd/internal/stream"
	"sspd/internal/workload"
)

// TestMigrationChaosStatefulZeroLoss is the satellite-5 scenario: a
// windowed-aggregate query migrates around the cluster mid-stream while
// every link jitters and reorders, and one hop is sabotaged by a
// destination-placement failure. The protocol must deliver every quote
// exactly once, keep the count window warm across every committed hop,
// and roll the sabotaged hop back onto the source cleanly.
func TestMigrationChaosStatefulZeroLoss(t *testing.T) {
	const window = 64
	fed, plan := newChaosFederation(t, 7, 3, Options{
		Strategy:        dissemination.Balanced,
		Fanout:          2,
		ReliableControl: true,
		InterestRefresh: 25 * time.Millisecond,
	})

	log := &seqLog{}
	if err := fed.SubmitQueryTo(countQuery("agg", window), "e00", log.observe); err != nil {
		t.Fatal(err)
	}
	fed.Settle(2 * time.Second)

	// Link chaos: delivery jitter plus reordering on every link. No
	// drops — transport loss is the recovery suite's concern; here any
	// missing result indicts the migration protocol itself.
	plan.SetDefaultFaults(simnet.LinkFaults{
		Reorder:      0.25,
		ReorderDelay: 2 * time.Millisecond,
		Jitter:       time.Millisecond,
	})
	plan.SetEnabled(true)

	tick := workload.NewTicker(11, 100, 1.2)
	var published stream.Batch
	publish := func(k int) {
		b := tick.Batch(k)
		published = append(published, b...)
		if err := fed.Publish("quotes", b); err != nil {
			t.Fatal(err)
		}
	}

	publish(100)
	fed.Settle(2 * time.Second)

	// Migrate around the ring with tuples in flight at every hop.
	for _, to := range []string{"e01", "e02", "e00", "e01"} {
		publish(50)
		if err := fed.MigrateQuery("agg", to); err != nil {
			t.Fatalf("migrate -> %s under chaos: %v", to, err)
		}
	}

	// Sabotage the next hop: a conflicting placement already sits on
	// e02, so PREPARE fails and the protocol must leave the query
	// serving on e01.
	fed.Settle(2 * time.Second)
	blocker := engine.QuerySpec{
		ID:     "agg",
		Source: "quotes",
		Filters: []engine.FilterSpec{
			{Field: "price", Lo: -10, Hi: -1, Cost: 1},
		},
	}
	fed.mu.Lock()
	sabotaged := fed.entities["e02"]
	fed.mu.Unlock()
	if err := sabotaged.ent.PlaceQuery(blocker, 1); err != nil {
		t.Fatal(err)
	}
	publish(50)
	if err := fed.MigrateQuery("agg", "e02"); err == nil {
		t.Fatal("migration onto sabotaged destination succeeded")
	}
	if e, _ := fed.QueryEntity("agg"); e != "e01" {
		t.Fatalf("rollback left query on %s, want e01", e)
	}
	if _, err := sabotaged.ent.RemoveQuery("agg"); err != nil {
		t.Fatal(err)
	}

	// The survivor keeps serving through the tail of the storm.
	publish(50)
	fed.Settle(2 * time.Second)
	plan.SetEnabled(false)
	fed.Settle(2 * time.Second)

	counts, values := log.snapshot()
	lost, dup := 0, 0
	for _, tu := range published {
		switch counts[tu.Seq] {
		case 1:
		case 0:
			lost++
		default:
			dup++
		}
	}
	if lost != 0 || dup != 0 {
		t.Fatalf("exactly-once violated: %d lost, %d duplicated of %d published",
			lost, dup, len(published))
	}
	if len(values) != len(published) {
		t.Fatalf("results = %d, published = %d", len(values), len(published))
	}
	// Window-state continuity across four commits and one rollback: the
	// warmup ramp 1..window-1 appears exactly once; every other result
	// saw a full window.
	assertWindowContinuity(t, values, window)

	recs := fed.Migrations()
	commits, rollbacks := 0, 0
	for _, r := range recs {
		switch r.Outcome {
		case "commit":
			commits++
			if !r.Stateful || r.StateBytes <= 0 {
				t.Fatalf("chaos commit lost state: %+v", r)
			}
		case "rollback":
			rollbacks++
		}
	}
	if commits != 4 || rollbacks != 1 {
		t.Fatalf("migration history: %d commits, %d rollbacks; want 4 and 1", commits, rollbacks)
	}
}
