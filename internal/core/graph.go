package core

import (
	"sspd/internal/engine"
	"sspd/internal/querygraph"
	"sspd/internal/stream"
)

// StreamRate is the nominal data rate of one stream, used to weight
// query-graph edges in bytes/second as the paper specifies.
type StreamRate struct {
	// TuplesPerSec is the stream's arrival rate.
	TuplesPerSec float64
	// BytesPerTuple is the average encoded tuple size.
	BytesPerTuple float64
}

// BytesPerSec returns the stream's byte rate.
func (r StreamRate) BytesPerSec() float64 { return r.TuplesPerSec * r.BytesPerTuple }

// BuildQueryGraph constructs the weighted query graph of Section 3.2.2
// from query specs: vertices weighted by estimated load, edges weighted
// by the byte rate of data interesting to both endpoints (stream rate ×
// interest-overlap fraction, summed over shared streams). Edges below
// minEdge are dropped to keep the graph sparse.
func BuildQueryGraph(specs []engine.QuerySpec, catalog *stream.Catalog,
	rates map[string]StreamRate, minEdge float64) *querygraph.Graph {
	g := querygraph.New()
	type interestOn struct {
		spec     engine.QuerySpec
		interest map[string]stream.Interest
	}
	items := make([]interestOn, 0, len(specs))
	for _, spec := range specs {
		g.AddVertex(querygraph.VertexID(spec.ID), spec.EstimatedLoad())
		in := make(map[string]stream.Interest)
		for _, s := range spec.Streams() {
			if sc, ok := catalog.Lookup(s); ok {
				in[s] = spec.Interest(s, sc)
			}
		}
		items = append(items, interestOn{spec: spec, interest: in})
	}
	for i := 0; i < len(items); i++ {
		for j := i + 1; j < len(items); j++ {
			w := 0.0
			for s, ia := range items[i].interest {
				ib, ok := items[j].interest[s]
				if !ok {
					continue
				}
				sc, ok := catalog.Lookup(s)
				if !ok {
					continue
				}
				rate, ok := rates[s]
				if !ok {
					continue
				}
				w += rate.BytesPerSec() * stream.Overlap(ia, ib, sc)
			}
			if w > minEdge {
				// Both vertices exist; SetEdge cannot fail here.
				_ = g.SetEdge(querygraph.VertexID(items[i].spec.ID),
					querygraph.VertexID(items[j].spec.ID), w)
			}
		}
	}
	return g
}
