package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"sspd/internal/simnet"
	"sspd/internal/stream"
	"sspd/internal/workload"
)

func TestFailEntityReplacesQueries(t *testing.T) {
	fed, net := newTestFederation(t, 3)
	var mu sync.Mutex
	results := map[string]int{}
	for i := 0; i < 3; i++ {
		id := fmt.Sprintf("q%d", i)
		qid := id
		if err := fed.SubmitQueryTo(priceQuery(id, 0, 1000), "e01",
			func(stream.Tuple) { mu.Lock(); results[qid]++; mu.Unlock() }); err != nil {
			t.Fatal(err)
		}
	}
	if !net.Quiesce(2 * time.Second) {
		t.Fatal("quiesce")
	}
	// e01 crashes: no cooperation, queries rebuilt from specs.
	replaced, err := fed.FailEntity("e01")
	if err != nil {
		t.Fatal(err)
	}
	if replaced != 3 {
		t.Fatalf("replaced = %d, want 3", replaced)
	}
	if _, err := fed.FailEntity("e01"); err == nil {
		t.Error("double fail accepted")
	}
	for i := 0; i < 3; i++ {
		host, ok := fed.QueryEntity(fmt.Sprintf("q%d", i))
		if !ok || host == "e01" {
			t.Fatalf("q%d on %s/%v after failure", i, host, ok)
		}
	}
	if err := fed.DisseminationTree("quotes").Validate(); err != nil {
		t.Fatal(err)
	}
	// Result callbacks survive the re-placement.
	if !net.Quiesce(2 * time.Second) {
		t.Fatal("quiesce")
	}
	tick := workload.NewTicker(8, 100, 1.2)
	if err := fed.Publish("quotes", tick.Batch(10)); err != nil {
		t.Fatal(err)
	}
	if !net.Quiesce(2 * time.Second) {
		t.Fatal("quiesce")
	}
	mu.Lock()
	defer mu.Unlock()
	for i := 0; i < 3; i++ {
		if got := results[fmt.Sprintf("q%d", i)]; got != 10 {
			t.Errorf("q%d results after failure = %d, want 10", i, got)
		}
	}
}

func TestFailLastEntityRefused(t *testing.T) {
	fed, _ := newTestFederation(t, 2)
	if _, err := fed.FailEntity("e00"); err != nil {
		t.Fatal(err)
	}
	if _, err := fed.FailEntity("e01"); err == nil {
		t.Error("expelling the last entity accepted")
	}
}

func TestFailureDetectionExpelsDeadEntity(t *testing.T) {
	fed, net := newTestFederation(t, 3)
	if err := fed.EnableFailureDetection(20*time.Millisecond, 2); err != nil {
		t.Fatal(err)
	}
	if err := fed.EnableFailureDetection(time.Second, 2); err == nil {
		t.Error("double enable accepted")
	}
	if fed.Monitor() == nil {
		t.Fatal("monitor missing")
	}
	if err := fed.SubmitQueryTo(priceQuery("q1", 0, 1000), "e02", nil); err != nil {
		t.Fatal(err)
	}
	// Kill e02's heartbeat responder out-of-band (simulating a crash of
	// the whole entity process).
	if err := net.Deregister(hbID("e02")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if len(fed.EntityIDs()) == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("dead entity not expelled; entities = %v", fed.EntityIDs())
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The orphaned query was re-placed.
	deadline = time.Now().Add(2 * time.Second)
	for {
		if host, ok := fed.QueryEntity("q1"); ok && host != "e02" {
			break
		}
		if time.Now().After(deadline) {
			host, ok := fed.QueryEntity("q1")
			t.Fatalf("q1 not re-placed: %s/%v", host, ok)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestWatchNewEntities(t *testing.T) {
	fed, _ := newTestFederation(t, 2)
	fed.WatchNewEntities() // no monitor yet: no-op
	if err := fed.EnableFailureDetection(time.Hour, 3); err != nil {
		t.Fatal(err)
	}
	if got := len(fed.Monitor().Watched()); got != 2 {
		t.Fatalf("watched = %d", got)
	}
	if err := fed.JoinEntity("late", simnet.Point{X: 99}, 1, miniFactory); err != nil {
		t.Fatal(err)
	}
	fed.WatchNewEntities()
	if got := len(fed.Monitor().Watched()); got != 3 {
		t.Fatalf("watched after join = %d", got)
	}
}
