package core

import (
	"encoding/json"
	"fmt"
	"sort"

	"sspd/internal/engine"
	"sspd/internal/simnet"
)

// QuerySnapshot is one exported query: the declarative spec plus its
// hosting entity at export time. Because specs are self-contained, a
// snapshot plus the live streams is enough to rebuild the workload on
// any federation with the same global schema — the recovery story that
// loose coupling buys.
type QuerySnapshot struct {
	Spec   json.RawMessage `json:"spec"`
	Entity string          `json:"entity"`
}

// ExportQueries serializes every active query.
func (f *Federation) ExportQueries() ([]byte, error) {
	f.mu.Lock()
	ids := make([]string, 0, len(f.queries))
	for id := range f.queries {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]QuerySnapshot, 0, len(ids))
	for _, id := range ids {
		fq := f.queries[id]
		raw, err := json.Marshal(fq.spec)
		if err != nil {
			f.mu.Unlock()
			return nil, fmt.Errorf("core: export %s: %w", id, err)
		}
		out = append(out, QuerySnapshot{Spec: raw, Entity: fq.entity})
	}
	f.mu.Unlock()
	return json.MarshalIndent(out, "", "  ")
}

// ImportQueries re-submits exported queries that are not already active.
// Each query goes to its snapshotted entity when that entity still
// exists, otherwise through the coordinator tree from origin. Result
// callbacks are not restored — clients re-subscribe. It returns the
// number of queries added.
func (f *Federation) ImportQueries(data []byte, origin simnet.Point) (int, error) {
	var snaps []QuerySnapshot
	if err := json.Unmarshal(data, &snaps); err != nil {
		return 0, fmt.Errorf("core: bad snapshot: %w", err)
	}
	added := 0
	for i, snap := range snaps {
		var spec engine.QuerySpec
		if err := json.Unmarshal(snap.Spec, &spec); err != nil {
			return added, fmt.Errorf("core: snapshot entry %d: %w", i, err)
		}
		f.mu.Lock()
		_, active := f.queries[spec.ID]
		_, entityExists := f.entities[snap.Entity]
		f.mu.Unlock()
		if active {
			continue
		}
		var err error
		if entityExists {
			err = f.SubmitQueryTo(spec, snap.Entity, nil)
		} else {
			_, err = f.SubmitQuery(spec, origin, nil)
		}
		if err != nil {
			return added, fmt.Errorf("core: snapshot entry %d (%s): %w", i, spec.ID, err)
		}
		added++
	}
	return added, nil
}
