package core

import (
	"strings"
	"testing"
	"time"

	"sspd/internal/simnet"
	"sspd/internal/workload"
)

func TestExportImportRoundTrip(t *testing.T) {
	fed, net := newTestFederation(t, 3)
	for i, q := range []string{"qa", "qb", "qc"} {
		if _, err := fed.SubmitQuery(priceQuery(q, float64(i*100), float64(i*100+200)),
			simnet.Point{X: float64(10 + i*10)}, nil); err != nil {
			t.Fatal(err)
		}
	}
	data, err := fed.ExportQueries()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "qa") {
		t.Fatalf("snapshot missing query: %s", data)
	}
	// Importing into the same federation is a no-op (all active).
	added, err := fed.ImportQueries(data, simnet.Point{})
	if err != nil {
		t.Fatal(err)
	}
	if added != 0 {
		t.Fatalf("re-import added %d", added)
	}
	// A fresh federation rebuilds the workload from the snapshot.
	fed2, net2 := newTestFederation(t, 3)
	added, err = fed2.ImportQueries(data, simnet.Point{X: 15})
	if err != nil {
		t.Fatal(err)
	}
	if added != 3 {
		t.Fatalf("import added %d, want 3", added)
	}
	// Snapshotted placements are honored (same entity IDs exist).
	for _, q := range []string{"qa", "qb", "qc"} {
		orig, _ := fed.QueryEntity(q)
		got, ok := fed2.QueryEntity(q)
		if !ok || got != orig {
			t.Errorf("%s on %s, want %s", q, got, orig)
		}
	}
	// And they process data.
	if !net2.Quiesce(2 * time.Second) {
		t.Fatal("quiesce")
	}
	tick := workload.NewTicker(2, 100, 1.2)
	if err := fed2.Publish("quotes", tick.Batch(20)); err != nil {
		t.Fatal(err)
	}
	if !net2.Quiesce(2 * time.Second) {
		t.Fatal("quiesce")
	}
	_ = net
}

func TestImportAfterEntityLoss(t *testing.T) {
	fed, _ := newTestFederation(t, 3)
	if _, err := fed.SubmitQuery(priceQuery("q1", 0, 500), simnet.Point{}, nil); err != nil {
		t.Fatal(err)
	}
	data, err := fed.ExportQueries()
	if err != nil {
		t.Fatal(err)
	}
	// Import into a federation whose entities have different names: the
	// coordinator tree places the query instead.
	net2 := simnet.NewSim(nil)
	t.Cleanup(func() { net2.Close() })
	catalog := workload.Catalog(100, 20)
	fed2, err := New(net2, catalog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fed2.Close)
	if err := fed2.AddSource("quotes", simnet.Point{}, StreamRate{TuplesPerSec: 100, BytesPerTuple: 60}); err != nil {
		t.Fatal(err)
	}
	if err := fed2.AddSource("trades", simnet.Point{X: 3}, StreamRate{TuplesPerSec: 100, BytesPerTuple: 40}); err != nil {
		t.Fatal(err)
	}
	if err := fed2.AddEntity("other", simnet.Point{X: 30}, 1, miniFactory); err != nil {
		t.Fatal(err)
	}
	if err := fed2.Start(); err != nil {
		t.Fatal(err)
	}
	added, err := fed2.ImportQueries(data, simnet.Point{X: 10})
	if err != nil {
		t.Fatal(err)
	}
	if added != 1 {
		t.Fatalf("added = %d", added)
	}
	if host, ok := fed2.QueryEntity("q1"); !ok || host != "other" {
		t.Fatalf("q1 on %s/%v", host, ok)
	}
}

func TestImportBadData(t *testing.T) {
	fed, _ := newTestFederation(t, 2)
	if _, err := fed.ImportQueries([]byte("{"), simnet.Point{}); err == nil {
		t.Error("corrupt snapshot accepted")
	}
	if _, err := fed.ImportQueries([]byte(`[{"spec": {"ID":""}, "entity": "e00"}]`), simnet.Point{}); err == nil {
		t.Error("invalid spec accepted")
	}
}
