package core

import (
	"sync"
	"testing"
	"time"

	"sspd/internal/dissemination"
	"sspd/internal/querygraph"
	"sspd/internal/simnet"
	"sspd/internal/stream"
	"sspd/internal/workload"
)

// TestFederationOverTCP runs the complete two-layer pipeline over real
// sockets: dissemination, interest registration, query allocation,
// fragment chaining, migration, and rebalancing — the paper's "deploy
// onto real network environment" exercised in-process.
func TestFederationOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("real sockets")
	}
	net := simnet.NewTCP()
	defer net.Close()
	catalog := workload.Catalog(100, 20)
	fed, err := New(net, catalog, Options{
		Strategy:          dissemination.Locality,
		Fanout:            3,
		FragmentsPerQuery: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fed.Close()
	if err := fed.AddSource("quotes", simnet.Point{},
		StreamRate{TuplesPerSec: 500, BytesPerTuple: 60}); err != nil {
		t.Fatal(err)
	}
	for _, e := range []struct {
		id string
		x  float64
	}{{"tokyo", 10}, {"zurich", 40}, {"nyc", 70}} {
		if err := fed.AddEntity(e.id, simnet.Point{X: e.x}, 2, miniFactory); err != nil {
			t.Fatal(err)
		}
	}
	if err := fed.Start(); err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	counts := map[string]int{}
	specs := []struct {
		id     string
		lo, hi float64
	}{
		{"wide", 0, 1000},
		{"low", 0, 300},
		{"high", 700, 1000},
	}
	for _, q := range specs {
		qid := q.id
		if _, err := fed.SubmitQuery(priceQuery(q.id, q.lo, q.hi),
			simnet.Point{X: 35}, func(stream.Tuple) {
				mu.Lock()
				counts[qid]++
				mu.Unlock()
			}); err != nil {
			t.Fatal(err)
		}
	}
	// TCP has no Quiesce; give registrations a moment to land.
	time.Sleep(300 * time.Millisecond)

	tick := workload.NewTicker(44, 100, 1.3)
	batch := tick.Batch(200)
	want := map[string]int{}
	for _, q := range specs {
		for _, tu := range batch {
			p := tu.Value(1).AsFloat()
			if p >= q.lo && p <= q.hi {
				want[q.id]++
			}
		}
	}
	if err := fed.Publish("quotes", batch); err != nil {
		t.Fatal(err)
	}
	waitFor := func(desc string) {
		deadline := time.Now().Add(10 * time.Second)
		for {
			mu.Lock()
			done := true
			for _, q := range specs {
				if counts[q.id] < want[q.id] {
					done = false
				}
			}
			mu.Unlock()
			if done {
				return
			}
			if time.Now().After(deadline) {
				mu.Lock()
				defer mu.Unlock()
				t.Fatalf("%s: counts=%v want=%v", desc, counts, want)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	waitFor("first publish")
	mu.Lock()
	for _, q := range specs {
		if counts[q.id] != want[q.id] {
			t.Errorf("%s: %d results, want %d", q.id, counts[q.id], want[q.id])
		}
	}
	mu.Unlock()

	// Rebalance over TCP, then publish again: everything still works.
	if _, err := fed.Rebalance(querygraph.HybridRepartitioner{}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond)
	batch2 := tick.Batch(100)
	for _, q := range specs {
		for _, tu := range batch2 {
			p := tu.Value(1).AsFloat()
			if p >= q.lo && p <= q.hi {
				want[q.id]++
			}
		}
	}
	if err := fed.Publish("quotes", batch2); err != nil {
		t.Fatal(err)
	}
	waitFor("post-rebalance publish")

	// Real bytes crossed real sockets.
	if net.Traffic().TotalBytes() == 0 {
		t.Fatal("no TCP traffic metered")
	}
}
