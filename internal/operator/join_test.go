package operator

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"sspd/internal/stream"
)

func tradesSchema(t testing.TB) *stream.Schema {
	t.Helper()
	return stream.MustSchema("trades",
		stream.Field{Name: "symbol", Type: stream.KindString, Card: 100},
		stream.Field{Name: "qty", Type: stream.KindInt, Lo: 0, Hi: 1e6},
	)
}

func trade(seq uint64, symbol string, qty int64) stream.Tuple {
	return stream.NewTuple("trades", seq, time.Unix(int64(seq), 0).UTC(),
		stream.String(symbol), stream.Int(qty))
}

func newTestJoin(t *testing.T, spec stream.WindowSpec) *WindowJoin {
	t.Helper()
	j, err := NewWindowJoin("j", quotesSchema(t), tradesSchema(t), "symbol", "symbol", spec, 3)
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func TestWindowJoinMatches(t *testing.T) {
	j := newTestJoin(t, stream.CountWindow(10))
	if out := j.Process(0, quote(1, "ibm", 90, 1)); out != nil {
		t.Fatalf("join with empty other side emitted %v", out)
	}
	out := j.Process(1, trade(2, "ibm", 500))
	if len(out) != 1 {
		t.Fatalf("matching trade emitted %d outputs", len(out))
	}
	got := out[0]
	// Concatenated left (quote: symbol, price, volume) then right
	// (trade: symbol, qty).
	if len(got.Values) != 5 {
		t.Fatalf("joined arity = %d, want 5", len(got.Values))
	}
	if got.Values[0].AsString() != "ibm" || got.Values[1].AsFloat() != 90 ||
		got.Values[3].AsString() != "ibm" || got.Values[4].AsInt() != 500 {
		t.Fatalf("joined tuple = %v", got)
	}
	if got.Stream != "j" {
		t.Errorf("output stream = %q", got.Stream)
	}
	// Timestamp is the max of the two sides.
	if !got.Ts.Equal(time.Unix(2, 0).UTC()) {
		t.Errorf("output ts = %v", got.Ts)
	}
	if out := j.Process(1, trade(3, "goog", 1)); out != nil {
		t.Fatalf("non-matching trade emitted %v", out)
	}
}

func TestWindowJoinMultipleMatches(t *testing.T) {
	j := newTestJoin(t, stream.CountWindow(10))
	j.Process(0, quote(1, "ibm", 90, 1))
	j.Process(0, quote(2, "ibm", 91, 1))
	out := j.Process(1, trade(3, "ibm", 5))
	if len(out) != 2 {
		t.Fatalf("trade matching 2 quotes emitted %d", len(out))
	}
}

func TestWindowJoinEviction(t *testing.T) {
	j := newTestJoin(t, stream.CountWindow(2))
	j.Process(0, quote(1, "ibm", 1, 1))
	j.Process(0, quote(2, "ibm", 2, 1))
	j.Process(0, quote(3, "msft", 3, 1)) // evicts quote 1
	out := j.Process(1, trade(4, "ibm", 5))
	if len(out) != 1 {
		t.Fatalf("after eviction, matches = %d, want 1", len(out))
	}
	if out[0].Values[1].AsFloat() != 2 {
		t.Fatalf("stale quote joined: %v", out[0])
	}
	if j.WindowLen(0) != 2 {
		t.Errorf("left window len = %d", j.WindowLen(0))
	}
	// All ibm evicted -> no match.
	j.Process(0, quote(5, "goog", 4, 1)) // evicts quote 2 (last ibm)
	if out := j.Process(1, trade(6, "ibm", 5)); out != nil {
		t.Fatalf("evicted key still matched: %v", out)
	}
}

func TestWindowJoinTimeWindow(t *testing.T) {
	j := newTestJoin(t, stream.TimeWindow(5*time.Second))
	j.Process(0, quote(1, "ibm", 1, 1))      // t=1
	j.Process(0, quote(10, "ibm", 2, 1))     // t=10, evicts t=1
	out := j.Process(1, trade(11, "ibm", 5)) // t=11
	if len(out) != 1 {
		t.Fatalf("time-window matches = %d, want 1", len(out))
	}
}

func TestWindowJoinErrors(t *testing.T) {
	q, tr := quotesSchema(t), tradesSchema(t)
	if _, err := NewWindowJoin("j", nil, tr, "symbol", "symbol", stream.CountWindow(1), 1); err == nil {
		t.Error("nil left accepted")
	}
	if _, err := NewWindowJoin("j", q, tr, "nope", "symbol", stream.CountWindow(1), 1); err == nil {
		t.Error("missing left key accepted")
	}
	if _, err := NewWindowJoin("j", q, tr, "symbol", "nope", stream.CountWindow(1), 1); err == nil {
		t.Error("missing right key accepted")
	}
	if _, err := NewWindowJoin("j", q, tr, "price", "symbol", stream.CountWindow(1), 1); err == nil {
		t.Error("mismatched key kinds accepted")
	}
}

func TestWindowJoinOutSchema(t *testing.T) {
	j := newTestJoin(t, stream.CountWindow(1))
	out := j.OutSchema()
	if out.NumFields() != 5 {
		t.Fatalf("out fields = %d", out.NumFields())
	}
	if _, ok := out.FieldIndex("l_price"); !ok {
		t.Error("missing l_price")
	}
	if _, ok := out.FieldIndex("r_qty"); !ok {
		t.Error("missing r_qty")
	}
}

func TestWindowJoinBadPortPanics(t *testing.T) {
	j := newTestJoin(t, stream.CountWindow(1))
	defer func() {
		if recover() == nil {
			t.Fatal("bad port did not panic")
		}
	}()
	j.Process(2, quote(1, "a", 1, 1))
}

func TestWindowJoinStateSize(t *testing.T) {
	j := newTestJoin(t, stream.CountWindow(10))
	if j.StateSize() != 0 {
		t.Error("fresh join has state")
	}
	q := quote(1, "ibm", 1, 1)
	j.Process(0, q)
	if got := j.StateSize(); got != q.Size() {
		t.Errorf("state = %d, want %d", got, q.Size())
	}
	if j.WindowLen(5) != 0 {
		t.Error("bad port WindowLen should be 0")
	}
}

// Property: the join's index and window always agree — joining after any
// mix of inserts yields exactly the number of same-key tuples currently
// in the opposite window.
func TestWindowJoinIndexConsistencyProperty(t *testing.T) {
	syms := []string{"a", "b", "c"}
	f := func(ops []uint8) bool {
		j, err := NewWindowJoin("j", quotesSchema(t), tradesSchema(t),
			"symbol", "symbol", stream.CountWindow(4), 1)
		if err != nil {
			return false
		}
		// Replay inserts on the left; count per-symbol live quotes.
		var live []string
		for i, op := range ops {
			sym := syms[int(op)%len(syms)]
			j.Process(0, quote(uint64(i), sym, 1, 1))
			live = append(live, sym)
			if len(live) > 4 {
				live = live[1:]
			}
		}
		// Probe with each symbol and verify match counts.
		for _, sym := range syms {
			want := 0
			for _, s := range live {
				if s == sym {
					want++
				}
			}
			out := j.Process(1, trade(1000, sym, 1))
			if len(out) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultJoinWindow(t *testing.T) {
	spec := DefaultJoinWindow()
	if spec.Kind != stream.WindowByTime || spec.Duration != time.Minute {
		t.Errorf("default join window = %+v", spec)
	}
}

func BenchmarkWindowJoinProbe(b *testing.B) {
	j, err := NewWindowJoin("j", stream.MustSchema("quotes",
		stream.Field{Name: "symbol", Type: stream.KindString, Card: 100},
		stream.Field{Name: "price", Type: stream.KindFloat, Lo: 0, Hi: 1000},
		stream.Field{Name: "volume", Type: stream.KindInt},
	), stream.MustSchema("trades",
		stream.Field{Name: "symbol", Type: stream.KindString, Card: 100},
		stream.Field{Name: "qty", Type: stream.KindInt},
	), "symbol", "symbol", stream.CountWindow(256), 1)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 256; i++ {
		j.Process(0, quote(uint64(i), fmt.Sprintf("S%02d", i%100), 1, 1))
	}
	probe := trade(999, "S50", 5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j.Process(1, probe)
	}
}
