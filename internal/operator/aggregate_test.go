package operator

import (
	"math"
	"testing"
	"testing/quick"

	"sspd/internal/stream"
)

func newAgg(t *testing.T, fn AggFunc, group string, spec stream.WindowSpec) *Aggregate {
	t.Helper()
	a, err := NewAggregate("agg", quotesSchema(t), fn, "price", group, spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func aggValue(t *testing.T, outs []stream.Tuple) (string, float64) {
	t.Helper()
	if len(outs) != 1 {
		t.Fatalf("aggregate emitted %d outputs, want 1", len(outs))
	}
	return outs[0].Values[0].AsString(), outs[0].Values[1].AsFloat()
}

func TestAggregateSum(t *testing.T) {
	a := newAgg(t, AggSum, "", stream.CountWindow(3))
	a.Process(0, quote(1, "x", 10, 1))
	a.Process(0, quote(2, "x", 20, 1))
	_, v := aggValue(t, a.Process(0, quote(3, "x", 30, 1)))
	if v != 60 {
		t.Fatalf("sum = %v, want 60", v)
	}
	// Window slides: 10 evicted.
	_, v = aggValue(t, a.Process(0, quote(4, "x", 40, 1)))
	if v != 90 {
		t.Fatalf("sliding sum = %v, want 90", v)
	}
}

func TestAggregateCountAvg(t *testing.T) {
	c := newAgg(t, AggCount, "", stream.CountWindow(10))
	_, v := aggValue(t, c.Process(0, quote(1, "x", 5, 1)))
	if v != 1 {
		t.Fatalf("count = %v", v)
	}
	_, v = aggValue(t, c.Process(0, quote(2, "x", 5, 1)))
	if v != 2 {
		t.Fatalf("count = %v", v)
	}

	avg := newAgg(t, AggAvg, "", stream.CountWindow(10))
	avg.Process(0, quote(1, "x", 10, 1))
	_, v = aggValue(t, avg.Process(0, quote(2, "x", 20, 1)))
	if v != 15 {
		t.Fatalf("avg = %v, want 15", v)
	}
}

func TestAggregateMinMaxScan(t *testing.T) {
	mn := newAgg(t, AggMin, "", stream.CountWindow(2))
	mn.Process(0, quote(1, "x", 10, 1))
	_, v := aggValue(t, mn.Process(0, quote(2, "x", 5, 1)))
	if v != 5 {
		t.Fatalf("min = %v, want 5", v)
	}
	// 10 evicted; min recomputed over window = {5, 7}.
	_, v = aggValue(t, mn.Process(0, quote(3, "x", 7, 1)))
	if v != 5 {
		t.Fatalf("min after evict = %v, want 5", v)
	}
	mx := newAgg(t, AggMax, "", stream.CountWindow(2))
	mx.Process(0, quote(1, "x", 10, 1))
	mx.Process(0, quote(2, "x", 5, 1))
	// 10 evicted; max over {5, 3} = 5.
	_, v = aggValue(t, mx.Process(0, quote(3, "x", 3, 1)))
	if v != 5 {
		t.Fatalf("max after evict = %v, want 5", v)
	}
}

func TestAggregateGrouped(t *testing.T) {
	a := newAgg(t, AggSum, "symbol", stream.CountWindow(10))
	a.Process(0, quote(1, "ibm", 10, 1))
	a.Process(0, quote(2, "msft", 100, 1))
	g, v := aggValue(t, a.Process(0, quote(3, "ibm", 20, 1)))
	if g != "ibm" || v != 30 {
		t.Fatalf("grouped sum = %q/%v, want ibm/30", g, v)
	}
	if a.Groups() != 2 {
		t.Errorf("groups = %d, want 2", a.Groups())
	}
	// Group state is deleted when its last tuple leaves the window.
	small := newAgg(t, AggSum, "symbol", stream.CountWindow(1))
	small.Process(0, quote(1, "ibm", 10, 1))
	small.Process(0, quote(2, "msft", 5, 1))
	if small.Groups() != 1 {
		t.Errorf("groups after eviction = %d, want 1", small.Groups())
	}
	if small.WindowLen() != 1 {
		t.Errorf("window len = %d", small.WindowLen())
	}
}

func TestAggregateErrors(t *testing.T) {
	s := quotesSchema(t)
	if _, err := NewAggregate("a", nil, AggSum, "price", "", stream.CountWindow(1), 1); err == nil {
		t.Error("nil schema accepted")
	}
	if _, err := NewAggregate("a", s, AggSum, "missing", "", stream.CountWindow(1), 1); err == nil {
		t.Error("missing value field accepted")
	}
	if _, err := NewAggregate("a", s, AggSum, "symbol", "", stream.CountWindow(1), 1); err == nil {
		t.Error("string value field accepted")
	}
	if _, err := NewAggregate("a", s, AggSum, "price", "missing", stream.CountWindow(1), 1); err == nil {
		t.Error("missing group field accepted")
	}
	// Count ignores the value field entirely.
	if _, err := NewAggregate("a", s, AggCount, "", "", stream.CountWindow(1), 1); err != nil {
		t.Errorf("count with empty value field rejected: %v", err)
	}
}

func TestAggregateBadPortPanics(t *testing.T) {
	a := newAgg(t, AggSum, "", stream.CountWindow(1))
	defer func() {
		if recover() == nil {
			t.Fatal("bad port did not panic")
		}
	}()
	a.Process(1, quote(1, "x", 1, 1))
}

func TestAggFuncString(t *testing.T) {
	names := map[AggFunc]string{
		AggCount: "count", AggSum: "sum", AggAvg: "avg",
		AggMin: "min", AggMax: "max", AggFunc(99): "unknown",
	}
	for fn, want := range names {
		if got := fn.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", fn, got, want)
		}
	}
}

// Property: windowed sum always equals the sum of the last N inputs.
func TestAggregateSumWindowProperty(t *testing.T) {
	f := func(prices []uint8, winSize uint8) bool {
		n := int(winSize%8) + 1
		a, err := NewAggregate("agg", quotesSchema(t), AggSum, "price", "",
			stream.CountWindow(n), 1)
		if err != nil {
			return false
		}
		var last []float64
		var got float64
		for i, p := range prices {
			out := a.Process(0, quote(uint64(i), "x", float64(p), 1))
			last = append(last, float64(p))
			if len(last) > n {
				last = last[1:]
			}
			got = out[0].Values[1].AsFloat()
		}
		if len(prices) == 0 {
			return true
		}
		want := 0.0
		for _, v := range last {
			want += v
		}
		return math.Abs(got-want) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: grouped count per group equals occurrences within the window.
func TestAggregateGroupedCountProperty(t *testing.T) {
	syms := []string{"a", "b"}
	f := func(picks []uint8) bool {
		a, err := NewAggregate("agg", quotesSchema(t), AggCount, "", "symbol",
			stream.CountWindow(5), 1)
		if err != nil {
			return false
		}
		var window []string
		for i, p := range picks {
			sym := syms[int(p)%2]
			out := a.Process(0, quote(uint64(i), sym, 1, 1))
			window = append(window, sym)
			if len(window) > 5 {
				window = window[1:]
			}
			want := 0
			for _, s := range window {
				if s == sym {
					want++
				}
			}
			if out[0].Values[1].AsFloat() != float64(want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
