// Package operator implements the continuous-query operator library used
// by every processing engine in sspd: selection (filter), projection,
// mapping, windowed symmetric hash join, windowed aggregation, and union.
//
// Operators are single-threaded building blocks: an engine (or a query
// fragment pinned to one processor) owns each instance and drives it by
// calling Process. Every operator tracks running statistics — observed
// selectivity, input/output counts, and per-tuple cost — because the
// paper's adaptive components (operator placement, Section 4.1, and the
// Adaptation Module's operator re-ordering, Section 4.2) make their
// decisions from exactly these numbers.
package operator

import (
	"fmt"
	"sync"

	"sspd/internal/stream"
)

// Operator is one continuous-query operator. Process consumes a tuple on
// an input port (0 <= port < Arity) and returns the resulting output
// tuples (often zero or one). Implementations are not safe for concurrent
// use; engines serialize calls per operator.
type Operator interface {
	// Name returns the operator's unique name within its query.
	Name() string
	// Arity returns the number of input ports (1 for unary operators,
	// 2 for joins, N for union).
	Arity() int
	// Process consumes one tuple and returns any outputs.
	Process(port int, t stream.Tuple) []stream.Tuple
	// OutSchema describes the tuples Process emits.
	OutSchema() *stream.Schema
	// Cost returns the operator's abstract per-tuple processing cost.
	// The intra-entity placement scheme multiplies it by the input rate
	// to estimate processor load.
	Cost() float64
	// Stats exposes the operator's running statistics.
	Stats() *Stats
}

// Stats holds an operator's observed runtime statistics. All methods are
// safe for concurrent reads while one goroutine writes.
type Stats struct {
	mu  sync.Mutex
	in  int64
	out int64
	// sel tracks the smoothed output/input ratio. For filters this is
	// the classic selectivity in [0,1]; joins may exceed 1.
	sel *selEWMA
}

// selEWMA is a tiny non-locking EWMA; Stats.mu guards it.
type selEWMA struct {
	alpha float64
	value float64
	init  bool
}

func newStats() *Stats {
	return &Stats{sel: &selEWMA{alpha: 0.1}}
}

// record folds one Process call's fan-out into the statistics.
func (s *Stats) record(outputs int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.in++
	s.out += int64(outputs)
	sample := float64(outputs)
	if !s.sel.init {
		s.sel.value = sample
		s.sel.init = true
	} else {
		s.sel.value = s.sel.alpha*sample + (1-s.sel.alpha)*s.sel.value
	}
}

// RecordBatch folds one vectorized kernel invocation — in tuples
// consumed, out survivors — into the statistics with a single lock
// acquisition. The selectivity EWMA receives the batch's out/in ratio
// as one sample, so adaptive ordering sees the same smoothed signal it
// gets from per-tuple record calls, at batch cost.
func (s *Stats) RecordBatch(in, out int) {
	if in <= 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.in += int64(in)
	s.out += int64(out)
	sample := float64(out) / float64(in)
	if !s.sel.init {
		s.sel.value = sample
		s.sel.init = true
	} else {
		s.sel.value = s.sel.alpha*sample + (1-s.sel.alpha)*s.sel.value
	}
}

// In returns the number of tuples consumed.
func (s *Stats) In() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.in
}

// Out returns the number of tuples produced.
func (s *Stats) Out() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.out
}

// Selectivity returns the smoothed outputs-per-input estimate. Before any
// input it returns 1 (the conservative prior the Adaptation Module uses).
func (s *Stats) Selectivity() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.sel.init {
		return 1
	}
	return s.sel.value
}

// CumulativeSelectivity returns total out/in, or 1 before any input.
func (s *Stats) CumulativeSelectivity() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.in == 0 {
		return 1
	}
	return float64(s.out) / float64(s.in)
}

// base carries the fields every operator shares.
type base struct {
	name   string
	cost   float64
	out    *stream.Schema
	stats  *Stats
	arity  int
	closed bool
}

func newBase(name string, arity int, cost float64, out *stream.Schema) base {
	if cost <= 0 {
		cost = 1
	}
	return base{name: name, arity: arity, cost: cost, out: out, stats: newStats()}
}

// Name implements Operator.
func (b *base) Name() string { return b.name }

// Arity implements Operator.
func (b *base) Arity() int { return b.arity }

// OutSchema implements Operator.
func (b *base) OutSchema() *stream.Schema { return b.out }

// Cost implements Operator.
func (b *base) Cost() float64 { return b.cost }

// Stats implements Operator.
func (b *base) Stats() *Stats { return b.stats }

func badPort(op string, port, arity int) string {
	return fmt.Sprintf("operator %s: port %d out of range [0,%d)", op, port, arity)
}
