package operator

import (
	"testing"
	"testing/quick"

	"sspd/internal/stream"
)

func TestDistinctSuppressesDuplicates(t *testing.T) {
	s := quotesSchema(t)
	d, err := NewDistinct("d", s, "symbol", stream.CountWindow(3), 1)
	if err != nil {
		t.Fatal(err)
	}
	if out := d.Process(0, quote(1, "ibm", 1, 1)); len(out) != 1 {
		t.Fatal("first occurrence suppressed")
	}
	if out := d.Process(0, quote(2, "ibm", 2, 1)); out != nil {
		t.Fatal("duplicate passed")
	}
	if out := d.Process(0, quote(3, "msft", 3, 1)); len(out) != 1 {
		t.Fatal("new key suppressed")
	}
	// Window slides: pushing a 4th tuple evicts seq 1 (count window 3);
	// "ibm" still present via seq 2 -> suppressed.
	if out := d.Process(0, quote(4, "ibm", 4, 1)); out != nil {
		t.Fatal("still-windowed duplicate passed")
	}
	// Now 2 and 3 evict; ibm remains only via seq 4 -> goog is new.
	d.Process(0, quote(5, "goog", 5, 1))
	d.Process(0, quote(6, "aapl", 6, 1))
	// ibm's last occurrence (seq 4) is now evicted -> passes again.
	if out := d.Process(0, quote(7, "ibm", 7, 1)); len(out) != 1 {
		t.Fatal("re-arrival after eviction suppressed")
	}
}

func TestDistinctErrors(t *testing.T) {
	s := quotesSchema(t)
	if _, err := NewDistinct("d", nil, "symbol", stream.CountWindow(1), 1); err == nil {
		t.Error("nil schema accepted")
	}
	if _, err := NewDistinct("d", s, "nope", stream.CountWindow(1), 1); err == nil {
		t.Error("missing field accepted")
	}
	d, _ := NewDistinct("d", s, "symbol", stream.CountWindow(1), 1)
	defer func() {
		if recover() == nil {
			t.Fatal("bad port did not panic")
		}
	}()
	d.Process(1, quote(1, "a", 1, 1))
}

// Property: a tuple passes iff its key is absent from the previous
// capacity-1 tuples (the new tuple enters the window first, evicting the
// oldest, before the duplicate check).
func TestDistinctWindowProperty(t *testing.T) {
	s := quotesSchema(t)
	syms := []string{"a", "b", "c"}
	const capacity = 4
	f := func(picks []uint8) bool {
		d, err := NewDistinct("d", s, "symbol", stream.CountWindow(capacity), 1)
		if err != nil {
			return false
		}
		var prev []string // all prior symbols, newest last
		for i, p := range picks {
			sym := syms[int(p)%len(syms)]
			out := d.Process(0, quote(uint64(i), sym, 1, 1))
			inWindow := false
			start := len(prev) - (capacity - 1)
			if start < 0 {
				start = 0
			}
			for _, w := range prev[start:] {
				if w == sym {
					inWindow = true
					break
				}
			}
			if inWindow && len(out) != 0 {
				return false
			}
			if !inWindow && len(out) != 1 {
				return false
			}
			prev = append(prev, sym)
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTopKRanksAndEmits(t *testing.T) {
	s := quotesSchema(t)
	tk, err := NewTopK("top", s, 2, "price", "symbol", stream.CountWindow(10), 1)
	if err != nil {
		t.Fatal(err)
	}
	// First tuple is trivially rank 1.
	out := tk.Process(0, quote(1, "ibm", 100, 1))
	if len(out) != 1 || out[0].Values[2].AsInt() != 1 {
		t.Fatalf("first = %v", out)
	}
	// Higher price takes rank 1.
	out = tk.Process(0, quote(2, "msft", 200, 1))
	if len(out) != 1 || out[0].Values[2].AsInt() != 1 || out[0].Values[0].AsString() != "msft" {
		t.Fatalf("msft = %v", out)
	}
	// ibm is now rank 2 (still top-2).
	out = tk.Process(0, quote(3, "ibm", 90, 1))
	if len(out) != 1 || out[0].Values[2].AsInt() != 2 {
		t.Fatalf("ibm rank = %v", out)
	}
	// ibm's max within the window is still 100.
	if out[0].Values[1].AsFloat() != 100 {
		t.Fatalf("ibm max = %v", out[0].Values[1])
	}
	// A third key below the top 2 emits nothing.
	if out := tk.Process(0, quote(4, "goog", 50, 1)); out != nil {
		t.Fatalf("out-of-topk emitted %v", out)
	}
	if tk.WindowLen() != 4 {
		t.Errorf("window len = %d", tk.WindowLen())
	}
	// Output stream and schema.
	if tk.OutSchema().NumFields() != 3 {
		t.Error("output schema")
	}
}

func TestTopKEviction(t *testing.T) {
	s := quotesSchema(t)
	tk, err := NewTopK("top", s, 1, "price", "symbol", stream.CountWindow(2), 1)
	if err != nil {
		t.Fatal(err)
	}
	tk.Process(0, quote(1, "big", 1000, 1))
	tk.Process(0, quote(2, "mid", 500, 1))
	// big's quote evicts; mid becomes rank 1 as soon as small arrives.
	out := tk.Process(0, quote(3, "small", 10, 1))
	if out != nil {
		t.Fatalf("small emitted %v", out)
	}
	out = tk.Process(0, quote(4, "mid", 400, 1))
	if len(out) != 1 || out[0].Values[0].AsString() != "mid" || out[0].Values[2].AsInt() != 1 {
		t.Fatalf("mid after eviction = %v", out)
	}
}

func TestTopKErrors(t *testing.T) {
	s := quotesSchema(t)
	cases := []struct {
		name string
		run  func() error
	}{
		{"nil schema", func() error {
			_, err := NewTopK("t", nil, 1, "price", "symbol", stream.CountWindow(1), 1)
			return err
		}},
		{"k=0", func() error {
			_, err := NewTopK("t", s, 0, "price", "symbol", stream.CountWindow(1), 1)
			return err
		}},
		{"missing value", func() error {
			_, err := NewTopK("t", s, 1, "nope", "symbol", stream.CountWindow(1), 1)
			return err
		}},
		{"string value", func() error {
			_, err := NewTopK("t", s, 1, "symbol", "symbol", stream.CountWindow(1), 1)
			return err
		}},
		{"missing key", func() error {
			_, err := NewTopK("t", s, 1, "price", "nope", stream.CountWindow(1), 1)
			return err
		}},
	}
	for _, c := range cases {
		if c.run() == nil {
			t.Errorf("%s accepted", c.name)
		}
	}
	tk, _ := NewTopK("t", s, 1, "price", "symbol", stream.CountWindow(1), 1)
	defer func() {
		if recover() == nil {
			t.Fatal("bad port did not panic")
		}
	}()
	tk.Process(1, quote(1, "a", 1, 1))
}
