package operator

import (
	"math"
	"testing"
	"time"

	"sspd/internal/stream"
)

func quotesSchema(t testing.TB) *stream.Schema {
	t.Helper()
	return stream.MustSchema("quotes",
		stream.Field{Name: "symbol", Type: stream.KindString, Card: 100},
		stream.Field{Name: "price", Type: stream.KindFloat, Lo: 0, Hi: 1000},
		stream.Field{Name: "volume", Type: stream.KindInt, Lo: 0, Hi: 1e6},
	)
}

func quote(seq uint64, symbol string, price float64, volume int64) stream.Tuple {
	return stream.NewTuple("quotes", seq, time.Unix(int64(seq), 0).UTC(),
		stream.String(symbol), stream.Float(price), stream.Int(volume))
}

func TestFilterBasics(t *testing.T) {
	s := quotesSchema(t)
	f, err := NewFilter("f", s, func(tu stream.Tuple) bool {
		return tu.Value(1).AsFloat() > 50
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if f.Name() != "f" || f.Arity() != 1 || f.Cost() != 2 || f.OutSchema() != s {
		t.Errorf("accessor mismatch: %s/%d/%v", f.Name(), f.Arity(), f.Cost())
	}
	out := f.Process(0, quote(1, "ibm", 90, 1))
	if len(out) != 1 {
		t.Fatalf("passing tuple produced %d outputs", len(out))
	}
	if out := f.Process(0, quote(2, "ibm", 10, 1)); out != nil {
		t.Fatalf("failing tuple produced %v", out)
	}
	if f.Stats().In() != 2 || f.Stats().Out() != 1 {
		t.Errorf("stats in/out = %d/%d", f.Stats().In(), f.Stats().Out())
	}
	if got := f.Stats().CumulativeSelectivity(); got != 0.5 {
		t.Errorf("cumulative selectivity = %v", got)
	}
}

func TestFilterErrors(t *testing.T) {
	s := quotesSchema(t)
	if _, err := NewFilter("f", s, nil, 1); err == nil {
		t.Error("nil predicate accepted")
	}
	if _, err := NewFilter("f", nil, func(stream.Tuple) bool { return true }, 1); err == nil {
		t.Error("nil schema accepted")
	}
}

func TestFilterBadPortPanics(t *testing.T) {
	s := quotesSchema(t)
	f, _ := NewFilter("f", s, func(stream.Tuple) bool { return true }, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("bad port did not panic")
		}
	}()
	f.Process(1, quote(1, "a", 1, 1))
}

func TestInterestFilter(t *testing.T) {
	s := quotesSchema(t)
	in := stream.NewInterest("quotes").WithRange("price", 0, 50)
	f, err := NewInterestFilter("f", s, in, 1)
	if err != nil {
		t.Fatal(err)
	}
	if out := f.Process(0, quote(1, "a", 25, 1)); len(out) != 1 {
		t.Error("interest match filtered out")
	}
	if out := f.Process(0, quote(2, "a", 75, 1)); out != nil {
		t.Error("interest non-match passed")
	}
}

func TestProject(t *testing.T) {
	s := quotesSchema(t)
	p, err := NewProject("p", s, 1, "price", "symbol")
	if err != nil {
		t.Fatal(err)
	}
	out := p.Process(0, quote(1, "ibm", 90, 5))
	if len(out) != 1 {
		t.Fatalf("outputs = %d", len(out))
	}
	got := out[0]
	if len(got.Values) != 2 ||
		got.Values[0].AsFloat() != 90 || got.Values[1].AsString() != "ibm" {
		t.Fatalf("projected tuple = %v", got)
	}
	// Output stream keeps the input name so interests still apply.
	if p.OutSchema().Name() != "quotes" {
		t.Errorf("projected stream name = %q", p.OutSchema().Name())
	}
	if _, err := NewProject("p", s, 1, "missing"); err == nil {
		t.Error("projecting missing field accepted")
	}
	if _, err := NewProject("p", nil, 1, "price"); err == nil {
		t.Error("nil schema accepted")
	}
}

func TestMap(t *testing.T) {
	s := quotesSchema(t)
	double, err := NewMap("m", s, func(tu stream.Tuple) []stream.Tuple {
		a := tu.Clone()
		b := tu.Clone()
		return []stream.Tuple{a, b}
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	out := double.Process(0, quote(1, "a", 1, 1))
	if len(out) != 2 {
		t.Fatalf("map fan-out = %d, want 2", len(out))
	}
	if got := double.Stats().Selectivity(); got != 2 {
		t.Errorf("selectivity = %v, want 2", got)
	}
	if _, err := NewMap("m", s, nil, 1); err == nil {
		t.Error("nil fn accepted")
	}
	if _, err := NewMap("m", nil, func(stream.Tuple) []stream.Tuple { return nil }, 1); err == nil {
		t.Error("nil schema accepted")
	}
}

func TestUnion(t *testing.T) {
	s := quotesSchema(t)
	u, err := NewUnion("u", s, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if u.Arity() != 3 {
		t.Fatalf("arity = %d", u.Arity())
	}
	for port := 0; port < 3; port++ {
		if out := u.Process(port, quote(uint64(port), "a", 1, 1)); len(out) != 1 {
			t.Fatalf("port %d produced %d outputs", port, len(out))
		}
	}
	if _, err := NewUnion("u", s, 0, 1); err == nil {
		t.Error("zero-input union accepted")
	}
	if _, err := NewUnion("u", nil, 1, 1); err == nil {
		t.Error("nil schema accepted")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("union bad port did not panic")
			}
		}()
		u.Process(3, quote(1, "a", 1, 1))
	}()
}

func TestStatsDefaults(t *testing.T) {
	st := newStats()
	if st.Selectivity() != 1 {
		t.Errorf("prior selectivity = %v, want 1", st.Selectivity())
	}
	if st.CumulativeSelectivity() != 1 {
		t.Errorf("prior cumulative = %v, want 1", st.CumulativeSelectivity())
	}
}

func TestStatsEWMATracksShift(t *testing.T) {
	st := newStats()
	for i := 0; i < 200; i++ {
		st.record(1)
	}
	if got := st.Selectivity(); math.Abs(got-1) > 0.01 {
		t.Fatalf("selectivity after all-pass = %v", got)
	}
	for i := 0; i < 200; i++ {
		st.record(0)
	}
	if got := st.Selectivity(); got > 0.01 {
		t.Fatalf("selectivity after shift = %v, want ~0", got)
	}
}

func TestDefaultCost(t *testing.T) {
	s := quotesSchema(t)
	f, _ := NewFilter("f", s, func(stream.Tuple) bool { return true }, -5)
	if f.Cost() != 1 {
		t.Errorf("defaulted cost = %v, want 1", f.Cost())
	}
}
