package operator

import (
	"fmt"
	"math"

	"sspd/internal/stream"
)

// AggFunc enumerates the supported windowed aggregate functions.
type AggFunc uint8

// Aggregate functions.
const (
	AggCount AggFunc = iota
	AggSum
	AggAvg
	AggMin
	AggMax
)

// String returns the lowercase function name.
func (f AggFunc) String() string {
	switch f {
	case AggCount:
		return "count"
	case AggSum:
		return "sum"
	case AggAvg:
		return "avg"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	default:
		return "unknown"
	}
}

// Aggregate computes a windowed aggregate of one numeric field, grouped
// by an optional key field. For every input tuple it emits the updated
// aggregate value of the input's group — the eager re-evaluation model
// common to continuous queries over sliding windows.
//
// Output schema: (group:string, value:float) on a stream named after the
// operator. When no group field is set, group is "".
type Aggregate struct {
	base
	fn       AggFunc
	valueIdx int
	groupIdx int // -1 when ungrouped
	win      *stream.Window
	groups   map[string]*aggState
	scratch  []stream.Tuple
}

type aggState struct {
	count int64
	sum   float64
}

// NewAggregate builds a windowed aggregate. groupField may be empty for a
// global aggregate. valueField is ignored for AggCount (pass any field).
func NewAggregate(name string, in *stream.Schema, fn AggFunc, valueField, groupField string,
	spec stream.WindowSpec, cost float64) (*Aggregate, error) {
	if in == nil {
		return nil, fmt.Errorf("operator %s: nil input schema", name)
	}
	vi := 0
	if fn != AggCount {
		i, ok := in.FieldIndex(valueField)
		if !ok {
			return nil, fmt.Errorf("operator %s: schema %s has no field %q", name, in.Name(), valueField)
		}
		if in.Field(i).Type == stream.KindString {
			return nil, fmt.Errorf("operator %s: cannot aggregate string field %q", name, valueField)
		}
		vi = i
	}
	gi := -1
	if groupField != "" {
		i, ok := in.FieldIndex(groupField)
		if !ok {
			return nil, fmt.Errorf("operator %s: schema %s has no group field %q", name, in.Name(), groupField)
		}
		gi = i
	}
	out, err := stream.NewSchema(name,
		stream.Field{Name: "group", Type: stream.KindString},
		stream.Field{Name: "value", Type: stream.KindFloat},
	)
	if err != nil {
		return nil, err
	}
	return &Aggregate{
		base:     newBase(name, 1, cost, out),
		fn:       fn,
		valueIdx: vi,
		groupIdx: gi,
		win:      stream.NewWindow(spec),
		groups:   make(map[string]*aggState),
	}, nil
}

// Process implements Operator.
func (a *Aggregate) Process(port int, t stream.Tuple) []stream.Tuple {
	if port != 0 {
		panic(badPort(a.name, port, 1))
	}
	a.scratch = a.win.PushCollect(t, a.scratch[:0])
	for _, old := range a.scratch {
		a.remove(old)
	}
	a.add(t)

	group := a.groupOf(t)
	val, ok := a.valueOf(group)
	if !ok {
		a.stats.record(0)
		return nil
	}
	out := stream.Tuple{
		Stream: a.name,
		Seq:    t.Seq,
		Ts:     t.Ts,
		Values: []stream.Value{stream.String(group), stream.Float(val)},
	}
	a.stats.record(1)
	return []stream.Tuple{out}
}

func (a *Aggregate) groupOf(t stream.Tuple) string {
	if a.groupIdx < 0 {
		return ""
	}
	return t.Value(a.groupIdx).String()
}

func (a *Aggregate) add(t stream.Tuple) {
	g := a.groupOf(t)
	st := a.groups[g]
	if st == nil {
		st = &aggState{}
		a.groups[g] = st
	}
	st.count++
	st.sum += t.Value(a.valueIdx).AsFloat()
}

func (a *Aggregate) remove(t stream.Tuple) {
	g := a.groupOf(t)
	st := a.groups[g]
	if st == nil {
		return
	}
	st.count--
	st.sum -= t.Value(a.valueIdx).AsFloat()
	if st.count <= 0 {
		delete(a.groups, g)
	}
}

// valueOf computes the current aggregate for a group. Min and max are not
// maintainable incrementally under eviction, so they scan the window —
// acceptable because windows bound state.
func (a *Aggregate) valueOf(group string) (float64, bool) {
	st := a.groups[group]
	if st == nil || st.count == 0 {
		return 0, false
	}
	switch a.fn {
	case AggCount:
		return float64(st.count), true
	case AggSum:
		return st.sum, true
	case AggAvg:
		return st.sum / float64(st.count), true
	case AggMin, AggMax:
		best := math.Inf(1)
		if a.fn == AggMax {
			best = math.Inf(-1)
		}
		found := false
		a.win.Each(func(t stream.Tuple) bool {
			if a.groupOf(t) != group {
				return true
			}
			v := t.Value(a.valueIdx).AsFloat()
			if a.fn == AggMin && v < best || a.fn == AggMax && v > best {
				best = v
			}
			found = true
			return true
		})
		return best, found
	default:
		return 0, false
	}
}

// WindowLen reports the number of tuples in the aggregate's window.
func (a *Aggregate) WindowLen() int { return a.win.Len() }

// Groups reports the number of active groups.
func (a *Aggregate) Groups() int { return len(a.groups) }
