package operator

import (
	"encoding/binary"
	"fmt"
	"math"

	"sspd/internal/stream"
)

// Stateful is the optional capability behind live query migration
// (DESIGN.md §10): an operator that can serialize its runtime state at
// the source entity and rebuild it at the destination. Snapshots embed
// the operator's Stats so learned selectivities survive a move (the
// Adaptation Module's re-ordering decisions keep their history), and
// window contents are restored by replaying the snapshotted tuples
// through the operator's own insertion path, so every derived structure
// (group accumulators, join hash indexes, distinct counts) is rebuilt
// consistently.
//
// Snapshot and Restore follow the same single-threaded contract as
// Process: the owning engine serializes them with tuple processing.
type Stateful interface {
	// SnapshotState serializes the operator's runtime state.
	SnapshotState() []byte
	// RestoreState replaces the operator's runtime state with a
	// previously snapshotted one.
	RestoreState(data []byte) error
	// StateBytes estimates the serialized state size without
	// serializing — the cost term of the migration hysteresis check.
	StateBytes() int
}

// statsLen is the fixed encoded size of one Stats block.
const statsLen = 8 + 8 + 8 + 1

// ExportStats returns the raw statistics for state snapshots.
func (s *Stats) ExportStats() (in, out int64, sel float64, init bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.in, s.out, s.sel.value, s.sel.init
}

// ImportStats overwrites the statistics from a snapshot.
func (s *Stats) ImportStats(in, out int64, sel float64, init bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.in, s.out = in, out
	s.sel.value, s.sel.init = sel, init
}

func appendStats(dst []byte, s *Stats) []byte {
	in, out, sel, init := s.ExportStats()
	dst = binary.LittleEndian.AppendUint64(dst, uint64(in))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(out))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(sel))
	if init {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	return dst
}

func decodeStats(buf []byte, s *Stats) (int, error) {
	if len(buf) < statsLen {
		return 0, fmt.Errorf("operator: truncated stats block (%d bytes)", len(buf))
	}
	in := int64(binary.LittleEndian.Uint64(buf))
	out := int64(binary.LittleEndian.Uint64(buf[8:]))
	sel := math.Float64frombits(binary.LittleEndian.Uint64(buf[16:]))
	s.ImportStats(in, out, sel, buf[24] == 1)
	return statsLen, nil
}

// appendWindow serializes a window's contents oldest→newest as a batch.
func appendWindow(dst []byte, w *stream.Window) []byte {
	b := make(stream.Batch, 0, w.Len())
	w.Each(func(t stream.Tuple) bool {
		b = append(b, t)
		return true
	})
	return stream.AppendBatch(dst, b)
}

// windowBytes sums the wire sizes of a window's tuples.
func windowBytes(w *stream.Window) int {
	n := 4 // batch count prefix
	w.Each(func(t stream.Tuple) bool {
		n += t.Size()
		return true
	})
	return n
}

// Compile-time capability checks: every stateful operator in the
// library implements Stateful.
var (
	_ Stateful = (*Filter)(nil)
	_ Stateful = (*Aggregate)(nil)
	_ Stateful = (*WindowJoin)(nil)
	_ Stateful = (*Distinct)(nil)
	_ Stateful = (*TopK)(nil)
)

// SnapshotState implements Stateful. A filter has no window; its state
// is the learned selectivity estimate.
func (f *Filter) SnapshotState() []byte { return appendStats(nil, f.stats) }

// RestoreState implements Stateful.
func (f *Filter) RestoreState(data []byte) error {
	_, err := decodeStats(data, f.stats)
	return err
}

// StateBytes implements Stateful.
func (f *Filter) StateBytes() int { return statsLen }

// SnapshotState implements Stateful: stats plus the window contents.
func (a *Aggregate) SnapshotState() []byte {
	return appendWindow(appendStats(nil, a.stats), a.win)
}

// RestoreState implements Stateful: the window is replayed through the
// aggregate's own add path, rebuilding the group accumulators.
func (a *Aggregate) RestoreState(data []byte) error {
	n, err := decodeStats(data, a.stats)
	if err != nil {
		return err
	}
	b, _, err := stream.DecodeBatch(data[n:])
	if err != nil {
		return err
	}
	a.win.Clear()
	a.groups = make(map[string]*aggState)
	for _, t := range b {
		a.scratch = a.win.PushCollect(t, a.scratch[:0])
		for _, old := range a.scratch {
			a.remove(old)
		}
		a.add(t)
	}
	return nil
}

// StateBytes implements Stateful.
func (a *Aggregate) StateBytes() int { return statsLen + windowBytes(a.win) }

// SnapshotState implements Stateful: stats plus both side windows, in
// port order.
func (j *WindowJoin) SnapshotState() []byte {
	dst := appendStats(nil, j.stats)
	dst = appendWindow(dst, j.sides[0].win)
	return appendWindow(dst, j.sides[1].win)
}

// RestoreState implements Stateful: each side's window is re-inserted in
// order, rebuilding the hash indexes.
func (j *WindowJoin) RestoreState(data []byte) error {
	n, err := decodeStats(data, j.stats)
	if err != nil {
		return err
	}
	for port := 0; port < 2; port++ {
		b, used, err := stream.DecodeBatch(data[n:])
		if err != nil {
			return fmt.Errorf("operator %s: side %d: %w", j.name, port, err)
		}
		n += used
		side := j.sides[port]
		side.win.Clear()
		side.index = make(map[string][]stream.Tuple)
		for _, t := range b {
			j.insert(side, t)
		}
	}
	return nil
}

// StateBytes implements Stateful.
func (j *WindowJoin) StateBytes() int {
	return statsLen + windowBytes(j.sides[0].win) + windowBytes(j.sides[1].win)
}

// SnapshotState implements Stateful.
func (d *Distinct) SnapshotState() []byte {
	return appendWindow(appendStats(nil, d.stats), d.win)
}

// RestoreState implements Stateful: replaying the window rebuilds the
// per-key counts.
func (d *Distinct) RestoreState(data []byte) error {
	n, err := decodeStats(data, d.stats)
	if err != nil {
		return err
	}
	b, _, err := stream.DecodeBatch(data[n:])
	if err != nil {
		return err
	}
	d.win.Clear()
	d.counts = make(map[string]int)
	for _, t := range b {
		d.scratch = d.win.PushCollect(t, d.scratch[:0])
		for _, old := range d.scratch {
			ok := old.Value(d.keyIdx).String()
			d.counts[ok]--
			if d.counts[ok] <= 0 {
				delete(d.counts, ok)
			}
		}
		d.counts[t.Value(d.keyIdx).String()]++
	}
	return nil
}

// StateBytes implements Stateful.
func (d *Distinct) StateBytes() int { return statsLen + windowBytes(d.win) }

// SnapshotState implements Stateful.
func (t *TopK) SnapshotState() []byte {
	return appendWindow(appendStats(nil, t.stats), t.win)
}

// RestoreState implements Stateful. TopK derives ranks from the window
// on every call, so restoring the window restores everything.
func (t *TopK) RestoreState(data []byte) error {
	n, err := decodeStats(data, t.stats)
	if err != nil {
		return err
	}
	b, _, err := stream.DecodeBatch(data[n:])
	if err != nil {
		return err
	}
	t.win.Clear()
	for _, tu := range b {
		t.scratch = t.win.PushCollect(tu, t.scratch[:0])
	}
	return nil
}

// StateBytes implements Stateful.
func (t *TopK) StateBytes() int { return statsLen + windowBytes(t.win) }
