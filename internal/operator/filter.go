package operator

import (
	"fmt"

	"sspd/internal/stream"
)

// Predicate decides whether a tuple passes a filter.
type Predicate func(stream.Tuple) bool

// Filter is a selection operator: tuples satisfying the predicate pass
// through unchanged.
type Filter struct {
	base
	pred Predicate
}

// NewFilter builds a filter with an arbitrary predicate. cost is the
// abstract per-tuple evaluation cost (<=0 defaults to 1). The output
// schema equals the input schema.
func NewFilter(name string, in *stream.Schema, pred Predicate, cost float64) (*Filter, error) {
	if pred == nil {
		return nil, fmt.Errorf("operator %s: nil predicate", name)
	}
	if in == nil {
		return nil, fmt.Errorf("operator %s: nil input schema", name)
	}
	return &Filter{base: newBase(name, 1, cost, in), pred: pred}, nil
}

// NewInterestFilter builds a filter from a data-interest predicate — the
// form dissemination-tree ancestors use for early filtering (Section 3.1).
func NewInterestFilter(name string, in *stream.Schema, interest stream.Interest, cost float64) (*Filter, error) {
	return NewFilter(name, in, func(t stream.Tuple) bool {
		return interest.Matches(in, t)
	}, cost)
}

// Process implements Operator.
func (f *Filter) Process(port int, t stream.Tuple) []stream.Tuple {
	if port != 0 {
		panic(badPort(f.name, port, 1))
	}
	if f.pred(t) {
		f.stats.record(1)
		return []stream.Tuple{t}
	}
	f.stats.record(0)
	return nil
}

// Project narrows tuples to a subset of fields.
type Project struct {
	base
	indices []int
}

// NewProject builds a projection keeping the named fields in order. The
// output stream keeps the input stream name so downstream interests still
// apply.
func NewProject(name string, in *stream.Schema, cost float64, fields ...string) (*Project, error) {
	if in == nil {
		return nil, fmt.Errorf("operator %s: nil input schema", name)
	}
	out, idx, err := in.Project(in.Name(), fields...)
	if err != nil {
		return nil, fmt.Errorf("operator %s: %w", name, err)
	}
	return &Project{base: newBase(name, 1, cost, out), indices: idx}, nil
}

// Process implements Operator.
func (p *Project) Process(port int, t stream.Tuple) []stream.Tuple {
	if port != 0 {
		panic(badPort(p.name, port, 1))
	}
	vals := make([]stream.Value, len(p.indices))
	for i, src := range p.indices {
		vals[i] = t.Value(src)
	}
	out := t
	out.Values = vals
	p.stats.record(1)
	return []stream.Tuple{out}
}

// MapFunc transforms one tuple into zero or more output tuples.
type MapFunc func(stream.Tuple) []stream.Tuple

// Map applies an arbitrary per-tuple transformation. It is the extension
// point for user-defined operators.
type Map struct {
	base
	fn MapFunc
}

// NewMap builds a map operator. out describes the emitted tuples.
func NewMap(name string, out *stream.Schema, fn MapFunc, cost float64) (*Map, error) {
	if fn == nil {
		return nil, fmt.Errorf("operator %s: nil map function", name)
	}
	if out == nil {
		return nil, fmt.Errorf("operator %s: nil output schema", name)
	}
	return &Map{base: newBase(name, 1, cost, out), fn: fn}, nil
}

// Process implements Operator.
func (m *Map) Process(port int, t stream.Tuple) []stream.Tuple {
	if port != 0 {
		panic(badPort(m.name, port, 1))
	}
	outs := m.fn(t)
	m.stats.record(len(outs))
	return outs
}

// Union merges N inputs into one output stream unchanged. All inputs must
// share a schema.
type Union struct {
	base
}

// NewUnion builds a union over n inputs (n >= 1).
func NewUnion(name string, in *stream.Schema, n int, cost float64) (*Union, error) {
	if n < 1 {
		return nil, fmt.Errorf("operator %s: union needs at least one input", name)
	}
	if in == nil {
		return nil, fmt.Errorf("operator %s: nil input schema", name)
	}
	return &Union{base: newBase(name, n, cost, in)}, nil
}

// Process implements Operator.
func (u *Union) Process(port int, t stream.Tuple) []stream.Tuple {
	if port < 0 || port >= u.arity {
		panic(badPort(u.name, port, u.arity))
	}
	u.stats.record(1)
	return []stream.Tuple{t}
}
