package operator

import (
	"fmt"
	"sort"

	"sspd/internal/stream"
)

// Distinct suppresses duplicate tuples within a sliding window, keyed by
// one field: a tuple passes iff no tuple with the same key is currently
// in the window. Stock tickers use it to deduplicate bursts of identical
// quotes.
type Distinct struct {
	base
	keyIdx  int
	win     *stream.Window
	counts  map[string]int
	scratch []stream.Tuple
}

// NewDistinct builds a windowed distinct on keyField.
func NewDistinct(name string, in *stream.Schema, keyField string, spec stream.WindowSpec, cost float64) (*Distinct, error) {
	if in == nil {
		return nil, fmt.Errorf("operator %s: nil input schema", name)
	}
	idx, ok := in.FieldIndex(keyField)
	if !ok {
		return nil, fmt.Errorf("operator %s: schema %s has no field %q", name, in.Name(), keyField)
	}
	return &Distinct{
		base:   newBase(name, 1, cost, in),
		keyIdx: idx,
		win:    stream.NewWindow(spec),
		counts: make(map[string]int),
	}, nil
}

// Process implements Operator.
func (d *Distinct) Process(port int, t stream.Tuple) []stream.Tuple {
	if port != 0 {
		panic(badPort(d.name, port, 1))
	}
	key := t.Value(d.keyIdx).String()
	d.scratch = d.win.PushCollect(t, d.scratch[:0])
	for _, old := range d.scratch {
		ok := old.Value(d.keyIdx).String()
		d.counts[ok]--
		if d.counts[ok] <= 0 {
			delete(d.counts, ok)
		}
	}
	seen := d.counts[key] > 0
	d.counts[key]++
	if seen {
		d.stats.record(0)
		return nil
	}
	d.stats.record(1)
	return []stream.Tuple{t}
}

// TopK maintains the current top-k tuples by a numeric field over a
// sliding window, grouped globally. For every input it emits the updated
// rank of the input's key when the input enters the top k (otherwise
// nothing) — the "leaders board" query of sports and financial tickers.
type TopK struct {
	base
	k        int
	valueIdx int
	keyIdx   int
	win      *stream.Window
	scratch  []stream.Tuple
}

// NewTopK builds a top-k operator: rank keys by the maximum of
// valueField within the window. Output schema: (key:string, value:float,
// rank:int) on a stream named after the operator.
func NewTopK(name string, in *stream.Schema, k int, valueField, keyField string,
	spec stream.WindowSpec, cost float64) (*TopK, error) {
	if in == nil {
		return nil, fmt.Errorf("operator %s: nil input schema", name)
	}
	if k < 1 {
		return nil, fmt.Errorf("operator %s: k must be >= 1", name)
	}
	vi, ok := in.FieldIndex(valueField)
	if !ok {
		return nil, fmt.Errorf("operator %s: schema %s has no field %q", name, in.Name(), valueField)
	}
	if in.Field(vi).Type == stream.KindString {
		return nil, fmt.Errorf("operator %s: cannot rank by string field %q", name, valueField)
	}
	ki, ok := in.FieldIndex(keyField)
	if !ok {
		return nil, fmt.Errorf("operator %s: schema %s has no key field %q", name, in.Name(), keyField)
	}
	out, err := stream.NewSchema(name,
		stream.Field{Name: "key", Type: stream.KindString},
		stream.Field{Name: "value", Type: stream.KindFloat},
		stream.Field{Name: "rank", Type: stream.KindInt},
	)
	if err != nil {
		return nil, err
	}
	return &TopK{
		base:     newBase(name, 1, cost, out),
		k:        k,
		valueIdx: vi,
		keyIdx:   ki,
		win:      stream.NewWindow(spec),
	}, nil
}

// Process implements Operator.
func (t *TopK) Process(port int, tu stream.Tuple) []stream.Tuple {
	if port != 0 {
		panic(badPort(t.name, port, 1))
	}
	t.scratch = t.win.PushCollect(tu, t.scratch[:0])
	// Rank keys by their max value in the window.
	best := make(map[string]float64)
	t.win.Each(func(w stream.Tuple) bool {
		k := w.Value(t.keyIdx).String()
		v := w.Value(t.valueIdx).AsFloat()
		if cur, ok := best[k]; !ok || v > cur {
			best[k] = v
		}
		return true
	})
	type kv struct {
		key string
		val float64
	}
	ranked := make([]kv, 0, len(best))
	for k, v := range best {
		ranked = append(ranked, kv{k, v})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].val != ranked[j].val {
			return ranked[i].val > ranked[j].val
		}
		return ranked[i].key < ranked[j].key
	})
	key := tu.Value(t.keyIdx).String()
	for rank, r := range ranked {
		if rank >= t.k {
			break
		}
		if r.key == key {
			t.stats.record(1)
			return []stream.Tuple{{
				Stream: t.name,
				Seq:    tu.Seq,
				Ts:     tu.Ts,
				Values: []stream.Value{
					stream.String(r.key),
					stream.Float(r.val),
					stream.Int(int64(rank + 1)),
				},
			}}
		}
	}
	t.stats.record(0)
	return nil
}

// WindowLen reports the number of tuples currently held.
func (t *TopK) WindowLen() int { return t.win.Len() }
