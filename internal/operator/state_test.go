package operator

import (
	"fmt"
	"reflect"
	"testing"

	"sspd/internal/stream"
)

// feedAll drives n warmup quotes through an operator on port 0.
func feedAll(op Operator, from, n uint64) {
	for i := from; i < from+n; i++ {
		sym := fmt.Sprintf("s%d", i%7)
		op.Process(0, quote(i, sym, float64(10+i%90), int64(i)))
	}
}

// collectSuffix feeds the same suffix to an operator and flattens the
// outputs for comparison.
func collectSuffix(op Operator, from, n uint64) []stream.Tuple {
	var out []stream.Tuple
	for i := from; i < from+n; i++ {
		sym := fmt.Sprintf("s%d", i%7)
		out = append(out, op.Process(0, quote(i, sym, float64(10+i%90), int64(i)))...)
	}
	return out
}

// roundtrip snapshots src, restores into dst, then asserts both produce
// identical outputs for an identical input suffix — the migration
// equivalence contract.
func roundtrip(t *testing.T, src, dst Operator) {
	t.Helper()
	s, ok := src.(Stateful)
	if !ok {
		t.Fatalf("%T not Stateful", src)
	}
	d := dst.(Stateful)
	if s.StateBytes() <= 0 {
		t.Fatalf("StateBytes = %d, want > 0", s.StateBytes())
	}
	if err := d.RestoreState(s.SnapshotState()); err != nil {
		t.Fatalf("restore: %v", err)
	}
	want := collectSuffix(src, 1000, 150)
	got := collectSuffix(dst, 1000, 150)
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("post-restore outputs diverge:\nsrc: %d tuples\ndst: %d tuples", len(want), len(got))
	}
	in, out, sel, _ := src.Stats().ExportStats()
	din, dout, dsel, _ := dst.Stats().ExportStats()
	if in != din || out != dout || sel != dsel {
		t.Errorf("stats diverge after identical suffix: %d/%d/%v vs %d/%d/%v",
			in, out, sel, din, dout, dsel)
	}
}

func TestFilterStateRoundtrip(t *testing.T) {
	s := quotesSchema(t)
	mk := func() *Filter {
		f, err := NewFilter("f", s, func(tu stream.Tuple) bool { return tu.Value(1).AsFloat() > 40 }, 1)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	src, dst := mk(), mk()
	feedAll(src, 0, 200)
	roundtrip(t, src, dst)
}

func TestAggregateStateRoundtrip(t *testing.T) {
	s := quotesSchema(t)
	for _, fn := range []AggFunc{AggCount, AggSum, AggAvg, AggMin, AggMax} {
		t.Run(fn.String(), func(t *testing.T) {
			mk := func() *Aggregate {
				a, err := NewAggregate("agg", s, fn, "price", "symbol", stream.CountWindow(64), 1)
				if err != nil {
					t.Fatal(err)
				}
				return a
			}
			src, dst := mk(), mk()
			feedAll(src, 0, 300)
			roundtrip(t, src, dst)
			if src.WindowLen() != dst.WindowLen() || src.Groups() != dst.Groups() {
				t.Errorf("window/groups diverge: %d/%d vs %d/%d",
					src.WindowLen(), src.Groups(), dst.WindowLen(), dst.Groups())
			}
		})
	}
}

func TestJoinStateRoundtrip(t *testing.T) {
	qs := quotesSchema(t)
	mk := func() *WindowJoin {
		j, err := NewWindowJoin("j", qs, qs, "symbol", "symbol", stream.CountWindow(32), 1)
		if err != nil {
			t.Fatal(err)
		}
		return j
	}
	src, dst := mk(), mk()
	// Exercise both ports so both side windows carry state.
	for i := uint64(0); i < 200; i++ {
		sym := fmt.Sprintf("s%d", i%5)
		src.Process(int(i%2), quote(i, sym, float64(i), 1))
	}
	d := dst
	if err := d.RestoreState(src.SnapshotState()); err != nil {
		t.Fatal(err)
	}
	if src.WindowLen(0) != dst.WindowLen(0) || src.WindowLen(1) != dst.WindowLen(1) {
		t.Fatalf("window lengths diverge: %d/%d vs %d/%d",
			src.WindowLen(0), src.WindowLen(1), dst.WindowLen(0), dst.WindowLen(1))
	}
	for i := uint64(1000); i < 1100; i++ {
		sym := fmt.Sprintf("s%d", i%5)
		want := src.Process(int(i%2), quote(i, sym, float64(i), 1))
		got := dst.Process(int(i%2), quote(i, sym, float64(i), 1))
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("seq %d: outputs diverge (%d vs %d tuples)", i, len(want), len(got))
		}
	}
	if src.StateSize() != dst.StateSize() {
		t.Errorf("state sizes diverge: %d vs %d", src.StateSize(), dst.StateSize())
	}
}

func TestDistinctStateRoundtrip(t *testing.T) {
	s := quotesSchema(t)
	mk := func() *Distinct {
		d, err := NewDistinct("d", s, "symbol", stream.CountWindow(16), 1)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	src, dst := mk(), mk()
	feedAll(src, 0, 120)
	roundtrip(t, src, dst)
}

func TestTopKStateRoundtrip(t *testing.T) {
	s := quotesSchema(t)
	mk := func() *TopK {
		k, err := NewTopK("k", s, 3, "price", "symbol", stream.CountWindow(32), 1)
		if err != nil {
			t.Fatal(err)
		}
		return k
	}
	src, dst := mk(), mk()
	feedAll(src, 0, 150)
	roundtrip(t, src, dst)
	if src.WindowLen() != dst.WindowLen() {
		t.Errorf("window lengths diverge: %d vs %d", src.WindowLen(), dst.WindowLen())
	}
}

func TestRestoreStateRejectsGarbage(t *testing.T) {
	s := quotesSchema(t)
	a, err := NewAggregate("agg", s, AggAvg, "price", "symbol", stream.CountWindow(8), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.RestoreState([]byte{1, 2, 3}); err == nil {
		t.Error("truncated state accepted")
	}
	feedAll(a, 0, 20)
	snap := a.SnapshotState()
	if err := a.RestoreState(snap[:len(snap)-2]); err == nil {
		t.Error("torn snapshot accepted")
	}
}
