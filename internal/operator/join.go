package operator

import (
	"fmt"
	"time"

	"sspd/internal/stream"
)

// WindowJoin is a symmetric windowed equi-join over two streams. Each
// side maintains a sliding window plus a hash index on its join key; an
// arriving tuple probes the opposite window and emits one concatenated
// tuple per match. This is the classic window-join of STREAM-class
// engines, which the paper points to as the operator whose internal state
// ("synopsis") makes operator-level migration across heterogeneous
// engines infeasible — the reason inter-entity cooperation stays at the
// query level.
type WindowJoin struct {
	base
	keyL, keyR int // join-key field index per side
	sides      [2]*joinSide
}

type joinSide struct {
	win *stream.Window
	// index maps join-key string form to the tuples currently in the
	// window holding that key.
	index map[string][]stream.Tuple
	key   int
	// scratch is reused across inserts to collect evicted tuples
	// without allocating.
	scratch []stream.Tuple
}

// NewWindowJoin builds a join of left ⋈ right on left.keyField =
// right.keyField, each side windowed by spec. The output schema is the
// concatenation of both inputs' fields with side prefixes.
func NewWindowJoin(name string, left, right *stream.Schema, leftKey, rightKey string,
	spec stream.WindowSpec, cost float64) (*WindowJoin, error) {
	if left == nil || right == nil {
		return nil, fmt.Errorf("operator %s: nil input schema", name)
	}
	li, ok := left.FieldIndex(leftKey)
	if !ok {
		return nil, fmt.Errorf("operator %s: left schema %s has no field %q", name, left.Name(), leftKey)
	}
	ri, ok := right.FieldIndex(rightKey)
	if !ok {
		return nil, fmt.Errorf("operator %s: right schema %s has no field %q", name, right.Name(), rightKey)
	}
	if left.Field(li).Type != right.Field(ri).Type {
		return nil, fmt.Errorf("operator %s: join key kinds differ (%v vs %v)",
			name, left.Field(li).Type, right.Field(ri).Type)
	}
	fields := make([]stream.Field, 0, left.NumFields()+right.NumFields())
	for _, f := range left.Fields() {
		f.Name = "l_" + f.Name
		fields = append(fields, f)
	}
	for _, f := range right.Fields() {
		f.Name = "r_" + f.Name
		fields = append(fields, f)
	}
	out, err := stream.NewSchema(name, fields...)
	if err != nil {
		return nil, fmt.Errorf("operator %s: output schema: %w", name, err)
	}
	j := &WindowJoin{
		base: newBase(name, 2, cost, out),
		keyL: li, keyR: ri,
	}
	j.sides[0] = &joinSide{win: stream.NewWindow(spec), index: make(map[string][]stream.Tuple), key: li}
	j.sides[1] = &joinSide{win: stream.NewWindow(spec), index: make(map[string][]stream.Tuple), key: ri}
	return j, nil
}

// Process implements Operator. Port 0 is the left input, port 1 the right.
func (j *WindowJoin) Process(port int, t stream.Tuple) []stream.Tuple {
	if port < 0 || port > 1 {
		panic(badPort(j.name, port, 2))
	}
	mine, other := j.sides[port], j.sides[1-port]
	j.insert(mine, t)
	key := t.Value(mine.key).String()
	matches := other.index[key]
	if len(matches) == 0 {
		j.stats.record(0)
		return nil
	}
	outs := make([]stream.Tuple, 0, len(matches))
	for _, m := range matches {
		var left, right stream.Tuple
		if port == 0 {
			left, right = t, m
		} else {
			left, right = m, t
		}
		vals := make([]stream.Value, 0, len(left.Values)+len(right.Values))
		vals = append(vals, left.Values...)
		vals = append(vals, right.Values...)
		ts := left.Ts
		if right.Ts.After(ts) {
			ts = right.Ts
		}
		outs = append(outs, stream.Tuple{Stream: j.name, Seq: t.Seq, Ts: ts, Values: vals})
	}
	j.stats.record(len(outs))
	return outs
}

// insert adds t to a side's window and keeps the hash index in sync with
// evictions.
func (j *WindowJoin) insert(side *joinSide, t stream.Tuple) {
	side.scratch = side.win.PushCollect(t, side.scratch[:0])
	for _, old := range side.scratch {
		j.removeFromIndex(side, old)
	}
	key := t.Value(side.key).String()
	side.index[key] = append(side.index[key], t)
}

func (j *WindowJoin) removeFromIndex(side *joinSide, t stream.Tuple) {
	key := t.Value(side.key).String()
	list := side.index[key]
	for i := range list {
		if list[i].Seq == t.Seq && list[i].Ts.Equal(t.Ts) {
			list = append(list[:i], list[i+1:]...)
			break
		}
	}
	if len(list) == 0 {
		delete(side.index, key)
	} else {
		side.index[key] = list
	}
}

// WindowLen reports the current size of one side's window (0 = left).
// Exposed for tests and load estimation.
func (j *WindowJoin) WindowLen(port int) int {
	if port < 0 || port > 1 {
		return 0
	}
	return j.sides[port].win.Len()
}

// StateSize estimates the bytes of operator state (both windows), the
// quantity that makes operator migration expensive — measured by the
// coupling trade-off experiment (E8).
func (j *WindowJoin) StateSize() int {
	n := 0
	for _, side := range j.sides {
		side.win.Each(func(t stream.Tuple) bool {
			n += t.Size()
			return true
		})
	}
	return n
}

// DefaultJoinWindow is a convenient window spec for examples: 1 minute of
// event time.
func DefaultJoinWindow() stream.WindowSpec { return stream.TimeWindow(time.Minute) }
