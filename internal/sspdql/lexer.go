// Package sspdql implements the small declarative continuous-query
// language of sspd — the textual form of engine.QuerySpec that clients
// submit to the portal. The grammar mirrors the spec exactly, which
// keeps the language honest about what the federation can distribute:
//
//	query   := FROM ident
//	           [ JOIN ident ON ident = ident [ WINDOW window ] ]
//	           [ WHERE pred { AND pred } ]
//	           [ DISTINCT BY ident [ WINDOW window ] ]
//	           [ AGGREGATE func '(' ident ')' [ BY ident ] [ WINDOW window ]
//	           | TOP int OF ident BY ident [ WINDOW window ] ]
//	pred    := ident BETWEEN num AND num
//	         | ident ( '<' | '<=' | '>' | '>=' | '=' ) num
//	         | ident '=' string
//	         | ident IN '(' string { ',' string } ')'
//	window  := int [ 's' | 'ms' | 'm' ]      (bare int = tuple count)
//	func    := count | sum | avg | min | max
//
// Keywords are case-insensitive; identifiers are case-sensitive.
package sspdql

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind enumerates token types.
type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokLParen
	tokRParen
	tokComma
	tokOp // < <= > >= =
)

type token struct {
	kind tokKind
	text string
	pos  int
}

// lexer produces tokens from the query text.
type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenizes the whole input up front.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		tok, err := l.next()
		if err != nil {
			return nil, err
		}
		l.toks = append(l.toks, tok)
		if tok.kind == tokEOF {
			return l.toks, nil
		}
	}
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) && unicode.IsSpace(rune(l.src[l.pos])) {
		l.pos++
	}
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case c == '(':
		l.pos++
		return token{tokLParen, "(", start}, nil
	case c == ')':
		l.pos++
		return token{tokRParen, ")", start}, nil
	case c == ',':
		l.pos++
		return token{tokComma, ",", start}, nil
	case c == '<' || c == '>':
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
		}
		return token{tokOp, l.src[start:l.pos], start}, nil
	case c == '=':
		l.pos++
		return token{tokOp, "=", start}, nil
	case c == '\'':
		l.pos++
		for l.pos < len(l.src) && l.src[l.pos] != '\'' {
			l.pos++
		}
		if l.pos >= len(l.src) {
			return token{}, fmt.Errorf("sspdql: unterminated string at offset %d", start)
		}
		text := l.src[start+1 : l.pos]
		l.pos++ // closing quote
		return token{tokString, text, start}, nil
	case c == '-' || c == '+' || c == '.' || unicode.IsDigit(rune(c)):
		l.pos++
		for l.pos < len(l.src) {
			ch := l.src[l.pos]
			if unicode.IsDigit(rune(ch)) || ch == '.' || ch == 'e' || ch == 'E' ||
				((ch == '-' || ch == '+') && (l.src[l.pos-1] == 'e' || l.src[l.pos-1] == 'E')) {
				l.pos++
				continue
			}
			break
		}
		// A bare count window like "100s" lexes as number "100" then
		// ident "s"; the parser reassembles units.
		return token{tokNumber, l.src[start:l.pos], start}, nil
	case unicode.IsLetter(rune(c)) || c == '_':
		l.pos++
		for l.pos < len(l.src) {
			ch := rune(l.src[l.pos])
			if unicode.IsLetter(ch) || unicode.IsDigit(ch) || ch == '_' || ch == '.' {
				l.pos++
				continue
			}
			break
		}
		return token{tokIdent, l.src[start:l.pos], start}, nil
	default:
		return token{}, fmt.Errorf("sspdql: unexpected character %q at offset %d", c, start)
	}
}

// isKeyword reports a case-insensitive keyword match.
func (t token) isKeyword(kw string) bool {
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}
