package sspdql

import (
	"strings"
	"testing"
	"testing/quick"
	"time"

	"sspd/internal/engine"
	"sspd/internal/operator"
	"sspd/internal/stream"
	"sspd/internal/workload"
)

func TestParseMinimal(t *testing.T) {
	spec, err := Parse("q1", "FROM quotes")
	if err != nil {
		t.Fatal(err)
	}
	if spec.ID != "q1" || spec.Source != "quotes" {
		t.Fatalf("spec = %+v", spec)
	}
	if spec.Join != nil || spec.Filters != nil || spec.Agg != nil {
		t.Fatal("extra clauses materialized")
	}
}

func TestParseFilters(t *testing.T) {
	spec, err := Parse("q", `FROM quotes WHERE price BETWEEN 10 AND 20
		AND symbol IN ('ibm', 'msft') AND volume <= 100 AND price >= 5
		AND symbol = 'goog'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Filters) != 5 {
		t.Fatalf("filters = %d", len(spec.Filters))
	}
	f := spec.Filters[0]
	if f.Field != "price" || f.Lo != 10 || f.Hi != 20 {
		t.Errorf("between = %+v", f)
	}
	f = spec.Filters[1]
	if f.KeyField != "symbol" || len(f.Keys) != 2 || f.Keys[0] != "ibm" {
		t.Errorf("in = %+v", f)
	}
	f = spec.Filters[2]
	if f.Field != "volume" || f.Lo != -OpenBound || f.Hi != 100 {
		t.Errorf("le = %+v", f)
	}
	f = spec.Filters[3]
	if f.Field != "price" || f.Lo != 5 || f.Hi != OpenBound {
		t.Errorf("ge = %+v", f)
	}
	f = spec.Filters[4]
	if f.KeyField != "symbol" || len(f.Keys) != 1 || f.Keys[0] != "goog" {
		t.Errorf("string eq = %+v", f)
	}
}

func TestParseStrictInequalities(t *testing.T) {
	spec, err := Parse("q", "FROM s WHERE a < 10 AND b > 5 AND c = 7")
	if err != nil {
		t.Fatal(err)
	}
	if got := spec.Filters[0].Hi; got >= 10 {
		t.Errorf("a < 10 upper bound = %v", got)
	}
	if got := spec.Filters[1].Lo; got <= 5 {
		t.Errorf("b > 5 lower bound = %v", got)
	}
	if f := spec.Filters[2]; f.Lo != 7 || f.Hi != 7 {
		t.Errorf("c = 7 -> %+v", f)
	}
}

func TestParseJoin(t *testing.T) {
	spec, err := Parse("q", "FROM quotes JOIN trades ON symbol = symbol WINDOW 100 WHERE price <= 50")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Join == nil || spec.Join.Stream != "trades" ||
		spec.Join.LeftKey != "symbol" || spec.Join.RightKey != "symbol" {
		t.Fatalf("join = %+v", spec.Join)
	}
	if spec.Join.Window.Kind != stream.WindowByCount || spec.Join.Window.Count != 100 {
		t.Fatalf("window = %+v", spec.Join.Window)
	}
}

func TestParseAggregate(t *testing.T) {
	spec, err := Parse("q", "FROM quotes AGGREGATE avg(price) BY symbol WINDOW 60s")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Agg == nil || spec.Agg.Fn != operator.AggAvg ||
		spec.Agg.ValueField != "price" || spec.Agg.GroupField != "symbol" {
		t.Fatalf("agg = %+v", spec.Agg)
	}
	if spec.Agg.Window.Kind != stream.WindowByTime || spec.Agg.Window.Duration != time.Minute {
		t.Fatalf("window = %+v", spec.Agg.Window)
	}
	count, err := Parse("q", "FROM quotes AGGREGATE count() WINDOW 10")
	if err != nil {
		t.Fatal(err)
	}
	if count.Agg.Fn != operator.AggCount || count.Agg.ValueField != "" {
		t.Fatalf("count = %+v", count.Agg)
	}
}

func TestParseWindowUnits(t *testing.T) {
	cases := map[string]stream.WindowSpec{
		"WINDOW 500ms": stream.TimeWindow(500 * time.Millisecond),
		"WINDOW 2m":    stream.TimeWindow(2 * time.Minute),
		"WINDOW 3s":    stream.TimeWindow(3 * time.Second),
		"WINDOW 42":    stream.CountWindow(42),
	}
	for frag, want := range cases {
		spec, err := Parse("q", "FROM s AGGREGATE count() "+frag)
		if err != nil {
			t.Fatalf("%s: %v", frag, err)
		}
		if spec.Agg.Window != want {
			t.Errorf("%s = %+v, want %+v", frag, spec.Agg.Window, want)
		}
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	spec, err := Parse("q", "from quotes where price between 1 and 2 aggregate Count() window 5")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Source != "quotes" || len(spec.Filters) != 1 || spec.Agg == nil {
		t.Fatalf("spec = %+v", spec)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT x",
		"FROM",
		"FROM quotes WHERE",
		"FROM quotes WHERE price",
		"FROM quotes WHERE price BETWEEN 1",
		"FROM quotes WHERE price BETWEEN 1 AND",
		"FROM quotes WHERE price IN (1)",
		"FROM quotes WHERE symbol IN ()",
		"FROM quotes WHERE symbol IN ('a' 'b')",
		"FROM quotes JOIN trades",
		"FROM quotes JOIN trades ON a < b",
		"FROM quotes AGGREGATE frobnicate(price)",
		"FROM quotes AGGREGATE sum()",
		"FROM quotes AGGREGATE sum(price) WINDOW 0",
		"FROM quotes AGGREGATE sum(price) WINDOW -3",
		"FROM quotes trailing",
		"FROM quotes WHERE price = 'unterminated",
		"FROM quotes WHERE price @ 3",
	}
	for _, src := range bad {
		if _, err := Parse("q", src); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestParsedQueryRuns(t *testing.T) {
	catalog := workload.Catalog(100, 10)
	spec, err := Parse("q", "FROM quotes WHERE symbol IN ('S0000') AND price >= 0 AGGREGATE count() WINDOW 100")
	if err != nil {
		t.Fatal(err)
	}
	results := 0
	q, err := engine.Compile(spec, catalog, func(stream.Tuple) { results++ })
	if err != nil {
		t.Fatal(err)
	}
	tick := workload.NewTicker(3, 100, 1.5)
	matched := 0
	for i := 0; i < 500; i++ {
		tu := tick.Next()
		if tu.Value(0).AsString() == "S0000" {
			matched++
		}
		q.Feed("quotes", tu)
	}
	if results != matched {
		t.Fatalf("results = %d, want %d", results, matched)
	}
	if matched == 0 {
		t.Fatal("workload produced no matching tuples (bad test)")
	}
}

func TestFormatRoundTrip(t *testing.T) {
	srcs := []string{
		"FROM quotes",
		"FROM quotes WHERE price BETWEEN 10 AND 20",
		"FROM quotes WHERE symbol IN ('a', 'b') AND volume <= 100",
		"FROM quotes JOIN trades ON symbol = symbol WINDOW 50 WHERE price >= 5",
		"FROM quotes AGGREGATE avg(price) BY symbol WINDOW 60s",
		"FROM quotes WHERE price = 7 AGGREGATE count() WINDOW 10",
	}
	for _, src := range srcs {
		spec, err := Parse("q", src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		text := Format(spec)
		spec2, err := Parse("q", text)
		if err != nil {
			t.Fatalf("re-parse %q: %v", text, err)
		}
		if Format(spec2) != text {
			t.Errorf("not a fixpoint: %q -> %q", text, Format(spec2))
		}
	}
}

// TestFormatRoundTripGenerated round-trips workload-generated specs:
// Parse(Format(spec)) must preserve the query's semantics (interest).
func TestFormatRoundTripGenerated(t *testing.T) {
	catalog := workload.Catalog(100, 10)
	sc, _ := catalog.Lookup("quotes")
	tick := workload.NewTicker(5, 100, 1.3)
	gen := workload.NewQueryGen(5, tick.Symbols(), 4, 0.3)
	for _, spec := range gen.Specs(50) {
		text := Format(spec)
		got, err := Parse(spec.ID, text)
		if err != nil {
			t.Fatalf("%s: %q: %v", spec.ID, text, err)
		}
		// Same data interest before and after.
		a := spec.Interest("quotes", sc)
		b := got.Interest("quotes", sc)
		for i := 0; i < 200; i++ {
			tu := tick.Next()
			if a.Matches(sc, tu) != b.Matches(sc, tu) {
				t.Fatalf("%s: interest drift on %v\n  text: %s", spec.ID, tu, text)
			}
		}
	}
}

func TestFormatCombinedRangeAndKeys(t *testing.T) {
	spec := engine.QuerySpec{
		ID:     "q",
		Source: "s",
		Filters: []engine.FilterSpec{
			{Field: "p", Lo: 1, Hi: 2, KeyField: "k", Keys: []string{"x"}},
		},
	}
	text := Format(spec)
	if !strings.Contains(text, "BETWEEN") || !strings.Contains(text, "IN") {
		t.Fatalf("combined filter format = %q", text)
	}
	got, err := Parse("q", text)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Filters) != 2 {
		t.Fatalf("combined filter split into %d", len(got.Filters))
	}
}

func TestParseDistinct(t *testing.T) {
	spec, err := Parse("q", "FROM quotes WHERE price >= 0 DISTINCT BY symbol WINDOW 100")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Distinct == nil || spec.Distinct.Field != "symbol" ||
		spec.Distinct.Window.Count != 100 {
		t.Fatalf("distinct = %+v", spec.Distinct)
	}
	if _, err := Parse("q", "FROM quotes DISTINCT symbol"); err == nil {
		t.Error("DISTINCT without BY accepted")
	}
}

func TestParseTopK(t *testing.T) {
	spec, err := Parse("q", "FROM quotes TOP 3 OF price BY symbol WINDOW 60s")
	if err != nil {
		t.Fatal(err)
	}
	tk := spec.TopK
	if tk == nil || tk.K != 3 || tk.ValueField != "price" || tk.KeyField != "symbol" {
		t.Fatalf("topk = %+v", tk)
	}
	if tk.Window.Kind != stream.WindowByTime || tk.Window.Duration != time.Minute {
		t.Fatalf("window = %+v", tk.Window)
	}
	bad := []string{
		"FROM quotes TOP 0 OF price BY symbol",
		"FROM quotes TOP x OF price BY symbol",
		"FROM quotes TOP 3 price BY symbol",
		"FROM quotes TOP 3 OF price symbol",
	}
	for _, src := range bad {
		if _, err := Parse("q", src); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestFormatRoundTripDistinctAndTopK(t *testing.T) {
	srcs := []string{
		"FROM quotes WHERE price >= 0 DISTINCT BY symbol WINDOW 50",
		"FROM quotes TOP 5 OF price BY symbol WINDOW 10s",
		"FROM quotes DISTINCT BY symbol WINDOW 8 AGGREGATE count() WINDOW 16",
	}
	for _, src := range srcs {
		spec, err := Parse("q", src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		text := Format(spec)
		spec2, err := Parse("q", text)
		if err != nil {
			t.Fatalf("re-parse %q: %v", text, err)
		}
		if Format(spec2) != text {
			t.Errorf("not a fixpoint: %q -> %q", text, Format(spec2))
		}
	}
}

// Property: Parse never panics on arbitrary input.
func TestParseNeverPanics(t *testing.T) {
	f := func(src string) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("panic on %q: %v", src, r)
			}
		}()
		_, _ = Parse("q", src)
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	// And on keyword-dense inputs specifically.
	keywordish := []string{
		"FROM FROM FROM", "FROM q WHERE WHERE", "FROM q TOP TOP",
		"FROM q JOIN ON = WINDOW", "FROM q AGGREGATE ((((",
		"FROM q WHERE a BETWEEN AND AND", "FROM q DISTINCT BY BY",
	}
	for _, src := range keywordish {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("panic on %q: %v", src, r)
				}
			}()
			_, _ = Parse("q", src)
		}()
	}
}
