package sspdql

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"

	"sspd/internal/engine"
	"sspd/internal/operator"
	"sspd/internal/stream"
)

// OpenBound is the magnitude used for one-sided comparisons: `price <
// 10` becomes the range [-OpenBound, 10]. It is far outside any schema
// domain.
const OpenBound = 1e18

// Parse compiles query text into a QuerySpec with the given ID.
func Parse(id, src string) (engine.QuerySpec, error) {
	toks, err := lex(src)
	if err != nil {
		return engine.QuerySpec{}, err
	}
	p := &parser{toks: toks}
	spec, err := p.query(id)
	if err != nil {
		return engine.QuerySpec{}, err
	}
	if err := spec.Validate(); err != nil {
		return engine.QuerySpec{}, err
	}
	return spec, nil
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) peek() token { return p.toks[p.i] }

func (p *parser) take() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

func (p *parser) expectKeyword(kw string) error {
	t := p.take()
	if !t.isKeyword(kw) {
		return fmt.Errorf("sspdql: expected %s at offset %d, got %q", kw, t.pos, t.text)
	}
	return nil
}

func (p *parser) expectIdent() (string, error) {
	t := p.take()
	if t.kind != tokIdent {
		return "", fmt.Errorf("sspdql: expected identifier at offset %d, got %q", t.pos, t.text)
	}
	return t.text, nil
}

func (p *parser) expectKind(k tokKind, what string) (token, error) {
	t := p.take()
	if t.kind != k {
		return t, fmt.Errorf("sspdql: expected %s at offset %d, got %q", what, t.pos, t.text)
	}
	return t, nil
}

func (p *parser) query(id string) (engine.QuerySpec, error) {
	spec := engine.QuerySpec{ID: id}
	if err := p.expectKeyword("FROM"); err != nil {
		return spec, err
	}
	src, err := p.expectIdent()
	if err != nil {
		return spec, err
	}
	spec.Source = src

	if p.peek().isKeyword("JOIN") {
		p.take()
		join, err := p.join()
		if err != nil {
			return spec, err
		}
		spec.Join = join
	}
	if p.peek().isKeyword("WHERE") {
		p.take()
		for {
			f, err := p.pred()
			if err != nil {
				return spec, err
			}
			spec.Filters = append(spec.Filters, f)
			if !p.peek().isKeyword("AND") {
				break
			}
			p.take()
		}
	}
	if p.peek().isKeyword("DISTINCT") {
		p.take()
		dist, err := p.distinct()
		if err != nil {
			return spec, err
		}
		spec.Distinct = dist
	}
	switch {
	case p.peek().isKeyword("AGGREGATE"):
		p.take()
		agg, err := p.aggregate()
		if err != nil {
			return spec, err
		}
		spec.Agg = agg
	case p.peek().isKeyword("TOP"):
		p.take()
		topk, err := p.topK()
		if err != nil {
			return spec, err
		}
		spec.TopK = topk
	}
	if t := p.peek(); t.kind != tokEOF {
		return spec, fmt.Errorf("sspdql: trailing input at offset %d: %q", t.pos, t.text)
	}
	return spec, nil
}

// distinct parses "BY field [WINDOW w]" after the DISTINCT keyword.
func (p *parser) distinct() (*engine.DistinctSpec, error) {
	if err := p.expectKeyword("BY"); err != nil {
		return nil, err
	}
	field, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	d := &engine.DistinctSpec{Field: field}
	if p.peek().isKeyword("WINDOW") {
		p.take()
		w, err := p.window()
		if err != nil {
			return nil, err
		}
		d.Window = w
	}
	return d, nil
}

// topK parses "k OF field BY key [WINDOW w]" after the TOP keyword.
func (p *parser) topK() (*engine.TopKSpec, error) {
	num, err := p.expectKind(tokNumber, "top-k count")
	if err != nil {
		return nil, err
	}
	k, err := strconv.Atoi(num.text)
	if err != nil || k < 1 {
		return nil, fmt.Errorf("sspdql: bad top-k count %q", num.text)
	}
	if err := p.expectKeyword("OF"); err != nil {
		return nil, err
	}
	value, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("BY"); err != nil {
		return nil, err
	}
	key, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	tk := &engine.TopKSpec{K: k, ValueField: value, KeyField: key}
	if p.peek().isKeyword("WINDOW") {
		p.take()
		w, err := p.window()
		if err != nil {
			return nil, err
		}
		tk.Window = w
	}
	return tk, nil
}

func (p *parser) join() (*engine.JoinSpec, error) {
	streamName, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("ON"); err != nil {
		return nil, err
	}
	left, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if t := p.take(); t.kind != tokOp || t.text != "=" {
		return nil, fmt.Errorf("sspdql: expected = in join condition at offset %d", t.pos)
	}
	right, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	j := &engine.JoinSpec{Stream: streamName, LeftKey: left, RightKey: right}
	if p.peek().isKeyword("WINDOW") {
		p.take()
		w, err := p.window()
		if err != nil {
			return nil, err
		}
		j.Window = w
	}
	return j, nil
}

func (p *parser) pred() (engine.FilterSpec, error) {
	field, err := p.expectIdent()
	if err != nil {
		return engine.FilterSpec{}, err
	}
	t := p.take()
	switch {
	case t.isKeyword("BETWEEN"):
		lo, err := p.number()
		if err != nil {
			return engine.FilterSpec{}, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return engine.FilterSpec{}, err
		}
		hi, err := p.number()
		if err != nil {
			return engine.FilterSpec{}, err
		}
		return engine.FilterSpec{Field: field, Lo: lo, Hi: hi}, nil
	case t.isKeyword("IN"):
		if _, err := p.expectKind(tokLParen, "("); err != nil {
			return engine.FilterSpec{}, err
		}
		var keys []string
		for {
			s, err := p.expectKind(tokString, "string literal")
			if err != nil {
				return engine.FilterSpec{}, err
			}
			keys = append(keys, s.text)
			nxt := p.take()
			if nxt.kind == tokRParen {
				break
			}
			if nxt.kind != tokComma {
				return engine.FilterSpec{}, fmt.Errorf("sspdql: expected , or ) at offset %d", nxt.pos)
			}
		}
		return engine.FilterSpec{KeyField: field, Keys: keys}, nil
	case t.kind == tokOp:
		return p.comparison(field, t.text)
	default:
		return engine.FilterSpec{}, fmt.Errorf("sspdql: expected predicate operator at offset %d, got %q", t.pos, t.text)
	}
}

func (p *parser) comparison(field, op string) (engine.FilterSpec, error) {
	// `field = 'str'` is a one-element key set.
	if op == "=" && p.peek().kind == tokString {
		s := p.take()
		return engine.FilterSpec{KeyField: field, Keys: []string{s.text}}, nil
	}
	v, err := p.number()
	if err != nil {
		return engine.FilterSpec{}, err
	}
	switch op {
	case "=":
		return engine.FilterSpec{Field: field, Lo: v, Hi: v}, nil
	case "<", "<=":
		hi := v
		if op == "<" {
			hi = math.Nextafter(v, math.Inf(-1))
		}
		return engine.FilterSpec{Field: field, Lo: -OpenBound, Hi: hi}, nil
	case ">", ">=":
		lo := v
		if op == ">" {
			lo = math.Nextafter(v, math.Inf(1))
		}
		return engine.FilterSpec{Field: field, Lo: lo, Hi: OpenBound}, nil
	default:
		return engine.FilterSpec{}, fmt.Errorf("sspdql: unsupported operator %q", op)
	}
}

func (p *parser) aggregate() (*engine.AggSpec, error) {
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	var fn operator.AggFunc
	switch strings.ToLower(name) {
	case "count":
		fn = operator.AggCount
	case "sum":
		fn = operator.AggSum
	case "avg":
		fn = operator.AggAvg
	case "min":
		fn = operator.AggMin
	case "max":
		fn = operator.AggMax
	default:
		return nil, fmt.Errorf("sspdql: unknown aggregate function %q", name)
	}
	if _, err := p.expectKind(tokLParen, "("); err != nil {
		return nil, err
	}
	agg := &engine.AggSpec{Fn: fn}
	// count(*) or count() take no field; others need one.
	if p.peek().kind == tokIdent {
		f, _ := p.expectIdent()
		agg.ValueField = f
	} else if p.peek().kind == tokOp || p.peek().kind == tokNumber {
		// tolerate count(*) written with any placeholder? keep strict:
		return nil, fmt.Errorf("sspdql: expected field name or ) in aggregate at offset %d", p.peek().pos)
	}
	if _, err := p.expectKind(tokRParen, ")"); err != nil {
		return nil, err
	}
	if fn != operator.AggCount && agg.ValueField == "" {
		return nil, fmt.Errorf("sspdql: %s needs a value field", name)
	}
	if p.peek().isKeyword("BY") {
		p.take()
		g, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		agg.GroupField = g
	}
	if p.peek().isKeyword("WINDOW") {
		p.take()
		w, err := p.window()
		if err != nil {
			return nil, err
		}
		agg.Window = w
	}
	return agg, nil
}

// window parses "N" (count), "Ns", "Nms", or "Nm".
func (p *parser) window() (stream.WindowSpec, error) {
	num, err := p.expectKind(tokNumber, "window size")
	if err != nil {
		return stream.WindowSpec{}, err
	}
	// A unit suffix lexes as a following identifier with no space only
	// if it was split; accept either adjacency or separate ident.
	if p.peek().kind == tokIdent {
		unit := strings.ToLower(p.peek().text)
		var d time.Duration
		switch unit {
		case "s":
			d = time.Second
		case "ms":
			d = time.Millisecond
		case "m":
			d = time.Minute
		default:
			d = 0
		}
		if d != 0 {
			p.take()
			v, err := strconv.ParseFloat(num.text, 64)
			if err != nil {
				return stream.WindowSpec{}, fmt.Errorf("sspdql: bad window size %q", num.text)
			}
			return stream.TimeWindow(time.Duration(v * float64(d))), nil
		}
	}
	n, err := strconv.Atoi(num.text)
	if err != nil || n <= 0 {
		return stream.WindowSpec{}, fmt.Errorf("sspdql: bad count window %q", num.text)
	}
	return stream.CountWindow(n), nil
}

func (p *parser) number() (float64, error) {
	t, err := p.expectKind(tokNumber, "number")
	if err != nil {
		return 0, err
	}
	v, err := strconv.ParseFloat(t.text, 64)
	if err != nil {
		return 0, fmt.Errorf("sspdql: bad number %q at offset %d", t.text, t.pos)
	}
	return v, nil
}

// Format renders a spec back to query text. Parse(Format(spec)) yields
// an equivalent spec (modulo filter costs and load, which the language
// does not express).
func Format(spec engine.QuerySpec) string {
	var b strings.Builder
	fmt.Fprintf(&b, "FROM %s", spec.Source)
	if spec.Join != nil {
		fmt.Fprintf(&b, " JOIN %s ON %s = %s", spec.Join.Stream, spec.Join.LeftKey, spec.Join.RightKey)
		b.WriteString(formatWindow(spec.Join.Window))
	}
	for i, f := range spec.Filters {
		if i == 0 {
			b.WriteString(" WHERE ")
		} else {
			b.WriteString(" AND ")
		}
		b.WriteString(formatFilter(f))
	}
	if spec.Distinct != nil {
		fmt.Fprintf(&b, " DISTINCT BY %s", spec.Distinct.Field)
		b.WriteString(formatWindow(spec.Distinct.Window))
	}
	if spec.Agg != nil {
		fmt.Fprintf(&b, " AGGREGATE %s(%s)", spec.Agg.Fn, spec.Agg.ValueField)
		if spec.Agg.GroupField != "" {
			fmt.Fprintf(&b, " BY %s", spec.Agg.GroupField)
		}
		b.WriteString(formatWindow(spec.Agg.Window))
	}
	if spec.TopK != nil {
		fmt.Fprintf(&b, " TOP %d OF %s BY %s", spec.TopK.K, spec.TopK.ValueField, spec.TopK.KeyField)
		b.WriteString(formatWindow(spec.TopK.Window))
	}
	return b.String()
}

func formatFilter(f engine.FilterSpec) string {
	if f.KeyField != "" {
		keys := make([]string, len(f.Keys))
		copy(keys, f.Keys)
		sort.Strings(keys)
		quoted := make([]string, len(keys))
		for i, k := range keys {
			quoted[i] = "'" + k + "'"
		}
		// Range+keys filters format as the key part only when no range
		// is present; both constraints become two predicates.
		key := fmt.Sprintf("%s IN (%s)", f.KeyField, strings.Join(quoted, ", "))
		if f.Field == "" {
			return key
		}
		return fmt.Sprintf("%s AND %s", formatRange(f), key)
	}
	return formatRange(f)
}

func formatRange(f engine.FilterSpec) string {
	switch {
	case f.Lo <= -OpenBound:
		return fmt.Sprintf("%s <= %s", f.Field, num(f.Hi))
	case f.Hi >= OpenBound:
		return fmt.Sprintf("%s >= %s", f.Field, num(f.Lo))
	case f.Lo == f.Hi:
		return fmt.Sprintf("%s = %s", f.Field, num(f.Lo))
	default:
		return fmt.Sprintf("%s BETWEEN %s AND %s", f.Field, num(f.Lo), num(f.Hi))
	}
}

func num(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func formatWindow(w stream.WindowSpec) string {
	switch w.Kind {
	case stream.WindowByTime:
		if w.Duration == 0 {
			return ""
		}
		if w.Duration%time.Second == 0 {
			return fmt.Sprintf(" WINDOW %ds", int(w.Duration/time.Second))
		}
		return fmt.Sprintf(" WINDOW %dms", int(w.Duration/time.Millisecond))
	default:
		if w.Count <= 0 {
			return ""
		}
		return fmt.Sprintf(" WINDOW %d", w.Count)
	}
}
