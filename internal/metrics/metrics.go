// Package metrics provides the lightweight measurement primitives used
// throughout sspd: atomic counters and gauges, byte meters with windowed
// rates, and streaming histograms with quantile estimation.
//
// All types are safe for concurrent use and have useful zero values.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1 to the counter.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta to the counter. Negative deltas are ignored so the
// counter stays monotonic.
func (c *Counter) Add(delta int64) {
	if delta > 0 {
		c.v.Add(delta)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Reset sets the counter back to zero. It is intended for experiment
// harnesses that reuse a counter between runs.
func (c *Counter) Reset() { c.v.Store(0) }

// Gauge is an instantaneous value that may go up or down.
type Gauge struct {
	v atomic.Int64
}

// Set stores v as the current value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta (which may be negative) to the gauge.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// FloatGauge is an instantaneous float64 value.
type FloatGauge struct {
	bits atomic.Uint64
}

// Set stores v as the current value.
func (g *FloatGauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *FloatGauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// ByteMeter counts bytes and messages, typically one per link or stream.
type ByteMeter struct {
	bytes    atomic.Int64
	messages atomic.Int64
}

// Record adds one message of n bytes.
func (m *ByteMeter) Record(n int) {
	if n < 0 {
		return
	}
	m.bytes.Add(int64(n))
	m.messages.Add(1)
}

// Bytes returns the total bytes recorded.
func (m *ByteMeter) Bytes() int64 { return m.bytes.Load() }

// Messages returns the total number of messages recorded.
func (m *ByteMeter) Messages() int64 { return m.messages.Load() }

// Reset zeroes the meter.
func (m *ByteMeter) Reset() {
	m.bytes.Store(0)
	m.messages.Store(0)
}

// Rate computes bytes/second over the given elapsed duration.
func (m *ByteMeter) Rate(elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(m.bytes.Load()) / elapsed.Seconds()
}

// Histogram is a streaming histogram of float64 samples. It keeps an exact
// reservoir up to a bound and degrades to uniform reservoir sampling
// beyond it, which is adequate for the latency distributions measured in
// the experiments.
type Histogram struct {
	mu      sync.Mutex
	samples []float64
	count   int64
	sum     float64
	min     float64
	max     float64
	// rngState drives the reservoir-sampling replacement index. A trivial
	// xorshift generator avoids importing math/rand here.
	rngState uint64
}

const histogramReservoir = 4096

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	if len(h.samples) < histogramReservoir {
		h.samples = append(h.samples, v)
		return
	}
	// Reservoir sampling: replace a uniformly random slot with
	// probability reservoir/count.
	if h.rngState == 0 {
		h.rngState = 0x9E3779B97F4A7C15
	}
	h.rngState ^= h.rngState << 13
	h.rngState ^= h.rngState >> 7
	h.rngState ^= h.rngState << 17
	j := h.rngState % uint64(h.count)
	if j < uint64(len(h.samples)) {
		h.samples[j] = v
	}
}

// ObserveDuration records a duration sample in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// ObserveN records n identical samples of v with one lock acquisition —
// the batch-granularity write path of the vectorized engine, which
// measures per-batch and attributes per-tuple. Count and Sum advance by
// n and n*v (so Mean stays a per-tuple mean and Sum stays total
// seconds), while the reservoir receives a single representative
// sample: quantiles are then per-batch-mean order statistics, an
// acceptable coarsening the engine's PR computation (which uses means)
// never observes.
func (h *Histogram) ObserveN(v float64, n int64) {
	if n <= 0 {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count += n
	h.sum += v * float64(n)
	if len(h.samples) < histogramReservoir {
		h.samples = append(h.samples, v)
		return
	}
	if h.rngState == 0 {
		h.rngState = 0x9E3779B97F4A7C15
	}
	h.rngState ^= h.rngState << 13
	h.rngState ^= h.rngState >> 7
	h.rngState ^= h.rngState << 17
	j := h.rngState % uint64(h.count)
	if j < uint64(len(h.samples)) {
		h.samples[j] = v
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Mean returns the arithmetic mean of all observations, or 0 if empty.
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Min returns the smallest observation, or 0 if empty.
func (h *Histogram) Min() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.min
}

// Max returns the largest observation, or 0 if empty.
func (h *Histogram) Max() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Quantile returns the q-quantile (0 <= q <= 1) estimated from the
// reservoir, or 0 if the histogram is empty.
//
// Accuracy contract: while Count() <= the reservoir bound the quantile
// is exact (read from every sample). Beyond it the reservoir degrades to
// a uniform subsample and quantiles become *estimates* whose error grows
// with the tail weight of the distribution; Estimated() (and
// Snapshot.Estimated) report when that regime has been entered. Reservoir
// quantiles from different histograms must never be averaged or merged —
// use the latency package's fixed-boundary log-bucket Hist when a
// distribution has to be combined across entities.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	sorted := make([]float64, len(h.samples))
	copy(sorted, h.samples)
	sort.Float64s(sorted)
	return quantileOf(sorted, q)
}

// quantileOf reads the q-quantile from an already-sorted sample slice.
func quantileOf(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}

// Reset clears all recorded samples.
func (h *Histogram) Reset() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.samples = h.samples[:0]
	h.count = 0
	h.sum = 0
	h.min = 0
	h.max = 0
}

// Estimated reports whether the histogram has outgrown its exact
// reservoir: quantiles are uniform-subsample estimates from then on.
func (h *Histogram) Estimated() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count > histogramReservoir
}

// Snapshot is a point-in-time summary of a histogram.
type Snapshot struct {
	Count int64
	Sum   float64
	Mean  float64
	Min   float64
	Max   float64
	P50   float64
	P95   float64
	P99   float64
	// Estimated marks quantiles computed after reservoir degradation:
	// they are subsample estimates, not exact order statistics.
	Estimated bool
}

// Snapshot returns a summary of the histogram. The whole summary is
// computed under one lock acquisition so it is internally consistent: a
// concurrent Observe can never yield a snapshot whose Count, Mean, and
// quantiles disagree about which samples they saw.
func (h *Histogram) Snapshot() Snapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := Snapshot{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max,
		Estimated: h.count > histogramReservoir}
	if h.count > 0 {
		s.Mean = h.sum / float64(h.count)
	}
	if len(h.samples) > 0 {
		sorted := make([]float64, len(h.samples))
		copy(sorted, h.samples)
		sort.Float64s(sorted)
		s.P50 = quantileOf(sorted, 0.50)
		s.P95 = quantileOf(sorted, 0.95)
		s.P99 = quantileOf(sorted, 0.99)
	}
	return s
}

// String implements fmt.Stringer for concise experiment output.
func (s Snapshot) String() string {
	return fmt.Sprintf("n=%d mean=%.4g p50=%.4g p95=%.4g p99=%.4g max=%.4g",
		s.Count, s.Mean, s.P50, s.P95, s.P99, s.Max)
}

// EWMA is an exponentially weighted moving average, used by the adaptive
// components (the Adaptation Module, load estimators) to track drifting
// statistics such as selectivities and queue lengths.
type EWMA struct {
	mu    sync.Mutex
	alpha float64
	value float64
	init  bool
}

// NewEWMA returns an EWMA with the given smoothing factor in (0, 1].
// Larger alpha weights recent samples more heavily.
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		alpha = 0.2
	}
	return &EWMA{alpha: alpha}
}

// Update folds one sample into the average and returns the new value.
func (e *EWMA) Update(sample float64) float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.init {
		e.value = sample
		e.init = true
	} else {
		e.value = e.alpha*sample + (1-e.alpha)*e.value
	}
	return e.value
}

// Value returns the current average (0 before any update).
func (e *EWMA) Value() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.value
}

// Initialized reports whether Update has been called at least once.
func (e *EWMA) Initialized() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.init
}
