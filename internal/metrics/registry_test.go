package metrics

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("sspd_test_total", "help", L("q", "1"))
	b := r.Counter("sspd_test_total", "help", L("q", "1"))
	if a != b {
		t.Fatal("same name+labels must return the same counter")
	}
	c := r.Counter("sspd_test_total", "help", L("q", "2"))
	if a == c {
		t.Fatal("different labels must return distinct series")
	}
	a.Add(3)
	if c.Value() != 0 {
		t.Fatalf("series must be independent, got %d", c.Value())
	}
}

func TestRegistryKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("sspd_conflict", "")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge must panic")
		}
	}()
	r.Gauge("sspd_conflict", "")
}

func TestRegistryInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("invalid metric name must panic")
		}
	}()
	r.Counter("0bad name", "")
}

// TestWritePrometheusGolden locks the exposition format: family order,
// HELP/TYPE headers, label rendering and escaping, summary expansion,
// and meter expansion into _bytes_total/_messages_total.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("sspd_events_total", "Event count.", L("event", "join")).Add(4)
	r.Counter("sspd_events_total", "Event count.", L("event", "split")).Add(1)
	r.Gauge("sspd_queries", "Active queries.").Set(7)
	r.FloatGauge("sspd_pr_max", "Worst PR.").Set(2.5)
	h := r.Histogram("sspd_delay_seconds", "Delay.", L("query", "q1"))
	h.Observe(1)
	h.Observe(3)
	m := r.Meter("sspd_relay", "Relay link traffic.", L("stream", "quotes"))
	m.Record(100)
	m.Record(50)
	r.Counter("sspd_escape_total", "", L("v", `a"b\c`)).Inc()
	r.RegisterCollector(func(emit func(Sample)) {
		emit(Sample{Name: "sspd_edge_cut", Help: "Edge cut.", Kind: KindGauge, Value: 12.5})
	})

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# HELP sspd_delay_seconds Delay.
# TYPE sspd_delay_seconds summary
sspd_delay_seconds_count{query="q1"} 2
sspd_delay_seconds_sum{query="q1"} 4
sspd_delay_seconds{query="q1",quantile="0.5"} 1
sspd_delay_seconds{query="q1",quantile="0.95"} 1
sspd_delay_seconds{query="q1",quantile="0.99"} 1
# HELP sspd_edge_cut Edge cut.
# TYPE sspd_edge_cut gauge
sspd_edge_cut 12.5
# TYPE sspd_escape_total counter
sspd_escape_total{v="a\"b\\c"} 1
# HELP sspd_events_total Event count.
# TYPE sspd_events_total counter
sspd_events_total{event="join"} 4
sspd_events_total{event="split"} 1
# HELP sspd_pr_max Worst PR.
# TYPE sspd_pr_max gauge
sspd_pr_max 2.5
# HELP sspd_queries Active queries.
# TYPE sspd_queries gauge
sspd_queries 7
# HELP sspd_relay_bytes_total Relay link traffic. (bytes)
# TYPE sspd_relay_bytes_total counter
sspd_relay_bytes_total{stream="quotes"} 150
# HELP sspd_relay_messages_total Relay link traffic. (messages)
# TYPE sspd_relay_messages_total counter
sspd_relay_messages_total{stream="quotes"} 2
`
	if got := buf.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestRegistryConcurrent exercises create/record/scrape races under the
// race detector.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	r.Histogram("sspd_h_seconds", "h").Observe(0)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := []string{"sspd_a_total", "sspd_b_total"}[g%2]
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				r.Counter(name, "h", L("w", string(rune('a'+i%3)))).Inc()
				r.Histogram("sspd_h_seconds", "h").Observe(float64(i))
			}
		}(g)
	}
	for i := 0; i < 50; i++ {
		var buf bytes.Buffer
		if err := r.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(buf.String(), "# TYPE sspd_h_seconds summary") {
			t.Fatal("scrape missing histogram family")
		}
	}
	close(stop)
	wg.Wait()
}

// TestHistogramSnapshotConsistency detects torn snapshots: every sample
// is exactly 1.0, so any internally consistent snapshot has Mean == 1
// and Sum == float64(Count). The pre-fix implementation read count and
// sum under separate lock acquisitions and failed this under load.
func TestHistogramSnapshotConsistency(t *testing.T) {
	var h Histogram
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					h.Observe(1.0)
				}
			}
		}()
	}
	for i := 0; i < 2000; i++ {
		s := h.Snapshot()
		if s.Count > 0 && s.Mean != 1.0 {
			t.Fatalf("torn snapshot: count=%d sum=%g mean=%g", s.Count, s.Sum, s.Mean)
		}
		if s.Sum != float64(s.Count) {
			t.Fatalf("torn snapshot: count=%d sum=%g", s.Count, s.Sum)
		}
	}
	close(stop)
	wg.Wait()
}
