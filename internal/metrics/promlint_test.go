package metrics

import (
	"bytes"
	"strings"
	"testing"
)

func parseStr(t *testing.T, text string) []PromFamily {
	t.Helper()
	fams, err := ParsePrometheus(strings.NewReader(text))
	if err != nil {
		t.Fatalf("ParsePrometheus: %v", err)
	}
	return fams
}

func wantErr(t *testing.T, text, frag string) {
	t.Helper()
	_, err := ParsePrometheus(strings.NewReader(text))
	if err == nil {
		t.Fatalf("parse accepted %q, want error containing %q", text, frag)
	}
	if !strings.Contains(err.Error(), frag) {
		t.Fatalf("error %q does not contain %q", err, frag)
	}
}

func TestParsePrometheusWellFormed(t *testing.T) {
	fams := parseStr(t, `# HELP sspd_events_total Event count.
# TYPE sspd_events_total counter
sspd_events_total{event="join"} 4
sspd_events_total{event="split"} 1
# TYPE sspd_queries gauge
sspd_queries 7
# HELP sspd_delay_seconds Delay.
# TYPE sspd_delay_seconds summary
sspd_delay_seconds_count{query="q1"} 2
sspd_delay_seconds_sum{query="q1"} 4
sspd_delay_seconds{query="q1",quantile="0.5"} 1
`)
	if len(fams) != 3 {
		t.Fatalf("got %d families, want 3", len(fams))
	}
	if fams[0].Help != "Event count." || fams[0].Type != "counter" || len(fams[0].Samples) != 2 {
		t.Fatalf("bad first family: %+v", fams[0])
	}
	if fams[1].Help != "" {
		t.Fatalf("HELP leaked across families: %+v", fams[1])
	}
	s := fams[2].Samples[2]
	if s.Labels[1].Key != "quantile" || s.Value != 1 {
		t.Fatalf("bad summary sample: %+v", s)
	}
}

func TestParsePrometheusEscapes(t *testing.T) {
	fams := parseStr(t, "# TYPE sspd_escape_total counter\n"+
		`sspd_escape_total{v="a\"b\\c\nd"} 1`+"\n")
	if got := fams[0].Samples[0].Labels[0].Value; got != "a\"b\\c\nd" {
		t.Fatalf("escape round-trip failed: %q", got)
	}
}

func TestParsePrometheusRejections(t *testing.T) {
	wantErr(t, "sspd_orphan 1\n", "outside its family")
	wantErr(t, "# TYPE a_b counter\n# TYPE a_b counter\na_b 1\n", "duplicate family")
	wantErr(t, "# TYPE a_b counter\na_b 1\na_b 2\n", "duplicate series")
	wantErr(t, "# TYPE a_b counter\na_b{z=\"1\",a=\"2\"} 1\n", "not strictly ascending")
	wantErr(t, "# TYPE a_b counter\na_b{a=\"1\",a=\"2\"} 1\n", "not strictly ascending")
	wantErr(t, "# TYPE a_b counter\na_b{quantile=\"0.5\"} 1\n", "on a counter sample")
	wantErr(t, "# TYPE a_b counter\na_b{quantile=\"0.5\",a=\"x\"} 1\n", "not in last position")
	wantErr(t, "# TYPE a_b counter\na_b{a=\"1\"} one\n", "bad value")
	wantErr(t, "# TYPE a_b counter\na_b{a=\"1\" 1\n", "expected ',' or '}'")
	wantErr(t, "# TYPE a_b counter\na_b{a=\"1} 1\n", "unterminated")
	wantErr(t, "# TYPE a_b counter\na_b{a=\"\\q\"} 1\n", "bad escape")
	wantErr(t, "# TYPE a_b counter\na_b{} 1\n", "empty label block")
	wantErr(t, "# TYPE a_b counter\na_b 1 170000\n", "malformed value")
	wantErr(t, "# TYPE a_b frobnitz\na_b 1\n", "unknown metric type")
	wantErr(t, "# HELP a_b text\n# TYPE c_d counter\nc_d 1\n", "followed by TYPE for")
	wantErr(t, "# HELP a_b dangling\n", "not followed by its TYPE")
	wantErr(t, "# TYPE a_b counter\n9bad 1\n", "bad sample name")
	wantErr(t, "# TYPE a_b summary\nother_sum 1\n", "outside its family")
}

// TestRegistryOutputIsStrict round-trips a fully loaded registry through
// the strict parser: the writer must produce no duplicate families and
// keep label ordering stable.
func TestRegistryOutputIsStrict(t *testing.T) {
	r := NewRegistry()
	r.Counter("sspd_events_total", "Event count.", L("event", "join")).Add(4)
	r.Counter("sspd_events_total", "Event count.", L("event", "split")).Inc()
	r.Gauge("sspd_queries", "Active queries.").Set(7)
	r.FloatGauge("sspd_pr_max", "Worst PR.").Set(2.5)
	h := r.Histogram("sspd_delay_seconds", "Delay.", L("query", "q1"))
	h.Observe(1)
	h.Observe(3)
	r.Meter("sspd_relay", "Relay link traffic.", L("stream", "quotes")).Record(100)
	r.Counter("sspd_escape_total", "", L("v", `a"b\c`)).Inc()
	r.RegisterCollector(func(emit func(Sample)) {
		emit(Sample{Name: "sspd_edge_cut", Help: "Edge cut.", Kind: KindGauge, Value: 12.5})
		emit(Sample{Name: "sspd_entity_up", Kind: KindGauge,
			Labels: []Label{L("entity", "e01")}, Value: 1})
		emit(Sample{Name: "sspd_entity_up", Kind: KindGauge,
			Labels: []Label{L("entity", "e00")}, Value: 1})
	})
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	fams, err := ParsePrometheus(&buf)
	if err != nil {
		t.Fatalf("registry output rejected by strict parser: %v", err)
	}
	byName := make(map[string]PromFamily)
	for _, f := range fams {
		byName[f.Name] = f
	}
	if f := byName["sspd_relay_bytes_total"]; f.Type != "counter" || f.Samples[0].Value != 100 {
		t.Fatalf("meter family wrong: %+v", f)
	}
	if f := byName["sspd_delay_seconds"]; f.Type != "summary" || len(f.Samples) != 5 {
		t.Fatalf("summary family wrong: %+v", f)
	}
	if len(byName["sspd_entity_up"].Samples) != 2 {
		t.Fatalf("collector family wrong: %+v", byName["sspd_entity_up"])
	}
}
