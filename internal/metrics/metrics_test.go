package metrics

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	if got := c.Value(); got != 0 {
		t.Fatalf("zero counter = %d, want 0", got)
	}
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	c.Add(-3)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter after negative add = %d, want 5 (monotonic)", got)
	}
	c.Reset()
	if got := c.Value(); got != 0 {
		t.Fatalf("counter after reset = %d, want 0", got)
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perWorker; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("concurrent counter = %d, want %d", got, workers*perWorker)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
}

func TestFloatGauge(t *testing.T) {
	var g FloatGauge
	if got := g.Value(); got != 0 {
		t.Fatalf("zero float gauge = %v, want 0", got)
	}
	g.Set(3.25)
	if got := g.Value(); got != 3.25 {
		t.Fatalf("float gauge = %v, want 3.25", got)
	}
}

func TestByteMeter(t *testing.T) {
	var m ByteMeter
	m.Record(100)
	m.Record(50)
	m.Record(-5) // ignored
	if got := m.Bytes(); got != 150 {
		t.Fatalf("bytes = %d, want 150", got)
	}
	if got := m.Messages(); got != 2 {
		t.Fatalf("messages = %d, want 2", got)
	}
	if rate := m.Rate(time.Second); rate != 150 {
		t.Fatalf("rate = %v, want 150", rate)
	}
	if rate := m.Rate(0); rate != 0 {
		t.Fatalf("rate over zero elapsed = %v, want 0", rate)
	}
	m.Reset()
	if m.Bytes() != 0 || m.Messages() != 0 {
		t.Fatal("reset did not zero the meter")
	}
}

func TestHistogramBasicStats(t *testing.T) {
	var h Histogram
	for _, v := range []float64{1, 2, 3, 4, 5} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("count = %d, want 5", got)
	}
	if got := h.Mean(); got != 3 {
		t.Fatalf("mean = %v, want 3", got)
	}
	if got := h.Min(); got != 1 {
		t.Fatalf("min = %v, want 1", got)
	}
	if got := h.Max(); got != 5 {
		t.Fatalf("max = %v, want 5", got)
	}
	if got := h.Quantile(0.5); got != 3 {
		t.Fatalf("median = %v, want 3", got)
	}
	if got := h.Quantile(0); got != 1 {
		t.Fatalf("q0 = %v, want 1", got)
	}
	if got := h.Quantile(1); got != 5 {
		t.Fatalf("q1 = %v, want 5", got)
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	snap := h.Snapshot()
	if snap.Count != 0 {
		t.Fatalf("empty snapshot count = %d", snap.Count)
	}
}

func TestHistogramQuantileClamping(t *testing.T) {
	var h Histogram
	h.Observe(7)
	if got := h.Quantile(-1); got != 7 {
		t.Fatalf("q(-1) = %v, want 7", got)
	}
	if got := h.Quantile(2); got != 7 {
		t.Fatalf("q(2) = %v, want 7", got)
	}
}

func TestHistogramReservoirOverflow(t *testing.T) {
	var h Histogram
	n := histogramReservoir * 4
	for i := 0; i < n; i++ {
		h.Observe(float64(i))
	}
	if got := h.Count(); got != int64(n) {
		t.Fatalf("count = %d, want %d", got, n)
	}
	// Median of 0..n-1 should be roughly n/2; allow generous sampling error.
	med := h.Quantile(0.5)
	if med < float64(n)/4 || med > 3*float64(n)/4 {
		t.Fatalf("sampled median %v wildly off for uniform 0..%d", med, n-1)
	}
	// Mean is exact regardless of reservoir.
	wantMean := float64(n-1) / 2
	if math.Abs(h.Mean()-wantMean) > 1e-9 {
		t.Fatalf("mean = %v, want %v", h.Mean(), wantMean)
	}
}

func TestHistogramReset(t *testing.T) {
	var h Histogram
	h.Observe(1)
	h.Reset()
	if h.Count() != 0 || h.Mean() != 0 {
		t.Fatal("reset did not clear histogram")
	}
	h.Observe(9)
	if got := h.Min(); got != 9 {
		t.Fatalf("min after reset+observe = %v, want 9", got)
	}
}

func TestHistogramObserveDuration(t *testing.T) {
	var h Histogram
	h.ObserveDuration(1500 * time.Millisecond)
	if got := h.Mean(); got != 1.5 {
		t.Fatalf("duration mean = %v, want 1.5", got)
	}
}

func TestSnapshotString(t *testing.T) {
	var h Histogram
	h.Observe(2)
	s := h.Snapshot().String()
	if s == "" {
		t.Fatal("snapshot string empty")
	}
}

func TestEWMAConvergence(t *testing.T) {
	e := NewEWMA(0.5)
	if e.Initialized() {
		t.Fatal("fresh EWMA should not be initialized")
	}
	e.Update(10)
	if got := e.Value(); got != 10 {
		t.Fatalf("first update = %v, want 10 (seeded)", got)
	}
	for i := 0; i < 50; i++ {
		e.Update(20)
	}
	if got := e.Value(); math.Abs(got-20) > 0.01 {
		t.Fatalf("EWMA did not converge to 20, got %v", got)
	}
}

func TestEWMAInvalidAlpha(t *testing.T) {
	e := NewEWMA(-1)
	e.Update(1)
	e.Update(2)
	v := e.Value()
	if v <= 1 || v >= 2 {
		t.Fatalf("EWMA with defaulted alpha should land between samples, got %v", v)
	}
}

// Property: histogram quantiles are monotone in q and bracketed by min/max.
func TestHistogramQuantileMonotoneProperty(t *testing.T) {
	f := func(samples []float64) bool {
		var h Histogram
		valid := 0
		for _, s := range samples {
			if math.IsNaN(s) || math.IsInf(s, 0) {
				continue
			}
			h.Observe(s)
			valid++
		}
		if valid == 0 {
			return true
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := h.Quantile(q)
			if v < prev {
				return false
			}
			if v < h.Min() || v > h.Max() {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: counter value equals sum of positive deltas.
func TestCounterSumProperty(t *testing.T) {
	f := func(deltas []int16) bool {
		var c Counter
		var want int64
		for _, d := range deltas {
			c.Add(int64(d))
			if d > 0 {
				want += int64(d)
			}
		}
		return c.Value() == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
