package metrics

// Strict Prometheus text-format (0.0.4) parser. It exists for tests:
// scraping /metrics and /cluster/metrics through it asserts the
// exposition is well-formed — every sample belongs to a declared
// family, no family is declared twice, label keys are sorted (with
// quantile/le allowed only as a trailing label), and no series repeats.
// It deliberately rejects a few things real scrapers tolerate
// (samples before their TYPE line, duplicate HELP), because the
// registry never needs them and drift here means a writer bug.

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// PromSample is one parsed sample line.
type PromSample struct {
	Name   string  // full sample name, e.g. sspd_delay_seconds_sum
	Labels []Label // in file order
	Value  float64
	Line   int
}

// PromFamily is one declared metric family and its samples.
type PromFamily struct {
	Name    string
	Help    string
	Type    string // counter, gauge, summary, histogram, untyped
	Samples []PromSample
}

var promTypes = map[string]bool{
	"counter": true, "gauge": true, "summary": true,
	"histogram": true, "untyped": true,
}

func validPromName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		letter := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !letter && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" || strings.ContainsRune(s, ':') {
		return false
	}
	return validPromName(s)
}

// sampleFamily maps a sample name to the family it must belong to,
// honouring the summary/histogram suffix conventions.
func sampleFamily(name, famName, famType string) bool {
	if name == famName {
		return true
	}
	if famType == "summary" || famType == "histogram" {
		base := strings.TrimSuffix(strings.TrimSuffix(name, "_sum"), "_count")
		if famType == "histogram" {
			base = strings.TrimSuffix(base, "_bucket")
		}
		return base == famName && base != name
	}
	return false
}

// ParsePrometheus strictly parses a text-format exposition. Any
// violation returns an error naming the offending line.
func ParsePrometheus(r io.Reader) ([]PromFamily, error) {
	var fams []PromFamily
	byName := make(map[string]int) // family name -> index in fams
	seen := make(map[string]int)   // sample name+labels -> line
	var cur *PromFamily
	pendingHelp := ""
	pendingHelpFor := ""

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			name, help, _ := strings.Cut(rest, " ")
			if !validPromName(name) {
				return nil, fmt.Errorf("line %d: bad HELP metric name %q", lineNo, name)
			}
			if pendingHelpFor != "" {
				return nil, fmt.Errorf("line %d: HELP for %s not followed by its TYPE", lineNo, pendingHelpFor)
			}
			if _, dup := byName[name]; dup {
				return nil, fmt.Errorf("line %d: duplicate HELP for family %s", lineNo, name)
			}
			pendingHelp, pendingHelpFor = help, name
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 {
				return nil, fmt.Errorf("line %d: malformed TYPE line %q", lineNo, line)
			}
			name, typ := fields[0], fields[1]
			if !validPromName(name) {
				return nil, fmt.Errorf("line %d: bad TYPE metric name %q", lineNo, name)
			}
			if !promTypes[typ] {
				return nil, fmt.Errorf("line %d: unknown metric type %q", lineNo, typ)
			}
			if _, dup := byName[name]; dup {
				return nil, fmt.Errorf("line %d: duplicate family %s", lineNo, name)
			}
			if pendingHelpFor != "" && pendingHelpFor != name {
				return nil, fmt.Errorf("line %d: HELP for %s followed by TYPE for %s", lineNo, pendingHelpFor, name)
			}
			fams = append(fams, PromFamily{Name: name, Help: pendingHelp, Type: typ})
			byName[name] = len(fams) - 1
			cur = &fams[len(fams)-1]
			pendingHelp, pendingHelpFor = "", ""
		case strings.HasPrefix(line, "#"):
			// Other comments are legal and ignored.
		default:
			if pendingHelpFor != "" {
				return nil, fmt.Errorf("line %d: HELP for %s not followed by its TYPE", lineNo, pendingHelpFor)
			}
			s, err := parseSampleLine(line, lineNo)
			if err != nil {
				return nil, err
			}
			if cur == nil || !sampleFamily(s.Name, cur.Name, cur.Type) {
				return nil, fmt.Errorf("line %d: sample %s outside its family's TYPE block", lineNo, s.Name)
			}
			if err := checkLabels(s, cur.Type, lineNo); err != nil {
				return nil, err
			}
			sig := s.Name + labelSig(s.Labels)
			if prev, dup := seen[sig]; dup {
				return nil, fmt.Errorf("line %d: duplicate series %s (first at line %d)", lineNo, sig, prev)
			}
			seen[sig] = lineNo
			cur.Samples = append(cur.Samples, s)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if pendingHelpFor != "" {
		return nil, fmt.Errorf("HELP for %s not followed by its TYPE", pendingHelpFor)
	}
	return fams, nil
}

// checkLabels enforces the registry's stable-ordering contract: label
// keys strictly ascending, except quantile (summaries) and le
// (histograms), which must come last.
func checkLabels(s PromSample, famType string, lineNo int) error {
	labels := s.Labels
	if n := len(labels); n > 0 {
		last := labels[n-1].Key
		if last == "quantile" || last == "le" {
			if (last == "quantile" && famType != "summary") ||
				(last == "le" && famType != "histogram") {
				return fmt.Errorf("line %d: label %q on a %s sample", lineNo, last, famType)
			}
			labels = labels[:n-1]
		}
	}
	for i, l := range labels {
		if l.Key == "quantile" || l.Key == "le" {
			return fmt.Errorf("line %d: reserved label %q not in last position", lineNo, l.Key)
		}
		if i > 0 && labels[i-1].Key >= l.Key {
			return fmt.Errorf("line %d: label keys not strictly ascending: %q after %q",
				lineNo, l.Key, labels[i-1].Key)
		}
	}
	return nil
}

func labelSig(labels []Label) string {
	parts := make([]string, len(labels))
	for i, l := range labels {
		parts[i] = l.Key + "=" + l.Value
	}
	sort.Strings(parts)
	return "{" + strings.Join(parts, ",") + "}"
}

func parseSampleLine(line string, lineNo int) (PromSample, error) {
	s := PromSample{Line: lineNo}
	rest := line
	i := strings.IndexAny(rest, "{ ")
	if i < 0 {
		return s, fmt.Errorf("line %d: malformed sample %q", lineNo, line)
	}
	s.Name = rest[:i]
	if !validPromName(s.Name) {
		return s, fmt.Errorf("line %d: bad sample name %q", lineNo, s.Name)
	}
	rest = rest[i:]
	if rest[0] == '{' {
		end, labels, err := parseLabels(rest, lineNo)
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = rest[end:]
	}
	rest = strings.TrimPrefix(rest, " ")
	// Strict: exactly one space, then the value, no trailing timestamp
	// (the registry never writes one).
	if rest == "" || strings.ContainsAny(rest, " \t") {
		return s, fmt.Errorf("line %d: malformed value in %q", lineNo, line)
	}
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		return s, fmt.Errorf("line %d: bad value %q: %v", lineNo, rest, err)
	}
	s.Value = v
	return s, nil
}

// parseLabels parses a {k="v",...} block starting at text[0] == '{' and
// returns the index just past the closing brace.
func parseLabels(text string, lineNo int) (int, []Label, error) {
	var labels []Label
	i := 1 // past '{'
	for {
		if i >= len(text) {
			return 0, nil, fmt.Errorf("line %d: unterminated label block", lineNo)
		}
		if text[i] == '}' {
			if len(labels) == 0 {
				return 0, nil, fmt.Errorf("line %d: empty label block", lineNo)
			}
			return i + 1, labels, nil
		}
		eq := strings.IndexByte(text[i:], '=')
		if eq < 0 {
			return 0, nil, fmt.Errorf("line %d: label without '='", lineNo)
		}
		key := text[i : i+eq]
		if !validLabelName(key) {
			return 0, nil, fmt.Errorf("line %d: bad label name %q", lineNo, key)
		}
		i += eq + 1
		if i >= len(text) || text[i] != '"' {
			return 0, nil, fmt.Errorf("line %d: label %q value not quoted", lineNo, key)
		}
		i++
		var val strings.Builder
		for {
			if i >= len(text) {
				return 0, nil, fmt.Errorf("line %d: unterminated label value for %q", lineNo, key)
			}
			c := text[i]
			if c == '"' {
				i++
				break
			}
			if c == '\\' {
				if i+1 >= len(text) {
					return 0, nil, fmt.Errorf("line %d: dangling escape in label %q", lineNo, key)
				}
				switch text[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return 0, nil, fmt.Errorf("line %d: bad escape \\%c in label %q", lineNo, text[i+1], key)
				}
				i += 2
				continue
			}
			val.WriteByte(c)
			i++
		}
		labels = append(labels, Label{Key: key, Value: val.String()})
		if i < len(text) && text[i] == ',' {
			i++
		} else if i >= len(text) || text[i] != '}' {
			return 0, nil, fmt.Errorf("line %d: expected ',' or '}' after label %q", lineNo, key)
		}
	}
}
