package metrics

import (
	"strings"
	"testing"
)

// TestCollectorHistogramExposition: a collector-emitted HistSample must
// render as a real Prometheus histogram family — cumulative _bucket
// lines with trailing le labels, _sum, _count — and round-trip through
// the strict parser.
func TestCollectorHistogramExposition(t *testing.T) {
	r := NewRegistry()
	r.RegisterCollector(func(emit func(Sample)) {
		emit(Sample{
			Name: "sspd_latency_stage_seconds", Help: "Per-stage latency.",
			Labels: []Label{L("stage", "network")},
			Hist: &HistSample{
				Bounds: []float64{0.001, 0.01, 0.1},
				Counts: []uint64{2, 3, 0, 1}, // +Inf bucket last
				Sum:    0.25,
			},
		})
	})
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	fams, err := ParsePrometheus(strings.NewReader(text))
	if err != nil {
		t.Fatalf("strict parser rejected exposition: %v\n%s", err, text)
	}
	var fam *PromFamily
	for i := range fams {
		if fams[i].Name == "sspd_latency_stage_seconds" {
			fam = &fams[i]
		}
	}
	if fam == nil {
		t.Fatalf("family missing:\n%s", text)
	}
	if fam.Type != "histogram" {
		t.Fatalf("family type = %q, want histogram", fam.Type)
	}
	want := map[string]float64{
		`sspd_latency_stage_seconds_bucket{stage="network",le="0.001"}`: 2,
		`sspd_latency_stage_seconds_bucket{stage="network",le="0.01"}`:  5,
		`sspd_latency_stage_seconds_bucket{stage="network",le="0.1"}`:   5,
		`sspd_latency_stage_seconds_bucket{stage="network",le="+Inf"}`:  6,
		`sspd_latency_stage_seconds_sum{stage="network"}`:               0.25,
		`sspd_latency_stage_seconds_count{stage="network"}`:             6,
	}
	for line, v := range want {
		if !strings.Contains(text, line+" ") {
			t.Errorf("exposition missing %q:\n%s", line, text)
		}
		_ = v
	}
	if len(fam.Samples) != len(want) {
		t.Fatalf("family has %d samples, want %d", len(fam.Samples), len(want))
	}
}

// TestCollectorHistogramMalformed: a Counts/Bounds length mismatch is
// dropped rather than rendered broken.
func TestCollectorHistogramMalformed(t *testing.T) {
	r := NewRegistry()
	r.RegisterCollector(func(emit func(Sample)) {
		emit(Sample{Name: "bad_hist", Hist: &HistSample{
			Bounds: []float64{1}, Counts: []uint64{1}}})
	})
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "bad_hist") {
		t.Fatalf("malformed histogram sample was rendered:\n%s", b.String())
	}
}
