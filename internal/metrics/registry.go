package metrics

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// MetricKind classifies a registered metric family for exposition.
type MetricKind uint8

// Metric kinds. They map onto Prometheus text-format TYPE lines:
// counters and meters expose as "counter", gauges as "gauge", and
// histograms as "summary" (count, sum, and reservoir quantiles).
const (
	KindCounter MetricKind = iota
	KindGauge
	KindFloatGauge
	KindHistogram
	KindMeter
)

func (k MetricKind) String() string {
	switch k {
	case KindCounter, KindMeter:
		return "counter"
	case KindGauge, KindFloatGauge:
		return "gauge"
	case KindHistogram:
		return "summary"
	default:
		return "untyped"
	}
}

// Label is one name="value" pair attached to a metric series.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Sample is one scrape-time value emitted by a Collector.
type Sample struct {
	// Name is the metric family name (e.g. "sspd_pr_max").
	Name string
	// Help is the family's HELP text (the first emitter's wins).
	Help string
	// Kind should be KindCounter or KindGauge; computed summaries are
	// not supported through collectors.
	Kind MetricKind
	// Labels distinguish this series within the family.
	Labels []Label
	// Value is the sample value. Ignored when Hist is set.
	Value float64
	// Hist, when non-nil, renders this sample as a full Prometheus
	// histogram series — cumulative `_bucket` lines with `le` labels,
	// `_sum`, and `_count` — instead of a single Value line. The family
	// is typed `histogram`; Kind is ignored.
	Hist *HistSample
}

// HistSample is the histogram payload of a collector Sample: a
// fixed-boundary bucketed distribution (the latency plane's mergeable
// log-bucket histograms expose through this).
type HistSample struct {
	// Bounds are the finite upper boundaries, ascending. The +Inf bucket
	// is implicit.
	Bounds []float64
	// Counts are per-bucket (non-cumulative) observation counts with the
	// +Inf bucket last; len(Counts) == len(Bounds)+1.
	Counts []uint64
	// Sum is the sum of all observed values.
	Sum float64
}

// Collector computes metrics at scrape time. Collectors let subsystems
// expose values derived from live state (PR ratios, edge cut, tree event
// counts) with zero hot-path cost: nothing is updated until a scrape
// calls the collector.
type Collector func(emit func(Sample))

// Registry is a named, labeled metric registry with a lock-cheap hot
// path: the instruments themselves (Counter, Gauge, ...) are atomics, so
// after a one-time get-or-create the recording side never touches the
// registry lock. Exposition walks the registry under a read lock and
// renders Prometheus text format (version 0.0.4).
type Registry struct {
	mu         sync.RWMutex
	families   map[string]*family
	collectors []Collector
}

type family struct {
	name string
	help string
	kind MetricKind
	// series maps the canonical label signature to the instrument.
	series map[string]*series
}

type series struct {
	labels []Label
	// exactly one of these is non-nil, per the family kind
	counter   *Counter
	gauge     *Gauge
	fgauge    *FloatGauge
	histogram *Histogram
	meter     *ByteMeter
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// validName reports whether s is a legal Prometheus metric/label name.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || r == '_' || r == ':'
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// signature canonicalizes a label set: sorted by key, rendered once.
func signature(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	sorted := make([]Label, len(labels))
	copy(sorted, labels)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	var b strings.Builder
	for i, l := range sorted {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(strconv.Quote(l.Value))
	}
	return b.String()
}

// lookup returns the series for (name, labels), creating family and
// series as needed. It panics on a name/kind conflict or an invalid
// name — both are programmer errors at wiring time, never data-driven.
func (r *Registry) lookup(name, help string, kind MetricKind, labels []Label) *series {
	if !validName(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validName(l.Key) {
			panic(fmt.Sprintf("metrics: invalid label name %q on %q", l.Key, name))
		}
	}
	sig := signature(labels)

	r.mu.RLock()
	fam := r.families[name]
	if fam != nil {
		if s, ok := fam.series[sig]; ok {
			kindOK := fam.kind == kind
			r.mu.RUnlock()
			if !kindOK {
				panic(fmt.Sprintf("metrics: %q re-registered as %v (was %v)", name, kind, fam.kind))
			}
			return s
		}
	}
	r.mu.RUnlock()

	r.mu.Lock()
	defer r.mu.Unlock()
	fam = r.families[name]
	if fam == nil {
		fam = &family{name: name, help: help, kind: kind, series: make(map[string]*series)}
		r.families[name] = fam
	}
	if fam.kind != kind {
		panic(fmt.Sprintf("metrics: %q re-registered as %v (was %v)", name, kind, fam.kind))
	}
	s, ok := fam.series[sig]
	if !ok {
		sorted := make([]Label, len(labels))
		copy(sorted, labels)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
		s = &series{labels: sorted}
		switch kind {
		case KindCounter:
			s.counter = &Counter{}
		case KindGauge:
			s.gauge = &Gauge{}
		case KindFloatGauge:
			s.fgauge = &FloatGauge{}
		case KindHistogram:
			s.histogram = &Histogram{}
		case KindMeter:
			s.meter = &ByteMeter{}
		}
		fam.series[sig] = s
	}
	return s
}

// Counter returns (creating on first use) the named counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return r.lookup(name, help, KindCounter, labels).counter
}

// Gauge returns (creating on first use) the named int gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return r.lookup(name, help, KindGauge, labels).gauge
}

// FloatGauge returns (creating on first use) the named float gauge series.
func (r *Registry) FloatGauge(name, help string, labels ...Label) *FloatGauge {
	return r.lookup(name, help, KindFloatGauge, labels).fgauge
}

// Histogram returns (creating on first use) the named histogram series.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	return r.lookup(name, help, KindHistogram, labels).histogram
}

// Meter returns (creating on first use) the named byte-meter series. It
// exposes as two counter families, <name>_bytes_total and
// <name>_messages_total.
func (r *Registry) Meter(name, help string, labels ...Label) *ByteMeter {
	return r.lookup(name, help, KindMeter, labels).meter
}

// RegisterCollector adds a scrape-time collector.
func (r *Registry) RegisterCollector(c Collector) {
	if c == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collectors = append(r.collectors, c)
}

// escapeHelp escapes a HELP text per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// formatValue renders a float the way Prometheus expects.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// renderLabels renders {k="v",...} (empty string for no labels). extra
// is appended after the sorted labels (used for quantile="...").
func renderLabels(labels []Label, extra ...Label) string {
	if len(labels) == 0 && len(extra) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	n := 0
	for _, l := range labels {
		if n > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, l.Key, escapeLabel(l.Value))
		n++
	}
	for _, l := range extra {
		if n > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, l.Key, escapeLabel(l.Value))
		n++
	}
	b.WriteByte('}')
	return b.String()
}

// expoFamily is one renderable family: header plus pre-rendered lines.
type expoFamily struct {
	name  string
	help  string
	typ   string
	lines []string
}

// WritePrometheus renders every registered metric and collector sample
// in Prometheus text exposition format 0.0.4, families sorted by name
// and series sorted by label signature within each family.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	collectors := make([]Collector, len(r.collectors))
	copy(collectors, r.collectors)
	r.mu.RUnlock()

	out := make(map[string]*expoFamily)
	get := func(name, help, typ string) *expoFamily {
		ef, ok := out[name]
		if !ok {
			ef = &expoFamily{name: name, help: help, typ: typ}
			out[name] = ef
		}
		return ef
	}

	for _, f := range fams {
		sigs := make([]string, 0, len(f.series))
		r.mu.RLock()
		for sig := range f.series {
			sigs = append(sigs, sig)
		}
		sort.Strings(sigs)
		series := make([]*series, 0, len(sigs))
		for _, sig := range sigs {
			series = append(series, f.series[sig])
		}
		r.mu.RUnlock()

		switch f.kind {
		case KindCounter:
			ef := get(f.name, f.help, "counter")
			for _, s := range series {
				ef.lines = append(ef.lines, fmt.Sprintf("%s%s %d", f.name, renderLabels(s.labels), s.counter.Value()))
			}
		case KindGauge:
			ef := get(f.name, f.help, "gauge")
			for _, s := range series {
				ef.lines = append(ef.lines, fmt.Sprintf("%s%s %d", f.name, renderLabels(s.labels), s.gauge.Value()))
			}
		case KindFloatGauge:
			ef := get(f.name, f.help, "gauge")
			for _, s := range series {
				ef.lines = append(ef.lines, fmt.Sprintf("%s%s %s", f.name, renderLabels(s.labels), formatValue(s.fgauge.Value())))
			}
		case KindHistogram:
			ef := get(f.name, f.help, "summary")
			for _, s := range series {
				snap := s.histogram.Snapshot()
				for _, q := range []struct {
					q string
					v float64
				}{{"0.5", snap.P50}, {"0.95", snap.P95}, {"0.99", snap.P99}} {
					ef.lines = append(ef.lines, fmt.Sprintf("%s%s %s", f.name,
						renderLabels(s.labels, L("quantile", q.q)), formatValue(q.v)))
				}
				ef.lines = append(ef.lines, fmt.Sprintf("%s_sum%s %s", f.name, renderLabels(s.labels), formatValue(snap.Sum)))
				ef.lines = append(ef.lines, fmt.Sprintf("%s_count%s %d", f.name, renderLabels(s.labels), snap.Count))
			}
		case KindMeter:
			bf := get(f.name+"_bytes_total", f.help+" (bytes)", "counter")
			mf := get(f.name+"_messages_total", f.help+" (messages)", "counter")
			for _, s := range series {
				bf.lines = append(bf.lines, fmt.Sprintf("%s_bytes_total%s %d", f.name, renderLabels(s.labels), s.meter.Bytes()))
				mf.lines = append(mf.lines, fmt.Sprintf("%s_messages_total%s %d", f.name, renderLabels(s.labels), s.meter.Messages()))
			}
		}
	}

	// Collector samples merge into the same family map; a family name
	// emitted both statically and by a collector keeps the static HELP.
	for _, c := range collectors {
		c(func(s Sample) {
			if !validName(s.Name) {
				return
			}
			sorted := make([]Label, len(s.Labels))
			copy(sorted, s.Labels)
			sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
			if s.Hist != nil {
				if len(s.Hist.Counts) != len(s.Hist.Bounds)+1 {
					return
				}
				ef := get(s.Name, s.Help, "histogram")
				var cum uint64
				for i, b := range s.Hist.Bounds {
					cum += s.Hist.Counts[i]
					ef.lines = append(ef.lines, fmt.Sprintf("%s_bucket%s %d", s.Name,
						renderLabels(sorted, L("le", formatValue(b))), cum))
				}
				cum += s.Hist.Counts[len(s.Hist.Bounds)]
				ef.lines = append(ef.lines, fmt.Sprintf("%s_bucket%s %d", s.Name,
					renderLabels(sorted, L("le", "+Inf")), cum))
				ef.lines = append(ef.lines, fmt.Sprintf("%s_sum%s %s", s.Name,
					renderLabels(sorted), formatValue(s.Hist.Sum)))
				ef.lines = append(ef.lines, fmt.Sprintf("%s_count%s %d", s.Name,
					renderLabels(sorted), cum))
				return
			}
			ef := get(s.Name, s.Help, s.Kind.String())
			ef.lines = append(ef.lines, fmt.Sprintf("%s%s %s", s.Name, renderLabels(sorted), formatValue(s.Value)))
		})
	}

	names := make([]string, 0, len(out))
	for name := range out {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ef := out[name]
		if ef.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", ef.name, escapeHelp(ef.help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", ef.name, ef.typ); err != nil {
			return err
		}
		sort.Strings(ef.lines)
		for _, line := range ef.lines {
			if _, err := fmt.Fprintln(w, line); err != nil {
				return err
			}
		}
	}
	return nil
}
