package entity

import (
	"math"
	"sort"
)

// Network models the intra-entity LAN for the analytic evaluation.
type Network struct {
	// HopLatency is the one-way transfer latency between two
	// processors, in seconds.
	HopLatency float64
	// ProcBandwidth is each processor's usable egress bandwidth in
	// bytes/second; traffic beyond it marks the placement infeasible
	// (the paper's third heuristic exists to avoid this).
	ProcBandwidth float64
}

// DefaultNetwork is a fast local network: 0.5 ms hops, 100 MB/s per
// processor.
var DefaultNetwork = Network{HopLatency: 0.0005, ProcBandwidth: 100e6}

func (n Network) normalized() Network {
	if n.HopLatency <= 0 {
		n.HopLatency = DefaultNetwork.HopLatency
	}
	if n.ProcBandwidth <= 0 {
		n.ProcBandwidth = DefaultNetwork.ProcBandwidth
	}
	return n
}

// Evaluation reports the analytic performance of a placement. The model
// follows the paper's delay decomposition: a tuple's delay is its
// processing time, plus queue waiting on each processor it visits
// (M/M/1-style inflation 1/(1-utilization)), plus one network hop
// latency per processor boundary its pipeline crosses.
type Evaluation struct {
	// PR holds each query's Performance Ratio d/p.
	PR map[string]float64
	// PRMax is the worst ratio — the paper's objective.
	PRMax float64
	// WorstQuery is the query attaining PRMax.
	WorstQuery string
	// MeanPR is the load-unweighted mean ratio.
	MeanPR float64
	// Utilization maps processor to load/capacity.
	Utilization map[string]float64
	// MaxUtilization is the hottest processor's utilization.
	MaxUtilization float64
	// TrafficBytes is the total inter-processor traffic in bytes/s.
	TrafficBytes float64
	// Feasible is false when a processor is saturated (utilization >=
	// 1) or bandwidth is exceeded; PR values are then computed with a
	// capped waiting factor and should be read as "very bad".
	Feasible bool
}

// waitCap bounds the queueing inflation for saturated processors so
// comparisons still order placements sensibly.
const waitCap = 1e4

// Evaluate computes the analytic performance of an assignment.
func Evaluate(procs []Proc, queries []PlacementQuery, asg Assignment, net Network) Evaluation {
	net = net.normalized()
	capacity := make(map[string]float64, len(procs))
	for _, p := range procs {
		capacity[p.ID] = p.Capacity
	}
	load := make(map[string]float64, len(procs))
	egress := make(map[string]float64, len(procs))
	for _, q := range queries {
		for i := range q.Fragments {
			load[asg[FragmentRef{q.ID, i}]] += q.loadOf(i)
		}
	}
	util := make(map[string]float64, len(procs))
	feasible := true
	maxUtil := 0.0
	for _, p := range procs {
		u := load[p.ID] / p.Capacity
		util[p.ID] = u
		if u > maxUtil {
			maxUtil = u
		}
		if u >= 1 {
			feasible = false
		}
	}
	wait := func(proc string) float64 {
		u := util[proc]
		if u >= 1 {
			return waitCap
		}
		w := 1 / (1 - u)
		if w > waitCap {
			return waitCap
		}
		return w
	}

	ev := Evaluation{
		PR:          make(map[string]float64, len(queries)),
		Utilization: util,
		Feasible:    feasible,
	}
	traffic := 0.0
	sumPR := 0.0
	ids := make([]string, 0, len(queries))
	byID := make(map[string]PlacementQuery, len(queries))
	for _, q := range queries {
		ids = append(ids, q.ID)
		byID[q.ID] = q
	}
	sort.Strings(ids)
	for _, id := range ids {
		q := byID[id]
		var inherent, delay float64
		for i := range q.Fragments {
			proc := asg[FragmentRef{q.ID, i}]
			perTuple := q.Fragments[i].Cost / capacity[proc]
			inherent += perTuple
			delay += perTuple * wait(proc)
			if i > 0 {
				prev := asg[FragmentRef{q.ID, i - 1}]
				if prev != proc {
					delay += net.HopLatency
					bytes := q.rateInto(i) * q.TupleSize
					traffic += bytes
					egress[prev] += bytes
				}
			}
		}
		pr := 1.0
		if inherent > 0 {
			pr = delay / inherent
		}
		ev.PR[id] = pr
		sumPR += pr
		if pr > ev.PRMax {
			ev.PRMax = pr
			ev.WorstQuery = id
		}
	}
	for _, p := range procs {
		if egress[p.ID] > net.ProcBandwidth {
			ev.Feasible = false
		}
	}
	ev.MaxUtilization = maxUtil
	ev.TrafficBytes = traffic
	if len(ids) > 0 {
		ev.MeanPR = sumPR / float64(len(ids))
	}
	return ev
}

// MaxSpread returns the largest number of distinct processors any query
// occupies under asg — for checking the distribution-limit heuristic.
func MaxSpread(queries []PlacementQuery, asg Assignment) int {
	max := 0
	for _, q := range queries {
		if s := spreadOf(q, asg); s > max {
			max = s
		}
	}
	return max
}

// Imbalance returns max utilization over mean utilization (1 = perfect).
func (e Evaluation) Imbalance() float64 {
	if len(e.Utilization) == 0 {
		return 1
	}
	sum := 0.0
	for _, u := range e.Utilization {
		sum += u
	}
	mean := sum / float64(len(e.Utilization))
	if mean == 0 {
		return 1
	}
	return e.MaxUtilization / mean
}

// PRQuantile returns the q-quantile of per-query PR values.
func (e Evaluation) PRQuantile(q float64) float64 {
	if len(e.PR) == 0 {
		return 0
	}
	vals := make([]float64, 0, len(e.PR))
	for _, v := range e.PR {
		vals = append(vals, v)
	}
	sort.Float64s(vals)
	idx := int(math.Min(q, 1) * float64(len(vals)-1))
	if idx < 0 {
		idx = 0
	}
	return vals[idx]
}
