package entity

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"sspd/internal/engine"
	"sspd/internal/simnet"
	"sspd/internal/stream"
)

// miniFactory builds synchronous engines so tests observe results
// deterministically after Quiesce.
func miniFactory(name string, c *stream.Catalog) engine.Processor {
	return engine.NewMini(name, c)
}

type resultLog struct {
	mu  sync.Mutex
	got map[string]int
}

func newResultLog() *resultLog { return &resultLog{got: make(map[string]int)} }

func (r *resultLog) handle(queryID string, _ stream.Tuple) {
	r.mu.Lock()
	r.got[queryID]++
	r.mu.Unlock()
}

func (r *resultLog) count(q string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.got[q]
}

func newTestEntity(t *testing.T, nProcs int) (*Entity, *simnet.SimNet, *resultLog) {
	t.Helper()
	net := simnet.NewSim(nil)
	t.Cleanup(func() { net.Close() })
	e, err := New("e1", net, testCatalog(t), nProcs, miniFactory)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	log := newResultLog()
	e.SetResultHandler(log.handle)
	return e, net, log
}

func filterSpec(id string, lo, hi float64) engine.QuerySpec {
	return engine.QuerySpec{
		ID:     id,
		Source: "quotes",
		Filters: []engine.FilterSpec{
			{Field: "price", Lo: lo, Hi: hi, Cost: 1},
			{Field: "volume", Lo: 0, Hi: 1000, Cost: 1},
		},
	}
}

func TestEntityConstruction(t *testing.T) {
	net := simnet.NewSim(nil)
	defer net.Close()
	if _, err := New("", net, testCatalog(t), 1, nil); err == nil {
		t.Error("empty id accepted")
	}
	if _, err := New("e", nil, testCatalog(t), 1, nil); err == nil {
		t.Error("nil transport accepted")
	}
	if _, err := New("e", net, nil, 1, nil); err == nil {
		t.Error("nil catalog accepted")
	}
	e, err := New("e", net, testCatalog(t), 0, nil) // clamps to 1
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if e.NumProcs() != 1 {
		t.Errorf("procs = %d", e.NumProcs())
	}
	if e.ID() != "e" {
		t.Errorf("id = %q", e.ID())
	}
}

func TestEntitySingleFragmentQuery(t *testing.T) {
	e, net, log := newTestEntity(t, 2)
	if err := e.PlaceQuery(filterSpec("q1", 0, 100), 1); err != nil {
		t.Fatal(err)
	}
	e.Ingest(quote(1, "ibm", 50, 5))
	e.Ingest(quote(2, "ibm", 500, 5)) // filtered out
	if !net.Quiesce(time.Second) {
		t.Fatal("quiesce")
	}
	if log.count("q1") != 1 {
		t.Errorf("results = %d, want 1", log.count("q1"))
	}
	if e.Delivered.Value() != 1 {
		t.Errorf("Delivered = %d", e.Delivered.Value())
	}
}

func TestEntityFragmentChainAcrossProcessors(t *testing.T) {
	e, net, log := newTestEntity(t, 3)
	spec := engine.QuerySpec{
		ID:     "q1",
		Source: "quotes",
		Filters: []engine.FilterSpec{
			{Field: "price", Lo: 0, Hi: 100, Cost: 1},
			{Field: "volume", Lo: 0, Hi: 10, Cost: 1},
			{KeyField: "symbol", Keys: []string{"ibm"}, Cost: 1},
		},
	}
	if err := e.PlaceQuery(spec, 3); err != nil {
		t.Fatal(err)
	}
	placement, ok := e.QueryPlacement("q1")
	if !ok || len(placement) != 3 {
		t.Fatalf("placement = %v", placement)
	}
	distinct := map[int]bool{}
	for _, p := range placement {
		distinct[p] = true
	}
	if len(distinct) != 3 {
		t.Fatalf("fragments not spread: %v", placement)
	}
	e.Ingest(quote(1, "ibm", 50, 5))   // passes all three
	e.Ingest(quote(2, "ibm", 50, 500)) // fails volume (fragment 2)
	e.Ingest(quote(3, "goog", 50, 5))  // fails symbol (fragment 3)
	if !net.Quiesce(time.Second) {
		t.Fatal("quiesce")
	}
	if log.count("q1") != 1 {
		t.Errorf("results = %d, want 1", log.count("q1"))
	}
	// Fragment chaining crossed the network: intra-entity links carry
	// addressed feed messages.
	if net.Traffic().TotalMessages() == 0 {
		t.Error("no intra-entity traffic for a spread query")
	}
}

func TestEntityJoinQuery(t *testing.T) {
	e, net, log := newTestEntity(t, 2)
	spec := engine.QuerySpec{
		ID:     "qj",
		Source: "quotes",
		Join: &engine.JoinSpec{
			Stream: "trades", LeftKey: "symbol", RightKey: "symbol",
			Window: stream.CountWindow(10),
		},
	}
	if err := e.PlaceQuery(spec, 2); err != nil { // join never splits
		t.Fatal(err)
	}
	e.Ingest(quote(1, "ibm", 50, 5))
	e.Ingest(stream.NewTuple("trades", 2, time.Unix(2, 0).UTC(),
		stream.String("ibm"), stream.Int(100)))
	if !net.Quiesce(time.Second) {
		t.Fatal("quiesce")
	}
	if log.count("qj") != 1 {
		t.Errorf("join results = %d, want 1", log.count("qj"))
	}
}

func TestEntityDuplicateAndBadQueries(t *testing.T) {
	e, _, _ := newTestEntity(t, 2)
	if err := e.PlaceQuery(filterSpec("q1", 0, 1), 1); err != nil {
		t.Fatal(err)
	}
	if err := e.PlaceQuery(filterSpec("q1", 0, 1), 1); err == nil {
		t.Error("duplicate accepted")
	}
	if err := e.PlaceQuery(engine.QuerySpec{ID: "bad"}, 1); err == nil {
		t.Error("invalid spec accepted")
	}
	if err := e.PlaceQuery(engine.QuerySpec{ID: "q2", Source: "nostream"}, 1); err == nil {
		t.Error("unknown stream accepted")
	}
	// Failed placement must not leave fragments behind.
	if got := e.Queries(); len(got) != 1 || got[0] != "q1" {
		t.Errorf("queries = %v", got)
	}
}

func TestEntityRemoveQuery(t *testing.T) {
	e, net, log := newTestEntity(t, 2)
	if err := e.PlaceQuery(filterSpec("q1", 0, 100), 2); err != nil {
		t.Fatal(err)
	}
	spec, err := e.RemoveQuery("q1")
	if err != nil {
		t.Fatal(err)
	}
	if spec.ID != "q1" {
		t.Errorf("returned spec = %+v", spec)
	}
	if _, err := e.RemoveQuery("q1"); err == nil {
		t.Error("double remove accepted")
	}
	// No more deliveries after removal.
	e.Ingest(quote(1, "ibm", 50, 5))
	net.Quiesce(time.Second)
	if log.count("q1") != 0 {
		t.Errorf("removed query delivered %d", log.count("q1"))
	}
	// Migration round-trip: re-place the returned spec.
	if err := e.PlaceQuery(spec, 1); err != nil {
		t.Fatal(err)
	}
	e.Ingest(quote(2, "ibm", 50, 5))
	net.Quiesce(time.Second)
	if log.count("q1") != 1 {
		t.Errorf("re-placed query delivered %d", log.count("q1"))
	}
}

func TestEntityDelegationSpreadsStreams(t *testing.T) {
	e, _, _ := newTestEntity(t, 3)
	d1 := e.Delegation("quotes")
	d2 := e.Delegation("trades")
	if d1 == d2 {
		t.Errorf("both streams delegated to %s", d1)
	}
	// Stable assignment.
	if e.Delegation("quotes") != d1 {
		t.Error("delegation not stable")
	}
}

func TestEntityInterestAggregation(t *testing.T) {
	e, _, _ := newTestEntity(t, 2)
	if err := e.PlaceQuery(filterSpec("q1", 0, 100), 1); err != nil {
		t.Fatal(err)
	}
	if err := e.PlaceQuery(filterSpec("q2", 500, 600), 1); err != nil {
		t.Fatal(err)
	}
	terms := e.Interest("quotes")
	if len(terms) != 2 {
		t.Fatalf("interest terms = %d", len(terms))
	}
	if got := e.Interest("nostream"); got != nil {
		t.Errorf("interest for unknown stream = %v", got)
	}
	if e.Load() <= 0 {
		t.Error("load not positive with queries placed")
	}
	if loads := e.ProcLoads(); len(loads) != 2 {
		t.Errorf("proc loads = %v", loads)
	}
}

func TestEntityIngestBatch(t *testing.T) {
	e, net, log := newTestEntity(t, 2)
	if err := e.PlaceQuery(filterSpec("q1", 0, 1000), 1); err != nil {
		t.Fatal(err)
	}
	batch := stream.Batch{
		quote(1, "a", 1, 1),
		quote(2, "b", 2, 1),
		stream.NewTuple("trades", 3, time.Unix(3, 0).UTC(),
			stream.String("a"), stream.Int(1)),
	}
	e.IngestBatch(batch)
	if !net.Quiesce(time.Second) {
		t.Fatal("quiesce")
	}
	if log.count("q1") != 2 {
		t.Errorf("batch results = %d, want 2", log.count("q1"))
	}
}

func TestEntityCloseStopsIngest(t *testing.T) {
	e, _, log := newTestEntity(t, 1)
	if err := e.PlaceQuery(filterSpec("q1", 0, 1000), 1); err != nil {
		t.Fatal(err)
	}
	e.Close()
	e.Close() // idempotent
	e.Ingest(quote(1, "a", 1, 1))
	if log.count("q1") != 0 {
		t.Error("closed entity still delivering")
	}
	if err := e.PlaceQuery(filterSpec("q2", 0, 1), 1); err == nil {
		t.Error("place after close accepted")
	}
}

func TestEntityWithFullEngine(t *testing.T) {
	// The same scenario through the asynchronous engine implementation.
	net := simnet.NewSim(nil)
	defer net.Close()
	e, err := New("e1", net, testCatalog(t), 2, nil) // default full engine
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	log := newResultLog()
	e.SetResultHandler(log.handle)
	if err := e.PlaceQuery(filterSpec("q1", 0, 100), 2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		e.Ingest(quote(uint64(i), "ibm", 50, 5))
	}
	deadline := time.Now().Add(2 * time.Second)
	for log.count("q1") < 50 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := log.count("q1"); got != 50 {
		t.Errorf("full-engine results = %d, want 50", got)
	}
}

func TestEntityReplaceQuery(t *testing.T) {
	e, net, log := newTestEntity(t, 3)
	if err := e.PlaceQuery(filterSpec("q1", 0, 1000), 2); err != nil {
		t.Fatal(err)
	}
	if err := e.ReplaceQuery("q1", 1); err != nil {
		t.Fatal(err)
	}
	placement, ok := e.QueryPlacement("q1")
	if !ok || len(placement) != 1 {
		t.Fatalf("placement after replace = %v/%v", placement, ok)
	}
	// Still processes.
	e.Ingest(quote(1, "ibm", 50, 5))
	if !net.Quiesce(time.Second) {
		t.Fatal("quiesce")
	}
	if log.count("q1") != 1 {
		t.Fatalf("results = %d", log.count("q1"))
	}
	if err := e.ReplaceQuery("nope", 1); err == nil {
		t.Error("replacing unknown query accepted")
	}
}

func TestEntityRebalanceOnce(t *testing.T) {
	e, _, _ := newTestEntity(t, 2)
	// Pile load on one processor by placing heavy queries while the
	// other stays idle: PlaceQuery picks least-loaded, so alternate —
	// instead force imbalance by weighting.
	heavy := filterSpec("big", 0, 1000)
	heavy.Load = 100
	if err := e.PlaceQuery(heavy, 1); err != nil {
		t.Fatal(err)
	}
	light := filterSpec("small", 0, 1000)
	light.Load = 1
	if err := e.PlaceQuery(light, 1); err != nil {
		t.Fatal(err)
	}
	// Queries landed on different procs (least-loaded rule): imbalance
	// is high but moving cannot help the big one; the lightest query on
	// the hot proc is "big" itself.
	moved, err := e.RebalanceOnce(1.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !moved {
		t.Fatal("imbalanced entity did not move anything")
	}
	// After the move the query still exists.
	if _, ok := e.QueryPlacement("big"); !ok {
		t.Fatal("big query lost in rebalance")
	}
	// Balanced entity: no move.
	e2, _, _ := newTestEntity(t, 2)
	a := filterSpec("a", 0, 1)
	a.Load = 5
	b := filterSpec("b", 0, 1)
	b.Load = 5
	if err := e2.PlaceQuery(a, 1); err != nil {
		t.Fatal(err)
	}
	if err := e2.PlaceQuery(b, 1); err != nil {
		t.Fatal(err)
	}
	moved, err = e2.RebalanceOnce(1.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if moved {
		t.Fatal("balanced entity moved a query")
	}
}

func TestPlaceQueryAdaptiveCorrectness(t *testing.T) {
	e, net, log := newTestEntity(t, 3)
	spec := engine.QuerySpec{
		ID:     "qa",
		Source: "quotes",
		Filters: []engine.FilterSpec{
			{Field: "price", Lo: 0, Hi: 100, Cost: 1},
			{Field: "volume", Lo: 0, Hi: 10, Cost: 1},
			{KeyField: "symbol", Keys: []string{"ibm"}, Cost: 1},
		},
	}
	if err := e.PlaceQueryAdaptive(spec, 3, 2); err != nil {
		t.Fatal(err)
	}
	// Replicated placement: 1 + 2 + 1 = 4 registrations.
	placement, ok := e.QueryPlacement("qa")
	if !ok || len(placement) != 4 {
		t.Fatalf("placement = %v", placement)
	}
	for i := 0; i < 30; i++ {
		e.Ingest(quote(uint64(i), "ibm", 50, 5)) // passes everything
	}
	e.Ingest(quote(99, "ibm", 50, 500)) // fails volume in the middle stage
	if !net.Quiesce(2 * time.Second) {
		t.Fatal("quiesce")
	}
	if got := log.count("qa"); got != 30 {
		t.Fatalf("results = %d, want exactly 30 (no duplication, no loss)", got)
	}
	// Removal cleans up every replica.
	if _, err := e.RemoveQuery("qa"); err != nil {
		t.Fatal(err)
	}
	e.Ingest(quote(200, "ibm", 50, 5))
	net.Quiesce(time.Second)
	if got := log.count("qa"); got != 30 {
		t.Fatalf("results after removal = %d", got)
	}
}

func TestPlaceQueryAdaptiveAvoidsLoadedReplica(t *testing.T) {
	e, net, log := newTestEntity(t, 3)
	spec := engine.QuerySpec{
		ID:     "qa",
		Source: "quotes",
		Filters: []engine.FilterSpec{
			{Field: "price", Lo: 0, Hi: 1000, Cost: 1},
			{Field: "volume", Lo: 0, Hi: 1000, Cost: 1},
			{KeyField: "symbol", Keys: []string{"ibm", "msft", "goog"}, Cost: 1},
		},
	}
	if err := e.PlaceQueryAdaptive(spec, 3, 2); err != nil {
		t.Fatal(err)
	}
	placement, _ := e.QueryPlacement("qa")
	// Flattened layout: [frag0, frag1@r0, frag1@r1, frag2].
	replicaA, replicaB := placement[1], placement[2]
	// Load replica A's processor with heavy dummy queries.
	for i := 0; i < 5; i++ {
		dummy := filterSpec(fmt.Sprintf("heavy%d", i), 0, 1)
		dummy.Load = 50
		// Place directly on replica A's engine to weigh it down.
		if err := e.procs[replicaA].eng.Register(dummy, nil); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 200; i++ {
		e.Ingest(quote(uint64(i), "ibm", 50, 5))
	}
	if !net.Quiesce(2 * time.Second) {
		t.Fatal("quiesce")
	}
	if got := log.count("qa"); got != 200 {
		t.Fatalf("results = %d, want 200", got)
	}
	// The middle fragment ran mostly on the light replica.
	miniA := e.procs[replicaA].eng.(*engine.MiniEngine)
	miniB := e.procs[replicaB].eng.(*engine.MiniEngine)
	servedA := miniA.Results("qa#1@r0")
	servedB := miniB.Results("qa#1@r1")
	if servedA+servedB != 200 {
		t.Fatalf("replica results %d+%d != 200", servedA, servedB)
	}
	if servedB <= servedA*3 {
		t.Errorf("adaptive routing did not avoid the loaded replica: A=%d B=%d", servedA, servedB)
	}
}
