// Live-migration primitives: the entity-level half of the
// pause→drain→snapshot→transfer→resume protocol (DESIGN.md §10).
//
// Pausing a query closes an ingest gate at the delegation fan-out: head
// fragment input is buffered instead of delivered, so no tuple is lost
// while the query's operator state is in transit. The destination places
// the same spec in paused mode (PrepareQuery), restores the snapshot,
// and CommitQuery replays the union of the source's and destination's
// pause buffers — deduplicated by (stream, seq) and replayed in seq
// order — before reopening the gate.
package entity

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"sspd/internal/engine"
	"sspd/internal/stream"
)

// maxPauseBuffer bounds the tuples a paused query will hold; overflow is
// dropped and counted, mirroring the engine's bounded-queue policy.
const maxPauseBuffer = 1 << 16

// replayChunk bounds how many buffered tuples are fed between engine
// drains on resume, so replay cannot overflow the engine's input queue
// (queueDepth = 1024).
const replayChunk = 512

// ingestGate sits between the delegation fan-out and a query's head
// fragment. While paused it buffers batches instead of delivering them.
// With dedup on (checkpointing federations) it also tracks per-stream
// high-water marks and drops tuples at or below them, so a bounded
// upstream replay after recovery is idempotent: tuples already
// reflected in the restored checkpoint state are filtered here.
type ingestGate struct {
	mu       sync.Mutex
	paused   bool
	buf      stream.Batch
	overflow int
	// dedup enables mark tracking + stale-tuple filtering. Opt-in: it
	// assumes per-stream monotone delivery, which only checkpointing
	// federations (no reorder faults on the tuple path) guarantee.
	dedup bool
	marks map[string]uint64
	stale int64
}

// admit returns the sub-batch the caller should deliver: the input
// unchanged on the open fast path, a filtered copy when dedup dropped
// stale tuples, or nil when the gate consumed everything (paused, or
// fully stale).
func (g *ingestGate) admit(b stream.Batch) stream.Batch {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.paused {
		room := maxPauseBuffer - len(g.buf)
		if room <= 0 {
			g.overflow += len(b)
			return nil
		}
		if len(b) > room {
			g.overflow += len(b) - room
			b = b[:room]
		}
		g.buf = append(g.buf, b...)
		return nil
	}
	if !g.dedup {
		return b
	}
	return g.filterLocked(b)
}

// filterLocked drops tuples at or below their stream's mark and
// advances the marks past the admitted ones. The no-stale common case
// returns the input batch without allocating.
func (g *ingestGate) filterLocked(b stream.Batch) stream.Batch {
	stale := 0
	for _, t := range b {
		if t.Seq <= g.marks[t.Stream] {
			stale++
		}
	}
	if stale == 0 {
		for _, t := range b {
			g.markLocked(t.Stream, t.Seq)
		}
		return b
	}
	g.stale += int64(stale)
	if stale == len(b) {
		return nil
	}
	out := make(stream.Batch, 0, len(b)-stale)
	for _, t := range b {
		if t.Seq <= g.marks[t.Stream] {
			continue
		}
		g.markLocked(t.Stream, t.Seq)
		out = append(out, t)
	}
	return out
}

func (g *ingestGate) markLocked(streamName string, seq uint64) {
	if g.marks == nil {
		g.marks = make(map[string]uint64, 2)
	}
	if seq > g.marks[streamName] {
		g.marks[streamName] = seq
	}
}

func (g *ingestGate) setDedup(on bool) {
	g.mu.Lock()
	g.dedup = on
	g.mu.Unlock()
}

// setMarks replaces the gate's high-water marks — recovery installs the
// restored checkpoint's marks here so the post-checkpoint replay dedups
// against the restored state.
func (g *ingestGate) setMarks(marks map[string]uint64) {
	g.mu.Lock()
	g.marks = make(map[string]uint64, len(marks))
	for s, seq := range marks {
		g.marks[s] = seq
	}
	g.mu.Unlock()
}

// marksCopy snapshots the current high-water marks.
func (g *ingestGate) marksCopy() map[string]uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make(map[string]uint64, len(g.marks))
	for s, seq := range g.marks {
		out[s] = seq
	}
	return out
}

func (g *ingestGate) staleCount() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.stale
}

func (g *ingestGate) pause() {
	g.mu.Lock()
	g.paused = true
	g.mu.Unlock()
}

// take removes and returns the buffered tuples, leaving the gate paused.
func (g *ingestGate) take() (stream.Batch, int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	buf, overflow := g.buf, g.overflow
	g.buf, g.overflow = nil, 0
	return buf, overflow
}

// open replays prepend + the gate's own buffer through feed and unpauses
// — atomically, so a live batch arriving during the replay cannot
// overtake it (admit blocks on the gate mutex until the gate is
// open; the feed path never re-enters the gate). With dedup on, the
// merged replay is additionally filtered by the high-water marks, so a
// recovery replay feeds only tuples newer than the restored checkpoint.
func (g *ingestGate) open(prepend stream.Batch, feed func(stream.Batch)) (replayed, dropped int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	merged := mergeReplay(prepend, g.buf)
	if g.dedup {
		merged = g.filterLocked(merged)
	}
	if len(merged) > 0 && feed != nil {
		feed(merged)
	}
	dropped = g.overflow
	g.buf, g.overflow = nil, 0
	g.paused = false
	return len(merged), dropped
}

// mergeReplay unions two pause buffers, deduplicates by (stream, seq) —
// during the interest-overlap window the same tuple can reach both the
// source and the destination — and sorts by sequence so the replay
// reconstructs arrival order.
func mergeReplay(a, b stream.Batch) stream.Batch {
	if len(a) == 0 && len(b) == 0 {
		return nil
	}
	type key struct {
		stream string
		seq    uint64
	}
	seen := make(map[key]struct{}, len(a)+len(b))
	merged := make(stream.Batch, 0, len(a)+len(b))
	for _, src := range []stream.Batch{a, b} {
		for _, t := range src {
			k := key{t.Stream, t.Seq}
			if _, dup := seen[k]; dup {
				continue
			}
			seen[k] = struct{}{}
			merged = append(merged, t)
		}
	}
	sort.SliceStable(merged, func(i, j int) bool { return merged[i].Seq < merged[j].Seq })
	return merged
}

// lookupQuery resolves a placed query and its per-fragment processors.
func (e *Entity) lookupQuery(id string) (*placedQuery, []*procNode, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	pq, ok := e.queries[id]
	if !ok {
		return nil, nil, fmt.Errorf("entity %s: unknown query %s", e.id, id)
	}
	procs := make([]*procNode, len(pq.frags))
	for i := range pq.frags {
		procs[i] = e.procs[pq.procs[i]]
	}
	return pq, procs, nil
}

// PrepareQuery places a query with its ingest gate closed: fragments are
// registered and the entity's Interest immediately includes the query
// (so dissemination trees start delivering), but every arriving tuple is
// buffered until CommitQuery. The destination half of live migration.
func (e *Entity) PrepareQuery(spec engine.QuerySpec, nFrags int) error {
	return e.place(spec, nFrags, true)
}

// PauseQuery closes a placed query's ingest gate; head-fragment input is
// buffered from this point on. Idempotent.
func (e *Entity) PauseQuery(id string) error {
	pq, _, err := e.lookupQuery(id)
	if err != nil {
		return err
	}
	pq.gate.pause()
	return nil
}

// ResumeQuery reopens a paused query's gate in place, replaying its own
// buffered tuples first — the rollback path when a migration aborts.
// It reports how many tuples were replayed.
func (e *Entity) ResumeQuery(id string) (int, error) {
	pq, procs, err := e.lookupQuery(id)
	if err != nil {
		return 0, err
	}
	replayed, _ := pq.gate.open(nil, e.headFeeder(pq, procs))
	return replayed, nil
}

// CommitQuery reopens a prepared query's gate, replaying the source's
// pause buffer merged with the destination's own — the final step of a
// migration. It reports replayed and overflow-dropped counts.
func (e *Entity) CommitQuery(id string, fromSource stream.Batch) (replayed, dropped int, err error) {
	pq, procs, err := e.lookupQuery(id)
	if err != nil {
		return 0, 0, err
	}
	replayed, dropped = pq.gate.open(fromSource, e.headFeeder(pq, procs))
	return replayed, dropped, nil
}

// CompleteMigration detaches a paused query from this entity: the query
// is removed (fan-out targets first, so nothing new is buffered) and the
// pause buffer is handed back for replay at the destination.
func (e *Entity) CompleteMigration(id string) (engine.QuerySpec, stream.Batch, error) {
	pq, _, err := e.lookupQuery(id)
	if err != nil {
		return engine.QuerySpec{}, nil, err
	}
	spec, err := e.RemoveQuery(id)
	if err != nil {
		return engine.QuerySpec{}, nil, err
	}
	buf, _ := pq.gate.take()
	return spec, buf, nil
}

// headFeeder builds a closure delivering a batch to the query's head
// fragment in bounded chunks, draining the engine between chunks so a
// large replay cannot overflow the fragment's input queue.
func (e *Entity) headFeeder(pq *placedQuery, procs []*procNode) func(stream.Batch) {
	head := pq.frags[0].ID
	p := procs[0]
	return func(b stream.Batch) {
		type drainer interface{ Drain(time.Duration) bool }
		bf, batchFeed := p.feeder.(engine.BatchFeeder)
		for len(b) > 0 {
			n := replayChunk
			if len(b) < n {
				n = len(b)
			}
			chunk := b[:n]
			b = b[n:]
			if batchFeed {
				_ = bf.FeedQueryBatch(head, chunk)
			} else {
				for _, t := range chunk {
					_ = p.feeder.FeedQuery(head, t)
				}
			}
			if len(b) > 0 {
				if d, ok := p.eng.(drainer); ok {
					d.Drain(time.Second)
				}
			}
		}
	}
}

// DrainQuery waits until the query's hosting engines go idle, so a
// snapshot taken afterwards includes every tuple delivered before the
// pause. Engines without a Drain degrade to a short grace sleep.
func (e *Entity) DrainQuery(id string, timeout time.Duration) error {
	_, procs, err := e.lookupQuery(id)
	if err != nil {
		return err
	}
	type drainer interface{ Drain(time.Duration) bool }
	drained := false
	for _, p := range procs {
		if d, ok := p.eng.(drainer); ok {
			d.Drain(timeout)
			drained = true
		}
	}
	if !drained {
		time.Sleep(10 * time.Millisecond)
	}
	return nil
}

// SnapshotQuery serializes a paused query's operator state per fragment.
// ok is false (with no error) when a hosting engine lacks the
// StateSnapshotter capability — the caller degrades to a stateless
// (buffer-replay-only) migration.
func (e *Entity) SnapshotQuery(id string) (st map[string]engine.QueryState, bytes int, ok bool, err error) {
	pq, procs, err := e.lookupQuery(id)
	if err != nil {
		return nil, 0, false, err
	}
	st = make(map[string]engine.QueryState, len(pq.frags))
	for i, frag := range pq.frags {
		ss, can := procs[i].eng.(engine.StateSnapshotter)
		if !can {
			return nil, 0, false, nil
		}
		qs, err := ss.SnapshotQueryState(frag.ID)
		if err != nil {
			return nil, 0, false, err
		}
		st[frag.ID] = qs
		bytes += qs.Bytes()
	}
	return st, bytes, true, nil
}

// RestoreQuery installs a snapshot into a prepared query, fragment by
// fragment. Fragment IDs are deterministic in the spec (SplitSpec), so
// source and destination placements agree on them.
func (e *Entity) RestoreQuery(id string, st map[string]engine.QueryState) error {
	pq, procs, err := e.lookupQuery(id)
	if err != nil {
		return err
	}
	for i, frag := range pq.frags {
		qs, has := st[frag.ID]
		if !has {
			continue
		}
		ss, can := procs[i].eng.(engine.StateSnapshotter)
		if !can {
			return fmt.Errorf("entity %s: engine for fragment %s cannot restore state", e.id, frag.ID)
		}
		if err := ss.RestoreQueryState(frag.ID, qs); err != nil {
			return err
		}
	}
	return nil
}

// QueryStateBytes estimates a placed query's total operator-state size —
// the cost side of the adaptation controller's hysteresis check. ok is
// false when the query is unknown or an engine lacks the capability.
func (e *Entity) QueryStateBytes(id string) (int, bool) {
	pq, procs, err := e.lookupQuery(id)
	if err != nil {
		return 0, false
	}
	total := 0
	for i, frag := range pq.frags {
		ss, can := procs[i].eng.(engine.StateSnapshotter)
		if !can {
			return 0, false
		}
		n, has := ss.QueryStateBytes(frag.ID)
		if !has {
			return 0, false
		}
		total += n
	}
	return total, true
}
