package entity

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"sspd/internal/engine"
	"sspd/internal/operator"
	"sspd/internal/stream"
)

func testCatalog(t testing.TB) *stream.Catalog {
	t.Helper()
	c := stream.NewCatalog()
	if err := c.Register(stream.MustSchema("quotes",
		stream.Field{Name: "symbol", Type: stream.KindString, Card: 100},
		stream.Field{Name: "price", Type: stream.KindFloat, Lo: 0, Hi: 1000},
		stream.Field{Name: "volume", Type: stream.KindInt, Lo: 0, Hi: 1000},
	)); err != nil {
		t.Fatal(err)
	}
	if err := c.Register(stream.MustSchema("trades",
		stream.Field{Name: "symbol", Type: stream.KindString, Card: 100},
		stream.Field{Name: "qty", Type: stream.KindInt, Lo: 0, Hi: 1000},
	)); err != nil {
		t.Fatal(err)
	}
	return c
}

func quote(seq uint64, symbol string, price float64, volume int64) stream.Tuple {
	return stream.NewTuple("quotes", seq, time.Unix(int64(seq), 0).UTC(),
		stream.String(symbol), stream.Float(price), stream.Int(volume))
}

func TestOptimalFilterOrder(t *testing.T) {
	// rank = cost/(1-sel): f0: 1/(1-0.9)=10, f1: 1/(1-0.1)=1.11,
	// f2: 5/(1-0.5)=10 -> order f1, f0, f2 (tie by stability f0 first).
	costs := []float64{1, 1, 5}
	sels := []float64{0.9, 0.1, 0.5}
	perm := OptimalFilterOrder(costs, sels)
	if perm[0] != 1 {
		t.Errorf("perm = %v, want f1 first", perm)
	}
	// Non-reducing filters sort last.
	perm2 := OptimalFilterOrder([]float64{1, 1}, []float64{1.0, 0.5})
	if perm2[0] != 1 || perm2[1] != 0 {
		t.Errorf("perm = %v, want selective filter first", perm2)
	}
	if got := OptimalFilterOrder(nil, nil); len(got) != 0 {
		t.Errorf("empty perm = %v", got)
	}
}

func TestExpectedFilterCost(t *testing.T) {
	costs := []float64{1, 2}
	sels := []float64{0.5, 0.5}
	// Order (0,1): 1 + 0.5*2 = 2. Order (1,0): 2 + 0.5*1 = 2.5.
	if got := ExpectedFilterCost(costs, sels, []int{0, 1}); got != 2 {
		t.Errorf("cost(0,1) = %v", got)
	}
	if got := ExpectedFilterCost(costs, sels, []int{1, 0}); got != 2.5 {
		t.Errorf("cost(1,0) = %v", got)
	}
}

// Property: the rank ordering is no worse than any other order we try.
func TestOptimalOrderBeatsRandomProperty(t *testing.T) {
	f := func(rawCosts, rawSels []uint8, shuffle uint8) bool {
		n := len(rawCosts)
		if len(rawSels) < n {
			n = len(rawSels)
		}
		if n < 2 {
			return true
		}
		if n > 6 {
			n = 6
		}
		costs := make([]float64, n)
		sels := make([]float64, n)
		for i := 0; i < n; i++ {
			costs[i] = 1 + float64(rawCosts[i]%10)
			sels[i] = float64(rawSels[i]%100) / 100
		}
		best := OptimalFilterOrder(costs, sels)
		bestCost := ExpectedFilterCost(costs, sels, best)
		// Compare against a rotated order.
		other := make([]int, n)
		for i := range other {
			other[i] = (i + int(shuffle)%n) % n
		}
		return bestCost <= ExpectedFilterCost(costs, sels, other)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAMAdaptsToSelectivityShift(t *testing.T) {
	catalog := testCatalog(t)
	spec := engine.QuerySpec{
		ID:     "q",
		Source: "quotes",
		Filters: []engine.FilterSpec{
			{Field: "price", Lo: 0, Hi: 1000, Cost: 1}, // passes everything
			{Field: "volume", Lo: 0, Hi: 100, Cost: 1}, // selective
		},
	}
	q, err := engine.Compile(spec, catalog, nil)
	if err != nil {
		t.Fatal(err)
	}
	am, err := NewAM(q, 64, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	// Workload: volume mostly 500 (filter 1 rejects), price always in
	// range (filter 0 useless). The AM should move filter 1 first.
	for i := 0; i < 500; i++ {
		am.Feed("quotes", quote(uint64(i), "ibm", 500, 500))
	}
	if am.Adaptations.Value() == 0 {
		t.Fatal("AM never adapted")
	}
	costs := q.FilterCosts()
	sels := q.FilterSelectivities()
	if sels[0] > sels[1] {
		t.Errorf("selective filter not first: sels=%v costs=%v", sels, costs)
	}
}

func TestAMErrorsAndDefaults(t *testing.T) {
	if _, err := NewAM(nil, 0, 0); err == nil {
		t.Error("nil query accepted")
	}
	catalog := testCatalog(t)
	q, err := engine.Compile(engine.QuerySpec{
		ID: "q", Source: "quotes",
		Filters: []engine.FilterSpec{{Field: "price", Lo: 0, Hi: 1, Cost: 1}},
	}, catalog, nil)
	if err != nil {
		t.Fatal(err)
	}
	am, err := NewAM(q, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Single filter: adaptation is a no-op but must not crash.
	for i := 0; i < 600; i++ {
		am.Feed("quotes", quote(uint64(i), "a", 0.5, 1))
	}
	if am.Adaptations.Value() != 0 {
		t.Error("single-filter query adapted")
	}
	if am.Query() != q {
		t.Error("Query accessor")
	}
}

func TestAMReducesWorkAfterShift(t *testing.T) {
	// Two identical queries fed the same shifted workload: one behind an
	// AM, one static. After the shift the AM's total operator
	// evaluations must be lower.
	catalog := testCatalog(t)
	mkQuery := func() *engine.Query {
		q, err := engine.Compile(engine.QuerySpec{
			ID:     "q",
			Source: "quotes",
			Filters: []engine.FilterSpec{
				{Field: "price", Lo: 0, Hi: 500, Cost: 1},
				{Field: "volume", Lo: 0, Hi: 10, Cost: 1},
			},
		}, catalog, nil)
		if err != nil {
			t.Fatal(err)
		}
		return q
	}
	adaptive := mkQuery()
	static := mkQuery()
	am, err := NewAM(adaptive, 50, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	feedBoth := func(tu stream.Tuple) {
		am.Feed("quotes", tu)
		static.Feed("quotes", tu)
	}
	// Phase 1: both filters pass ~everything (volume <= 10, price low).
	for i := 0; i < 200; i++ {
		feedBoth(quote(uint64(i), "a", 100, 5))
	}
	// Phase 2 (the shift): volume huge -> filter 1 rejects everything;
	// static order evaluates the useless price filter first forever.
	for i := 200; i < 2000; i++ {
		feedBoth(quote(uint64(i), "a", 100, 999))
	}
	work := func(q *engine.Query) int64 {
		var sum int64
		for _, op := range q.Operators() {
			sum += op.Stats().In()
		}
		return sum
	}
	if am.Adaptations.Value() == 0 {
		t.Fatal("AM never adapted after the shift")
	}
	if work(adaptive) >= work(static) {
		t.Errorf("adaptive work %d not below static %d", work(adaptive), work(static))
	}
}

func TestDownstreamChooser(t *testing.T) {
	if _, err := NewDownstreamChooser(nil, 0); err == nil {
		t.Error("empty candidates accepted")
	}
	if _, err := NewDownstreamChooser([]string{"a", "a"}, 0); err == nil {
		t.Error("duplicate candidates accepted")
	}
	c, err := NewDownstreamChooser([]string{"slow", "fast"}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	// Unmeasured candidates get explored first.
	first := c.Choose()
	c.Report(first, 0.5)
	second := c.Choose()
	if second == first {
		t.Fatalf("second choice %q should explore the unmeasured candidate", second)
	}
	c.Report("fast", 0.001)
	c.Report("slow", 0.5)
	for i := 0; i < 20; i++ {
		c.Report("fast", 0.001)
		c.Report("slow", 0.5)
	}
	picks := map[string]int{}
	for i := 0; i < 100; i++ {
		picks[c.Choose()]++
	}
	if picks["fast"] < 90 {
		t.Errorf("fast picked %d/100, want ~all", picks["fast"])
	}
	if got := c.Score("slow"); math.Abs(got-0.5) > 0.1 {
		t.Errorf("slow score = %v", got)
	}
	if got := c.Score("unknown"); got != 0 {
		t.Errorf("unknown score = %v", got)
	}
	c.Report("unknown", 1) // ignored, no panic
}

func TestDownstreamChooserExploration(t *testing.T) {
	c, err := NewDownstreamChooser([]string{"a", "b"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	c.Report("a", 0.001)
	c.Report("b", 10)
	picks := map[string]int{}
	for i := 0; i < 100; i++ {
		picks[c.Choose()]++
	}
	// Every 2nd pick explores round-robin, so b still gets traffic.
	if picks["b"] == 0 {
		t.Error("exploration never picked the slow candidate")
	}
}

// TestDownstreamChooserColdStartRotation pins the cold-start fix: while
// candidates are unmeasured, successive picks rotate through them
// instead of herding the whole feedback round-trip window onto the
// first candidate in sorted order.
func TestDownstreamChooserColdStartRotation(t *testing.T) {
	c, err := NewDownstreamChooser([]string{"a", "b", "c"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	picks := map[string]int{}
	for i := 0; i < 9; i++ {
		picks[c.Choose()]++
	}
	for _, id := range []string{"a", "b", "c"} {
		if picks[id] != 3 {
			t.Fatalf("cold-start picks unbalanced: %v", picks)
		}
	}
	// Once one candidate is measured, rotation continues over the rest.
	c.Report("a", 0.5)
	next := map[string]bool{}
	for i := 0; i < 4; i++ {
		next[c.Choose()] = true
	}
	if next["a"] || !next["b"] || !next["c"] {
		t.Fatalf("partial cold-start picks = %v, want rotation over b,c only", next)
	}
}

// TestDownstreamChooserExploreSkipsBest pins the explore-tick fix: an
// exploration slot must probe a NON-best candidate — regular traffic
// already measures the best one continuously.
func TestDownstreamChooserExploreSkipsBest(t *testing.T) {
	c, err := NewDownstreamChooser([]string{"a", "b", "c"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	c.Report("a", 0.001)
	c.Report("b", 1)
	c.Report("c", 1)
	explored := map[string]int{}
	for i := 0; i < 100; i++ {
		if pick := c.Choose(); pick != "a" {
			explored[pick]++
		}
	}
	if explored["b"] == 0 || explored["c"] == 0 {
		t.Fatalf("explore ticks did not cover both non-best candidates: %v", explored)
	}
	if got := c.RoutedCount(); got != 100 {
		t.Fatalf("RoutedCount = %d, want 100", got)
	}
	if got := c.ExploredCount(); got == 0 {
		t.Fatal("ExploredCount = 0 after 100 explore-eligible picks")
	}
}

// TestDownstreamChooserConcurrency hammers Choose/Report/Best/Score
// from competing goroutines — the production shape, where upstream
// fragment goroutines route while the AM plane reports trace-measured
// delays. Run under -race; also asserts every pick stays valid.
func TestDownstreamChooserConcurrency(t *testing.T) {
	candidates := []string{"a", "b", "c", "d"}
	c, err := NewDownstreamChooser(candidates, 8)
	if err != nil {
		t.Fatal(err)
	}
	valid := map[string]bool{}
	for _, id := range candidates {
		valid[id] = true
	}
	var wg sync.WaitGroup
	var bad atomic.Int64
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				if !valid[c.Choose()] {
					bad.Add(1)
				}
			}
		}()
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				c.Report(candidates[(g+i)%len(candidates)], float64(i%7)/1000)
				_ = c.Best()
				_ = c.Score(candidates[i%len(candidates)])
			}
		}(g)
	}
	wg.Wait()
	if bad.Load() != 0 {
		t.Fatalf("%d invalid picks under concurrency", bad.Load())
	}
	if got := c.RoutedCount(); got != 4*5000 {
		t.Fatalf("RoutedCount = %d, want %d", got, 4*5000)
	}
}

func TestSplitSpec(t *testing.T) {
	spec := engine.QuerySpec{
		ID:     "q",
		Source: "quotes",
		Filters: []engine.FilterSpec{
			{Field: "a", Lo: 0, Hi: 1},
			{Field: "b", Lo: 0, Hi: 1},
			{Field: "c", Lo: 0, Hi: 1},
		},
		Agg: &engine.AggSpec{Fn: operator.AggCount},
	}
	frags := SplitSpec(spec, 2)
	if len(frags) != 2 {
		t.Fatalf("frags = %d", len(frags))
	}
	if frags[0].ID != "q#0" || frags[1].ID != "q#1" {
		t.Errorf("ids = %s,%s", frags[0].ID, frags[1].ID)
	}
	if len(frags[0].Filters) != 2 || len(frags[1].Filters) != 1 {
		t.Errorf("filter split = %d/%d", len(frags[0].Filters), len(frags[1].Filters))
	}
	if frags[0].Agg != nil || frags[1].Agg == nil {
		t.Error("aggregate not in last fragment")
	}
	if frags[0].Source != "quotes" || frags[1].Source != "quotes" {
		t.Error("fragments must keep the source stream")
	}
	// n greater than filters clamps.
	many := SplitSpec(spec, 10)
	if len(many) != 3 {
		t.Errorf("clamped frags = %d", len(many))
	}
	// Joins never split.
	joined := spec
	joined.Join = &engine.JoinSpec{Stream: "trades", LeftKey: "symbol", RightKey: "symbol"}
	single := SplitSpec(joined, 3)
	if len(single) != 1 || single[0].ID != "q#0" {
		t.Errorf("join split = %v", single)
	}
	// Single filter never splits.
	small := engine.QuerySpec{ID: "s", Source: "quotes",
		Filters: []engine.FilterSpec{{Field: "a", Lo: 0, Hi: 1}}}
	if got := SplitSpec(small, 3); len(got) != 1 {
		t.Errorf("small split = %d", len(got))
	}
}
