package entity

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"

	"sspd/internal/engine"
	"sspd/internal/metrics"
	"sspd/internal/simnet"
	"sspd/internal/stream"
	"sspd/internal/trace"
)

// Message kinds on the intra-entity network.
const (
	// KindFeed carries an addressed tuple: a query-fragment ID followed
	// by one encoded tuple.
	KindFeed = "ent.feed"
	// KindFeedBatch carries an addressed batch: a query-fragment ID
	// followed by one encoded batch (the delegation fan-out uses it so a
	// relay batch stays one message per remote fragment, not one per
	// tuple).
	KindFeedBatch = "ent.feedb"
	// KindIngest carries a batch for a stream's delegation processor.
	KindIngest = "ent.ingest"
)

// EngineFactory builds the processing engine for one processor. It lets
// an entity run any engine (the platform-independence requirement).
type EngineFactory func(name string, catalog *stream.Catalog) engine.Processor

// Entity is the runtime intra-entity layer: n processors joined by the
// entity's local network, with per-stream delegation processors, query
// fragments placed across processors, and addressed tuple routing
// between consecutive fragments.
type Entity struct {
	id        string
	transport simnet.Transport
	catalog   *stream.Catalog

	mu      sync.Mutex
	procs   []*procNode
	deleg   map[string]int // stream name -> processor index
	queries map[string]*placedQuery
	// results receives (queryID, tuple) for every final result.
	results func(string, stream.Tuple)

	// dedup seeds new ingest gates' (stream, seq) high-water filtering
	// (see SetIngestDedup).
	dedup bool

	// routingReplicas/routingExplore configure tuple-routed placement
	// for subsequent PlaceQuery/PrepareQuery calls (SetTupleRouting);
	// replicas <= 1 keeps the paper's static-ordering baseline.
	routingReplicas int
	routingExplore  int

	// Delivered counts result tuples across all queries.
	Delivered metrics.Counter
	closed    bool
}

type procNode struct {
	idx    int
	id     simnet.NodeID
	eng    engine.Processor
	feeder engine.DirectFeeder
	entity *Entity
	// routes maps a fragment ID hosted elsewhere to its processor, for
	// forwarding fragment output.
	mu     sync.Mutex
	routes map[string]simnet.NodeID
	// streams lists fragment IDs to feed per incoming stream batch
	// (fragment 0 of each query whose source is that stream, when this
	// processor is the stream's delegation processor: it fans out).
	fanout map[string][]fanoutTarget
}

type fanoutTarget struct {
	frag string
	node simnet.NodeID
	// gate intercepts delivery while the owning query is paused for
	// live migration (see migration.go).
	gate *ingestGate
}

type placedQuery struct {
	spec  engine.QuerySpec
	frags []engine.QuerySpec
	procs []int // processor index per fragment instance
	// stages maps each frags/procs entry back to its pipeline stage:
	// tuple-routed placements register several replica instances per
	// middle stage, and the per-stage view keeps metrics honest (a
	// tuple traverses ONE instance per stage, so replica means average
	// within a stage rather than summing).
	stages []int
	// routes lists the candidate bindings of every routed fragment
	// boundary (empty for static placements).
	routes []RouteBinding
	// gate buffers head-fragment input while the query is paused
	// (live migration, DESIGN.md §10).
	gate *ingestGate
}

// RouteBinding describes one candidate edge of a tuple-routed fragment
// boundary: tuples leaving the boundary's upstream stage are routed by
// Chooser among the boundary's Candidate fragment instances. The
// federation's AM plane rebuilds its copy-on-write candidate→chooser
// table from these after every placement change and Reports
// trace-measured per-candidate delays back into Chooser.
type RouteBinding struct {
	// Query is the placed query's ID.
	Query string
	// Boundary is the downstream stage's base fragment ID ("q#1").
	Boundary string
	// Candidate is this replica instance's ID as registered with its
	// engine ("q#1@r0") — the node routed trace hops carry.
	Candidate string
	// Proc is the hosting processor index.
	Proc int
	// Chooser is the boundary's shared routing state (one chooser per
	// boundary; all upstream instances route through it so delay
	// statistics pool across senders).
	Chooser *DownstreamChooser
}

// New creates an entity with nProcs processors, each running an engine
// built by factory (nil uses the full engine.New). Processor endpoints
// are registered on the transport as "<id>/p<i>".
func New(id string, transport simnet.Transport, catalog *stream.Catalog,
	nProcs int, factory EngineFactory) (*Entity, error) {
	if id == "" || transport == nil || catalog == nil {
		return nil, fmt.Errorf("entity: need id, transport, and catalog")
	}
	if nProcs < 1 {
		nProcs = 1
	}
	if factory == nil {
		factory = func(name string, c *stream.Catalog) engine.Processor {
			return engine.New(name, c)
		}
	}
	e := &Entity{
		id:        id,
		transport: transport,
		catalog:   catalog,
		deleg:     make(map[string]int),
		queries:   make(map[string]*placedQuery),
	}
	for i := 0; i < nProcs; i++ {
		eng := factory(fmt.Sprintf("%s/p%d", id, i), catalog)
		feeder, ok := eng.(engine.DirectFeeder)
		if !ok {
			eng.Close()
			e.Close()
			return nil, fmt.Errorf("entity: engine %T cannot host fragments (no FeedQuery)", eng)
		}
		p := &procNode{
			idx:    i,
			id:     simnet.NodeID(fmt.Sprintf("%s/p%d", id, i)),
			eng:    eng,
			feeder: feeder,
			entity: e,
			routes: make(map[string]simnet.NodeID),
			fanout: make(map[string][]fanoutTarget),
		}
		if err := transport.Register(p.id, p.handle); err != nil {
			eng.Close()
			e.Close()
			return nil, err
		}
		e.procs = append(e.procs, p)
	}
	return e, nil
}

// ID returns the entity's name.
func (e *Entity) ID() string { return e.id }

// NumProcs returns the processor count.
func (e *Entity) NumProcs() int { return len(e.procs) }

// Proc exposes processor i's engine; experiments and tests read
// per-processor statistics through it. It panics on a bad index,
// matching slice semantics.
func (e *Entity) Proc(i int) engine.Processor { return e.procs[i].eng }

// SetResultHandler installs the sink for final query results.
func (e *Entity) SetResultHandler(fn func(queryID string, t stream.Tuple)) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.results = fn
}

// Delegation returns the endpoint of the processor delegated for a
// stream, assigning one (least-delegated-streams first) on first use —
// the paper's answer to "one processor cannot receive all streams".
func (e *Entity) Delegation(streamName string) simnet.NodeID {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.procs[e.delegationLocked(streamName)].id
}

func (e *Entity) delegationLocked(streamName string) int {
	if idx, ok := e.deleg[streamName]; ok {
		return idx
	}
	counts := make([]int, len(e.procs))
	for _, idx := range e.deleg {
		counts[idx]++
	}
	best := 0
	for i := 1; i < len(counts); i++ {
		if counts[i] < counts[best] {
			best = i
		}
	}
	e.deleg[streamName] = best
	return best
}

// ForceDelegation pins a stream's delegation to a specific processor.
// The delegation experiment uses it to model the single-receiver
// baseline (every stream delegated to processor 0). It must be called
// before queries on that stream are placed.
func (e *Entity) ForceDelegation(streamName string, procIdx int) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if procIdx < 0 || procIdx >= len(e.procs) {
		return fmt.Errorf("entity %s: processor index %d out of range", e.id, procIdx)
	}
	e.deleg[streamName] = procIdx
	return nil
}

// Ingest hands one tuple of a stream to the entity (the dissemination
// relay's deliver callback). The tuple goes to the stream's delegation
// processor, which fans it out to every processor hosting a fragment-0
// consumer.
func (e *Entity) Ingest(t stream.Tuple) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	idx := e.delegationLocked(t.Stream)
	p := e.procs[idx]
	e.mu.Unlock()
	p.ingest(stream.Batch{t})
}

// IngestBatch is Ingest for a whole batch. Relay deliveries are always
// single-stream, so that case routes with one delegation lookup and no
// grouping allocations.
func (e *Entity) IngestBatch(b stream.Batch) {
	if len(b) == 0 {
		return
	}
	single := true
	for i := 1; i < len(b); i++ {
		if b[i].Stream != b[0].Stream {
			single = false
			break
		}
	}
	if single {
		e.mu.Lock()
		if e.closed {
			e.mu.Unlock()
			return
		}
		p := e.procs[e.delegationLocked(b[0].Stream)]
		e.mu.Unlock()
		p.ingest(b)
		return
	}
	byStream := make(map[string]stream.Batch)
	for _, t := range b {
		byStream[t.Stream] = append(byStream[t.Stream], t)
	}
	streams := make([]string, 0, len(byStream))
	for s := range byStream {
		streams = append(streams, s)
	}
	sort.Strings(streams)
	for _, s := range streams {
		e.mu.Lock()
		if e.closed {
			e.mu.Unlock()
			return
		}
		p := e.procs[e.delegationLocked(s)]
		e.mu.Unlock()
		p.ingest(byStream[s])
	}
}

// PlaceQuery splits the query into nFrags fragments and registers them
// across processors: fragments go to the least-loaded processors,
// contiguously, at most spec-distribution-limit many (nFrags already
// encodes the caller's choice). Fragment outputs chain via addressed
// transport messages; the final fragment's results reach the entity's
// result handler.
func (e *Entity) PlaceQuery(spec engine.QuerySpec, nFrags int) error {
	return e.place(spec, nFrags, false)
}

// place is PlaceQuery with control over the query's initial gate state:
// paused placements buffer head-fragment input until CommitQuery or
// ResumeQuery opens the gate — the destination half of live migration.
// It picks up the entity's tuple-routing configuration (SetTupleRouting),
// so routed placement flows through the migration machinery unchanged.
func (e *Entity) place(spec engine.QuerySpec, nFrags int, paused bool) error {
	e.mu.Lock()
	cfg := placeConfig{paused: paused, replicas: e.routingReplicas, explore: e.routingExplore}
	e.mu.Unlock()
	return e.placeWith(spec, nFrags, cfg)
}

// SetTupleRouting makes every subsequent placement (PlaceQuery and the
// migration path's PrepareQuery) replicate middle fragments on
// `replicas` processors with per-tuple adaptive routing between stages
// — the candidate-set half of Section 4.2. replicas <= 1 restores the
// static-ordering baseline. Routed boundaries expect delay feedback
// through RouteBindings (the federation's AM plane Reports
// trace-measured per-candidate delays); without feedback the chooser's
// cold-start rotation degrades to round-robin balancing.
func (e *Entity) SetTupleRouting(replicas, explore int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.routingReplicas = replicas
	e.routingExplore = explore
}

// RouteBindings lists every routed fragment boundary's candidate
// bindings across placed queries, sorted by query then candidate.
func (e *Entity) RouteBindings() []RouteBinding {
	e.mu.Lock()
	defer e.mu.Unlock()
	ids := make([]string, 0, len(e.queries))
	for id := range e.queries {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var out []RouteBinding
	for _, id := range ids {
		out = append(out, e.queries[id].routes...)
	}
	return out
}

// placeConfig controls one placement: initial gate state, middle-stage
// replication, and the feedback mode of routed boundaries.
type placeConfig struct {
	paused   bool
	replicas int
	explore  int
	// probe makes routed emits report the candidate engine's
	// instantaneous load inline (the in-process probe mode
	// PlaceQueryAdaptive uses). The federation instead leaves feedback
	// to trace-measured delays via RouteBindings, as the paper's AM
	// collects delay statistics from downstream acknowledgements.
	probe bool
}

// placeWith is the one placement path: static chains and tuple-routed
// replicated placements differ only in placeConfig. Fragment 0 (fed by
// the delegation fan-out) and the final fragment (which may hold
// stateful operators and must not duplicate results) always get one
// instance; with replicas > 1 every middle fragment — a stateless
// filter stage, so any replica produces identical output for a tuple —
// is registered on `replicas` processors under ordinal instance IDs
// ("q#1@r0"), and each upstream stage routes every output tuple through
// the boundary's shared DownstreamChooser.
func (e *Entity) placeWith(spec engine.QuerySpec, nFrags int, cfg placeConfig) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	if cfg.replicas < 1 {
		cfg.replicas = 1
	}
	if cfg.explore <= 0 {
		cfg.explore = 32
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return fmt.Errorf("entity %s: closed", e.id)
	}
	if _, dup := e.queries[spec.ID]; dup {
		return fmt.Errorf("entity %s: query %s already placed", e.id, spec.ID)
	}
	if cfg.replicas > len(e.procs) {
		cfg.replicas = len(e.procs)
	}
	frags := SplitSpec(spec, nFrags)
	// Choose processors: least-loaded first, instances dealt across
	// that order, reusing processors round-robin when instances
	// outnumber them. Middle fragments take `replicas` consecutive
	// processors.
	order := make([]int, len(e.procs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		la, lb := e.procs[order[a]].eng.Load(), e.procs[order[b]].eng.Load()
		if la != lb {
			return la < lb
		}
		return order[a] < order[b]
	})
	type instance struct {
		spec engine.QuerySpec
		proc int
	}
	stages := make([][]instance, len(frags))
	cursor := 0
	for i := range frags {
		n := 1
		if cfg.replicas > 1 && i > 0 && i < len(frags)-1 {
			n = cfg.replicas
		}
		for r := 0; r < n; r++ {
			inst := instance{spec: frags[i], proc: order[cursor%len(order)]}
			if n > 1 {
				// Ordinal replica IDs keep each instance separately
				// addressable on its engine while migration endpoints
				// with the same configuration agree on the ID set.
				inst.spec.ID = fmt.Sprintf("%s@r%d", frags[i].ID, r)
			}
			stages[i] = append(stages[i], inst)
			cursor++
		}
	}

	pq := &placedQuery{spec: spec, gate: &ingestGate{paused: cfg.paused, dedup: e.dedup}}
	queryID := spec.ID

	// One shared chooser per routed boundary (keyed by downstream
	// stage), built lazily by the first upstream instance that needs it.
	choosers := make(map[int]*DownstreamChooser)
	chooserFor := func(stage int) (*DownstreamChooser, error) {
		if c, ok := choosers[stage]; ok {
			return c, nil
		}
		ids := make([]string, len(stages[stage]))
		for i, inst := range stages[stage] {
			ids[i] = inst.spec.ID
		}
		c, err := NewDownstreamChooser(ids, cfg.explore)
		if err != nil {
			return nil, err
		}
		choosers[stage] = c
		return c, nil
	}
	// emitFor builds the emit closure for one instance of stage i.
	emitFor := func(i int, from *procNode) (func(stream.Tuple), error) {
		if i == len(frags)-1 {
			return func(t stream.Tuple) {
				e.Delivered.Inc()
				trace.Record(trace.SpanID(t.Span), trace.StageResult, queryID)
				e.mu.Lock()
				fn := e.results
				e.mu.Unlock()
				if fn != nil {
					fn(queryID, t)
				}
			}, nil
		}
		next := stages[i+1]
		if len(next) == 1 {
			nextFrag := next[0].spec.ID
			nextProc := e.procs[next[0].proc]
			if nextProc == from {
				// Same processor: feed directly, no network hop.
				feeder := from.feeder
				return func(t stream.Tuple) { _ = feeder.FeedQuery(nextFrag, t) }, nil
			}
			fromID, to, tr := from.id, nextProc.id, e.transport
			return func(t stream.Tuple) {
				_ = tr.Send(fromID, to, KindFeed, encodeFeed(nextFrag, t))
			}, nil
		}
		// Routed boundary: per-tuple adaptive choice among the next
		// stage's replicas (Section 4.2). The decision itself reads no
		// clock — sampled tuples get a StageOperator hop stamped under
		// the chosen instance ID (free for untraced tuples, Span == 0
		// fast path), and the AM plane Reports the measured hop delta
		// back into the chooser from span completions.
		chooser, err := chooserFor(i + 1)
		if err != nil {
			return nil, err
		}
		byID := make(map[string]*procNode, len(next))
		for _, inst := range next {
			byID[inst.spec.ID] = e.procs[inst.proc]
		}
		tr, fromNode, probe := e.transport, from, cfg.probe
		return func(t stream.Tuple) {
			pick := chooser.Choose()
			target := byID[pick]
			if probe {
				// In-process probe mode: score by the candidate
				// engine's instantaneous load (a distributed build
				// would piggyback this statistic on acks, as the
				// paper's AM collects it).
				chooser.Report(pick, target.eng.Load())
			}
			trace.Record(trace.SpanID(t.Span), trace.StageOperator, pick)
			if target == fromNode {
				_ = fromNode.feeder.FeedQuery(pick, t)
				return
			}
			_ = tr.Send(fromNode.id, target.id, KindFeed, encodeFeed(pick, t))
		}, nil
	}

	type reg struct {
		proc int
		id   string
	}
	var registered []reg
	rollback := func() {
		for _, r := range registered {
			_, _ = e.procs[r.proc].eng.Unregister(r.id)
		}
	}
	// Register back to front so each stage's emit can target the next.
	for i := len(frags) - 1; i >= 0; i-- {
		for _, inst := range stages[i] {
			p := e.procs[inst.proc]
			emit, err := emitFor(i, p)
			if err != nil {
				rollback()
				return err
			}
			if err := p.eng.Register(inst.spec, emit); err != nil {
				rollback()
				return fmt.Errorf("entity %s: placing %s: %w", e.id, inst.spec.ID, err)
			}
			registered = append(registered, reg{proc: inst.proc, id: inst.spec.ID})
		}
	}
	// Delegation fan-out: fragment 0's single instance consumes the
	// source stream(s) through the query's gate.
	head := stages[0][0]
	headProc := e.procs[head.proc]
	for _, s := range head.spec.Streams() {
		di := e.delegationLocked(s)
		dp := e.procs[di]
		dp.mu.Lock()
		dp.fanout[s] = append(dp.fanout[s], fanoutTarget{frag: head.spec.ID, node: headProc.id, gate: pq.gate})
		dp.mu.Unlock()
	}
	// Flatten instances into the (fragment, processor, stage) triples
	// the removal/snapshot/metrics paths iterate.
	for i := range stages {
		for _, inst := range stages[i] {
			pq.frags = append(pq.frags, inst.spec)
			pq.procs = append(pq.procs, inst.proc)
			pq.stages = append(pq.stages, i)
		}
	}
	for stage, ch := range choosers {
		for _, inst := range stages[stage] {
			pq.routes = append(pq.routes, RouteBinding{
				Query:     queryID,
				Boundary:  frags[stage].ID,
				Candidate: inst.spec.ID,
				Proc:      inst.proc,
				Chooser:   ch,
			})
		}
	}
	sort.Slice(pq.routes, func(a, b int) bool { return pq.routes[a].Candidate < pq.routes[b].Candidate })
	e.queries[spec.ID] = pq
	return nil
}

// RemoveQuery unregisters all fragments of a query and returns its spec
// for re-placement elsewhere (query-level migration).
func (e *Entity) RemoveQuery(id string) (engine.QuerySpec, error) {
	e.mu.Lock()
	pq, ok := e.queries[id]
	if !ok {
		e.mu.Unlock()
		return engine.QuerySpec{}, fmt.Errorf("entity %s: unknown query %s", e.id, id)
	}
	delete(e.queries, id)
	head := pq.frags[0]
	for _, s := range head.Streams() {
		if di, ok := e.deleg[s]; ok {
			dp := e.procs[di]
			dp.mu.Lock()
			targets := dp.fanout[s]
			kept := targets[:0]
			for _, tgt := range targets {
				if tgt.frag != head.ID {
					kept = append(kept, tgt)
				}
			}
			dp.fanout[s] = kept
			dp.mu.Unlock()
		}
	}
	procs := make([]*procNode, len(pq.frags))
	for i := range pq.frags {
		procs[i] = e.procs[pq.procs[i]]
	}
	e.mu.Unlock()
	for i, frag := range pq.frags {
		if _, err := procs[i].eng.Unregister(frag.ID); err != nil {
			return engine.QuerySpec{}, err
		}
	}
	return pq.spec, nil
}

// Queries returns the IDs of placed queries, sorted.
func (e *Entity) Queries() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]string, 0, len(e.queries))
	for id := range e.queries {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// QueryPlacement reports which processor indexes host each fragment of a
// query.
func (e *Entity) QueryPlacement(id string) ([]int, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	pq, ok := e.queries[id]
	if !ok {
		return nil, false
	}
	out := make([]int, len(pq.procs))
	copy(out, pq.procs)
	return out, true
}

// QueryPerf reports a placed query's measured delay d and processing
// time p in seconds, summed over its stages (a tuple traverses every
// stage in sequence, so per-stage means add). A routed stage's replicas
// each see a share of the traffic, so the stage mean pools their raw
// Sum/Count instead of adding per-replica means — adding would count
// the stage once per replica. ok is false when the query is unknown or
// its engines expose no metrics (e.g. MiniEngine). The federation's
// metrics collector divides the two into the paper's per-query
// Performance Ratio PR_k = d_k / p_k.
func (e *Entity) QueryPerf(id string) (d, p float64, ok bool) {
	e.mu.Lock()
	pq, found := e.queries[id]
	if !found {
		e.mu.Unlock()
		return 0, 0, false
	}
	frags := pq.frags
	stages := pq.stages
	procs := make([]*procNode, len(pq.frags))
	for i := range pq.frags {
		procs[i] = e.procs[pq.procs[i]]
	}
	e.mu.Unlock()
	nStages := 0
	for _, s := range stages {
		if s+1 > nStages {
			nStages = s + 1
		}
	}
	dSum := make([]float64, nStages)
	dCount := make([]float64, nStages)
	pSum := make([]float64, nStages)
	pCount := make([]float64, nStages)
	for i, frag := range frags {
		rep, isRep := procs[i].eng.(engine.MetricsReporter)
		if !isRep {
			return 0, 0, false
		}
		m, has := rep.Metrics(frag.ID)
		if !has {
			return 0, 0, false
		}
		s := stages[i]
		dSum[s] += m.Delay.Sum
		dCount[s] += float64(m.Delay.Count)
		pSum[s] += m.Processing.Sum
		pCount[s] += float64(m.Processing.Count)
		ok = true
	}
	for s := 0; s < nStages; s++ {
		if dCount[s] > 0 {
			d += dSum[s] / dCount[s]
		}
		if pCount[s] > 0 {
			p += pSum[s] / pCount[s]
		}
	}
	return d, p, ok
}

// QueryWork reports a placed query's cumulative measured work: total
// engine busy time in seconds and result tuples emitted, summed over its
// fragments. The stats plane differentiates successive readings into a
// measured load (busy seconds per second) for the cluster digest. ok is
// false when the query is unknown or its engines expose no metrics
// (e.g. MiniEngine) — callers then fall back to the spec's estimate.
func (e *Entity) QueryWork(id string) (busySeconds float64, results int64, ok bool) {
	e.mu.Lock()
	pq, found := e.queries[id]
	if !found {
		e.mu.Unlock()
		return 0, 0, false
	}
	frags := pq.frags
	procs := make([]*procNode, len(pq.frags))
	for i := range pq.frags {
		procs[i] = e.procs[pq.procs[i]]
	}
	e.mu.Unlock()
	for i, frag := range frags {
		rep, isRep := procs[i].eng.(engine.MetricsReporter)
		if !isRep {
			return 0, 0, false
		}
		m, has := rep.Metrics(frag.ID)
		if !has {
			return 0, 0, false
		}
		busySeconds += m.Processing.Sum
		results += m.Results
		ok = true
	}
	return busySeconds, results, ok
}

// QueryDrops reports the tuples dropped for a placed query by its
// hosting engines' full input queues or shard rings, summed over
// fragments. ok is false when the query is unknown or no hosting
// engine reports drops (e.g. MiniEngine, which never drops).
func (e *Entity) QueryDrops(id string) (dropped int64, ok bool) {
	e.mu.Lock()
	pq, found := e.queries[id]
	if !found {
		e.mu.Unlock()
		return 0, false
	}
	frags := pq.frags
	procs := make([]*procNode, len(pq.frags))
	for i := range pq.frags {
		procs[i] = e.procs[pq.procs[i]]
	}
	e.mu.Unlock()
	for i, frag := range frags {
		rep, isRep := procs[i].eng.(engine.DropReporter)
		if !isRep {
			continue
		}
		dropped += rep.Dropped(frag.ID)
		ok = true
	}
	return dropped, ok
}

// EngineTelemetry merges the introspection snapshots of every processor
// whose engine exposes one (DESIGN.md §14). ok is false when no engine
// does (e.g. an entity running only MiniEngines).
func (e *Entity) EngineTelemetry() (engine.EngineStats, bool) {
	e.mu.Lock()
	procs := make([]*procNode, len(e.procs))
	copy(procs, e.procs)
	e.mu.Unlock()
	var out engine.EngineStats
	var ok bool
	for _, pn := range procs {
		in, isIn := pn.eng.(engine.Introspector)
		if !isIn {
			continue
		}
		out.Merge(in.EngineStats())
		ok = true
	}
	return out, ok
}

// DroppedTotal sums the engine-lifetime dropped-tuple totals across the
// entity's processors — unlike QueryDrops it includes drops charged to
// queries that have since been unregistered or migrated away.
func (e *Entity) DroppedTotal() int64 {
	e.mu.Lock()
	procs := make([]*procNode, len(e.procs))
	copy(procs, e.procs)
	e.mu.Unlock()
	var total int64
	for _, pn := range procs {
		if rep, isRep := pn.eng.(engine.TotalDropReporter); isRep {
			total += rep.TotalDropped()
		}
	}
	return total
}

// Interest derives the entity's aggregated data interest in one stream:
// the union of its placed queries' interests — what the entity registers
// up the dissemination tree.
func (e *Entity) Interest(streamName string) []stream.Interest {
	sc, ok := e.catalog.Lookup(streamName)
	if !ok {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	ids := make([]string, 0, len(e.queries))
	for id := range e.queries {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var out []stream.Interest
	for _, id := range ids {
		pq := e.queries[id]
		for _, s := range pq.spec.Streams() {
			if s == streamName {
				out = append(out, pq.spec.Interest(streamName, sc))
				break
			}
		}
	}
	return out
}

// Load returns the entity's total engine load — the vertex weight its
// queries contribute to the federation's query graph.
func (e *Entity) Load() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	sum := 0.0
	for _, p := range e.procs {
		sum += p.eng.Load()
	}
	return sum
}

// ProcLoads returns each processor's current load.
func (e *Entity) ProcLoads() []float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]float64, len(e.procs))
	for i, p := range e.procs {
		out[i] = p.eng.Load()
	}
	return out
}

// ReplaceQuery re-places a query's fragments on the currently
// least-loaded processors (fresh placement decision) — the runtime form
// of Section 4.1's *dynamic* operator placement. The query is briefly
// unregistered; tuples arriving in that window are not queued for it.
func (e *Entity) ReplaceQuery(id string, nFrags int) error {
	spec, err := e.RemoveQuery(id)
	if err != nil {
		return err
	}
	return e.PlaceQuery(spec, nFrags)
}

// RebalanceOnce moves one query from the most-loaded processor to a
// fresh placement when the processor-load imbalance exceeds threshold
// (max/mean; e.g. 1.5). It prefers the lightest query on the hot
// processor, minimizing the disruption per unit of relief. It reports
// whether a move happened.
func (e *Entity) RebalanceOnce(threshold float64, nFrags int) (bool, error) {
	if threshold < 1 {
		threshold = 1.5
	}
	e.mu.Lock()
	loads := make([]float64, len(e.procs))
	sum := 0.0
	hot := 0
	for i, p := range e.procs {
		loads[i] = p.eng.Load()
		sum += loads[i]
		if loads[i] > loads[hot] {
			hot = i
		}
	}
	mean := sum / float64(len(e.procs))
	if mean == 0 || loads[hot]/mean < threshold {
		e.mu.Unlock()
		return false, nil
	}
	// Lightest query with a fragment on the hot processor.
	victim := ""
	victimLoad := 0.0
	ids := make([]string, 0, len(e.queries))
	for id := range e.queries {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		pq := e.queries[id]
		onHot := false
		for _, pi := range pq.procs {
			if pi == hot {
				onHot = true
				break
			}
		}
		if !onHot {
			continue
		}
		l := pq.spec.EstimatedLoad()
		if victim == "" || l < victimLoad {
			victim, victimLoad = id, l
		}
	}
	e.mu.Unlock()
	if victim == "" {
		return false, nil
	}
	if err := e.ReplaceQuery(victim, nFrags); err != nil {
		return false, err
	}
	return true, nil
}

// AdaptOrdering asks every processor engine that supports it (the
// engine.Adapter capability) to re-order its queries' commutable
// operators from observed statistics — the entity-wide Adaptation Module
// sweep. It returns the number of queries whose plan actually changed
// (every engine's AdaptOrdering reports applied reorders, so the sum is
// comparable across engine kinds).
func (e *Entity) AdaptOrdering(minGain float64) int {
	e.mu.Lock()
	procs := make([]*procNode, len(e.procs))
	copy(procs, e.procs)
	e.mu.Unlock()
	n := 0
	for _, p := range procs {
		if a, ok := p.eng.(engine.Adapter); ok {
			n += a.AdaptOrdering(minGain)
		}
	}
	return n
}

// Close stops every processor and deregisters the endpoints.
func (e *Entity) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	procs := e.procs
	e.mu.Unlock()
	for _, p := range procs {
		_ = e.transport.Deregister(p.id)
		p.eng.Close()
	}
}

// ingest routes a same-stream batch: deliver to local fragment-0
// consumers and forward addressed copies to remote ones.
func (p *procNode) ingest(b stream.Batch) {
	if len(b) == 0 {
		return
	}
	self := string(p.id)
	for _, t := range b {
		// Free for untraced tuples (Span == 0 fast path).
		trace.Record(trace.SpanID(t.Span), trace.StageDelegate, self)
	}
	p.mu.Lock()
	targets := make([]fanoutTarget, len(p.fanout[b[0].Stream]))
	copy(targets, p.fanout[b[0].Stream])
	p.mu.Unlock()
	bf, batchFeed := p.feeder.(engine.BatchFeeder)
	for _, tgt := range targets {
		out := b
		if tgt.gate != nil {
			// admit buffers (paused) or dedup-filters per target; each
			// query's gate sees the full batch and keeps its own view.
			out = tgt.gate.admit(b)
			if len(out) == 0 {
				continue
			}
		}
		if tgt.node == p.id {
			for _, t := range out {
				trace.Record(trace.SpanID(t.Span), trace.StageOperator, tgt.frag)
			}
			if batchFeed {
				_ = bf.FeedQueryBatch(tgt.frag, out)
			} else {
				for _, t := range out {
					_ = p.feeder.FeedQuery(tgt.frag, t)
				}
			}
			continue
		}
		// One addressed message per remote fragment, not one per tuple.
		buf := stream.GetEncodeBuffer()
		*buf = encodeFeedBatch((*buf)[:0], tgt.frag, out)
		_ = p.entity.transport.Send(p.id, tgt.node, KindFeedBatch, *buf)
		stream.PutEncodeBuffer(buf)
	}
}

// handle is the processor's transport callback.
func (p *procNode) handle(m simnet.Message) {
	switch m.Kind {
	case KindFeed:
		frag, t, err := decodeFeed(m.Payload)
		if err != nil {
			return
		}
		trace.Record(trace.SpanID(t.Span), trace.StageOperator, frag)
		_ = p.feeder.FeedQuery(frag, t)
	case KindFeedBatch:
		frag, batch, err := decodeFeedBatch(m.Payload)
		if err != nil {
			return
		}
		for _, t := range batch {
			trace.Record(trace.SpanID(t.Span), trace.StageOperator, frag)
		}
		if bf, ok := p.feeder.(engine.BatchFeeder); ok {
			_ = bf.FeedQueryBatch(frag, batch)
		} else {
			for _, t := range batch {
				_ = p.feeder.FeedQuery(frag, t)
			}
		}
	case KindIngest:
		batch, _, err := stream.DecodeBatch(m.Payload)
		if err != nil {
			return
		}
		p.ingest(batch)
	}
}

// encodeFeed frames an addressed tuple: uint16 len(frag) | frag | tuple.
func encodeFeed(frag string, t stream.Tuple) []byte {
	buf := binary.LittleEndian.AppendUint16(nil, uint16(len(frag)))
	buf = append(buf, frag...)
	return stream.AppendTuple(buf, t)
}

// encodeFeedBatch frames an addressed batch onto dst:
// uint16 len(frag) | frag | batch.
func encodeFeedBatch(dst []byte, frag string, b stream.Batch) []byte {
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(frag)))
	dst = append(dst, frag...)
	return stream.AppendBatch(dst, b)
}

func decodeFeedBatch(payload []byte) (string, stream.Batch, error) {
	if len(payload) < 2 {
		return "", nil, fmt.Errorf("entity: truncated feed-batch frame")
	}
	n := int(binary.LittleEndian.Uint16(payload))
	if len(payload) < 2+n {
		return "", nil, fmt.Errorf("entity: truncated feed-batch fragment id")
	}
	frag := string(payload[2 : 2+n])
	b, _, err := stream.DecodeBatch(payload[2+n:])
	if err != nil {
		return "", nil, err
	}
	return frag, b, nil
}

func decodeFeed(payload []byte) (string, stream.Tuple, error) {
	if len(payload) < 2 {
		return "", stream.Tuple{}, fmt.Errorf("entity: truncated feed frame")
	}
	n := int(binary.LittleEndian.Uint16(payload))
	if len(payload) < 2+n {
		return "", stream.Tuple{}, fmt.Errorf("entity: truncated feed fragment id")
	}
	frag := string(payload[2 : 2+n])
	t, _, err := stream.DecodeTuple(payload[2+n:])
	if err != nil {
		return "", stream.Tuple{}, err
	}
	return frag, t, nil
}
