package entity

import (
	"fmt"
	"sort"

	"sspd/internal/engine"
	"sspd/internal/stream"
)

// StreamRateHint is the nominal arrival rate of one stream used when
// deriving placement models from declarative specs.
type StreamRateHint struct {
	TuplesPerSec  float64
	BytesPerTuple float64
}

// PlacementModel converts declarative query specs into the analytic
// placement model of Section 4.1: per-fragment costs from the spec's
// operator costs, selectivities estimated from the filters' data
// interests against the schema domains, and input rates scaled by the
// interest the dissemination layer already applied upstream (the entity
// receives only tuples matching its aggregate interest, so fragment 0
// sees the query's interest-selectivity share of the stream).
func PlacementModel(specs []engine.QuerySpec, catalog *stream.Catalog,
	rates map[string]StreamRateHint, nFrags int) ([]PlacementQuery, error) {
	out := make([]PlacementQuery, 0, len(specs))
	for _, spec := range specs {
		if err := spec.Validate(); err != nil {
			return nil, err
		}
		sc, ok := catalog.Lookup(spec.Source)
		if !ok {
			return nil, fmt.Errorf("entity: plan: unknown stream %q", spec.Source)
		}
		rate, ok := rates[spec.Source]
		if !ok || rate.TuplesPerSec <= 0 {
			return nil, fmt.Errorf("entity: plan: no rate hint for %q", spec.Source)
		}
		frags := SplitSpec(spec, nFrags)
		pq := PlacementQuery{
			ID:        spec.ID,
			InputRate: rate.TuplesPerSec * deliveredFraction(spec, sc),
			TupleSize: rate.BytesPerTuple,
			// The spread of the runtime fragments is the distribution
			// limit the planner must respect.
			DistributionLimit: len(frags),
		}
		if pq.InputRate <= 0 {
			pq.InputRate = 0.1 // keep the model well-formed for dead queries
		}
		for _, frag := range frags {
			pq.Fragments = append(pq.Fragments, fragmentModel(frag, sc))
		}
		out = append(out, pq)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// deliveredFraction estimates the share of the source stream the
// dissemination layer delivers to this query's entity for it: its own
// interest selectivity (the entity-level union may deliver more, but
// the per-query fragment chain starts from delegation fan-out, which
// feeds every tuple of the stream the entity received; the interest
// fraction is the useful lower bound the planner sizes for).
func deliveredFraction(spec engine.QuerySpec, sc *stream.Schema) float64 {
	sel := spec.Interest(spec.Source, sc).Selectivity(sc)
	if sel <= 0 {
		return 0.01
	}
	return sel
}

// fragmentModel derives one fragment's (cost, selectivity) from its
// steps: costs add; selectivities multiply, estimated per filter from
// the schema domains.
func fragmentModel(frag engine.QuerySpec, sc *stream.Schema) FragmentSpec {
	cost := 0.0
	sel := 1.0
	for _, f := range frag.Filters {
		c := f.Cost
		if c <= 0 {
			c = 1
		}
		cost += c
		sel *= filterSelectivity(f, sc)
	}
	if frag.Join != nil {
		c := frag.Join.Cost
		if c <= 0 {
			c = 3
		}
		cost += c
	}
	if frag.Distinct != nil {
		c := frag.Distinct.Cost
		if c <= 0 {
			c = 1
		}
		cost += c
		sel *= 0.5 // duplicates suppressed; a coarse prior
	}
	if frag.Agg != nil {
		c := frag.Agg.Cost
		if c <= 0 {
			c = 2
		}
		cost += c
	}
	if frag.TopK != nil {
		c := frag.TopK.Cost
		if c <= 0 {
			c = 2
		}
		cost += c
		sel *= 0.5
	}
	if cost == 0 {
		cost = 1
	}
	if sel <= 0 {
		sel = 0.001
	}
	return FragmentSpec{Cost: cost, Selectivity: sel}
}

// filterSelectivity estimates one filter step's pass fraction from the
// schema's declared domains (1 when unknown).
func filterSelectivity(f engine.FilterSpec, sc *stream.Schema) float64 {
	sel := 1.0
	if f.Field != "" {
		if i, ok := sc.FieldIndex(f.Field); ok {
			field := sc.Field(i)
			if w := field.DomainWidth(); w > 0 {
				clipped := stream.Range{Lo: f.Lo, Hi: f.Hi}.
					Intersect(stream.Range{Lo: field.Lo, Hi: field.Hi})
				sel *= clipped.Width() / w
			}
		}
	}
	if f.KeyField != "" {
		if i, ok := sc.FieldIndex(f.KeyField); ok {
			if card := sc.Field(i).Card; card > 0 {
				frac := float64(len(f.Keys)) / float64(card)
				if frac > 1 {
					frac = 1
				}
				sel *= frac
			}
		}
	}
	if sel <= 0 {
		sel = 0.001
	}
	return sel
}

// PlanPlacement runs the PR-aware placer over declarative specs: the
// full bridge from the loosely-coupled layer's vocabulary (QuerySpec)
// to Section 4.1's optimization. It returns the assignment and its
// analytic evaluation.
func PlanPlacement(specs []engine.QuerySpec, catalog *stream.Catalog,
	rates map[string]StreamRateHint, procs []Proc, nFrags int) (Assignment, Evaluation, error) {
	queries, err := PlacementModel(specs, catalog, rates, nFrags)
	if err != nil {
		return nil, Evaluation{}, err
	}
	asg, err := PRPlacer{}.Place(procs, queries)
	if err != nil {
		return nil, Evaluation{}, err
	}
	return asg, Evaluate(procs, queries, asg, DefaultNetwork), nil
}
