package entity

import (
	"fmt"
	"math/rand"
	"testing"
)

func mkProcs(n int, capacity float64) []Proc {
	out := make([]Proc, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, Proc{ID: fmt.Sprintf("p%02d", i), Capacity: capacity})
	}
	return out
}

// mkWorkload builds a reproducible mixed workload: queries with 2-5
// fragments, varying selectivities and rates.
func mkWorkload(rng *rand.Rand, n int) []PlacementQuery {
	out := make([]PlacementQuery, 0, n)
	for i := 0; i < n; i++ {
		nf := 2 + rng.Intn(4)
		frags := make([]FragmentSpec, 0, nf)
		for f := 0; f < nf; f++ {
			frags = append(frags, FragmentSpec{
				Cost:        0.5 + rng.Float64()*2,
				Selectivity: 0.2 + rng.Float64()*0.7,
			})
		}
		out = append(out, PlacementQuery{
			ID:                fmt.Sprintf("q%03d", i),
			Fragments:         frags,
			InputRate:         20 + rng.Float64()*80,
			TupleSize:         100,
			DistributionLimit: 3,
		})
	}
	return out
}

func TestPlacementQueryDerivedQuantities(t *testing.T) {
	q := PlacementQuery{
		ID:        "q",
		InputRate: 100,
		TupleSize: 10,
		Fragments: []FragmentSpec{
			{Cost: 2, Selectivity: 0.5},
			{Cost: 4, Selectivity: 0.1},
		},
	}
	if got := q.rateInto(0); got != 100 {
		t.Errorf("rateInto(0) = %v", got)
	}
	if got := q.rateInto(1); got != 50 {
		t.Errorf("rateInto(1) = %v", got)
	}
	if got := q.loadOf(0); got != 200 {
		t.Errorf("loadOf(0) = %v", got)
	}
	if got := q.loadOf(1); got != 200 {
		t.Errorf("loadOf(1) = %v", got)
	}
	if got := q.TotalLoad(); got != 400 {
		t.Errorf("TotalLoad = %v", got)
	}
}

func TestPlacementQueryValidate(t *testing.T) {
	good := PlacementQuery{ID: "q", InputRate: 1, Fragments: []FragmentSpec{{Cost: 1, Selectivity: 1}}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []PlacementQuery{
		{InputRate: 1, Fragments: []FragmentSpec{{Cost: 1}}},
		{ID: "q", InputRate: 1},
		{ID: "q", Fragments: []FragmentSpec{{Cost: 1}}},
		{ID: "q", InputRate: 1, Fragments: []FragmentSpec{{Cost: 0}}},
		{ID: "q", InputRate: 1, Fragments: []FragmentSpec{{Cost: 1, Selectivity: -1}}},
	}
	for i, q := range bad {
		if err := q.Validate(); err == nil {
			t.Errorf("bad query %d accepted", i)
		}
	}
}

func TestValidateInputs(t *testing.T) {
	procs := mkProcs(2, 100)
	q := PlacementQuery{ID: "q", InputRate: 1, Fragments: []FragmentSpec{{Cost: 1, Selectivity: 1}}}
	if err := validateInputs(procs, []PlacementQuery{q}); err != nil {
		t.Fatal(err)
	}
	if err := validateInputs(nil, nil); err == nil {
		t.Error("no processors accepted")
	}
	if err := validateInputs([]Proc{{ID: "", Capacity: 1}}, nil); err == nil {
		t.Error("empty processor id accepted")
	}
	if err := validateInputs([]Proc{{ID: "p", Capacity: 0}}, nil); err == nil {
		t.Error("zero capacity accepted")
	}
	if err := validateInputs([]Proc{{ID: "p", Capacity: 1}, {ID: "p", Capacity: 1}}, nil); err == nil {
		t.Error("duplicate processor accepted")
	}
	if err := validateInputs(procs, []PlacementQuery{q, q}); err == nil {
		t.Error("duplicate query accepted")
	}
}

func TestAllPlacersCoverEveryFragment(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	procs := mkProcs(4, 1000)
	queries := mkWorkload(rng, 20)
	placers := []Placer{PRPlacer{}, RandomPlacer{Seed: 7}, RoundRobinPlacer{}, LoadOnlyPlacer{}}
	for _, pl := range placers {
		asg, err := pl.Place(procs, queries)
		if err != nil {
			t.Fatalf("%s: %v", pl.Name(), err)
		}
		for _, q := range queries {
			for i := range q.Fragments {
				proc, ok := asg[FragmentRef{q.ID, i}]
				if !ok || proc == "" {
					t.Fatalf("%s left %s#%d unassigned", pl.Name(), q.ID, i)
				}
			}
		}
	}
}

func TestPlacersRejectBadInput(t *testing.T) {
	for _, pl := range []Placer{PRPlacer{}, RandomPlacer{}, RoundRobinPlacer{}, LoadOnlyPlacer{}} {
		if _, err := pl.Place(nil, nil); err == nil {
			t.Errorf("%s accepted empty processors", pl.Name())
		}
	}
}

func TestPRPlacerRespectsDistributionLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	procs := mkProcs(8, 1000)
	queries := mkWorkload(rng, 15)
	for i := range queries {
		queries[i].DistributionLimit = 2
	}
	asg, err := PRPlacer{}.Place(procs, queries)
	if err != nil {
		t.Fatal(err)
	}
	if spread := MaxSpread(queries, asg); spread > 2 {
		t.Errorf("max spread = %d, limit 2", spread)
	}
}

func TestPRPlacerBeatsBaselinesOnPRMax(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// Capacity chosen so the cluster runs hot (~70%): queueing matters.
	queries := mkWorkload(rng, 30)
	total := 0.0
	for _, q := range queries {
		total += q.TotalLoad()
	}
	procs := mkProcs(6, total/6/0.7)
	net := DefaultNetwork

	evalOf := func(p Placer) Evaluation {
		asg, err := p.Place(procs, queries)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		return Evaluate(procs, queries, asg, net)
	}
	pr := evalOf(PRPlacer{})
	random := evalOf(RandomPlacer{Seed: 11})
	rr := evalOf(RoundRobinPlacer{})

	if !pr.Feasible {
		t.Fatalf("pr-aware placement infeasible: maxUtil=%v", pr.MaxUtilization)
	}
	if pr.PRMax >= random.PRMax {
		t.Errorf("pr-aware PRmax %v not better than random %v", pr.PRMax, random.PRMax)
	}
	if pr.PRMax >= rr.PRMax {
		t.Errorf("pr-aware PRmax %v not better than round-robin %v", pr.PRMax, rr.PRMax)
	}
	// And traffic: round-robin crosses the network at every stage.
	if pr.TrafficBytes >= rr.TrafficBytes {
		t.Errorf("pr-aware traffic %v not lower than round-robin %v", pr.TrafficBytes, rr.TrafficBytes)
	}
}

func TestLoadOnlyPlacerBalancesButPaysTraffic(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	queries := mkWorkload(rng, 30)
	procs := mkProcs(6, 1e6)
	loadOnly, err := LoadOnlyPlacer{}.Place(procs, queries)
	if err != nil {
		t.Fatal(err)
	}
	prAware, err := PRPlacer{}.Place(procs, queries)
	if err != nil {
		t.Fatal(err)
	}
	evLoad := Evaluate(procs, queries, loadOnly, DefaultNetwork)
	evPR := Evaluate(procs, queries, prAware, DefaultNetwork)
	if evLoad.Imbalance() > 1.5 {
		t.Errorf("load-only imbalance = %v", evLoad.Imbalance())
	}
	// Load-only ignores hops: it must pay more traffic than PR-aware.
	if evPR.TrafficBytes >= evLoad.TrafficBytes {
		t.Errorf("pr-aware traffic %v not lower than load-only %v",
			evPR.TrafficBytes, evLoad.TrafficBytes)
	}
}

func TestEvaluateSaturationDetection(t *testing.T) {
	procs := []Proc{{ID: "p0", Capacity: 10}}
	q := PlacementQuery{
		ID: "q", InputRate: 100, TupleSize: 10,
		Fragments: []FragmentSpec{{Cost: 1, Selectivity: 1}},
	}
	asg := Assignment{FragmentRef{"q", 0}: "p0"}
	ev := Evaluate(procs, []PlacementQuery{q}, asg, DefaultNetwork)
	if ev.Feasible {
		t.Error("saturated placement marked feasible")
	}
	if ev.PRMax < waitCap {
		t.Errorf("saturated PRmax = %v, want capped wait %v", ev.PRMax, float64(waitCap))
	}
}

func TestEvaluateBandwidthFeasibility(t *testing.T) {
	procs := mkProcs(2, 1e9)
	q := PlacementQuery{
		ID: "q", InputRate: 1000, TupleSize: 1e6, // 1 GB/s across the hop
		Fragments: []FragmentSpec{
			{Cost: 1, Selectivity: 1},
			{Cost: 1, Selectivity: 1},
		},
	}
	asg := Assignment{
		FragmentRef{"q", 0}: "p00",
		FragmentRef{"q", 1}: "p01",
	}
	ev := Evaluate(procs, []PlacementQuery{q}, asg, Network{HopLatency: 0.001, ProcBandwidth: 1e6})
	if ev.Feasible {
		t.Error("bandwidth-violating placement marked feasible")
	}
	if ev.TrafficBytes != 1000*1e6 {
		t.Errorf("traffic = %v", ev.TrafficBytes)
	}
}

func TestEvaluationHelpers(t *testing.T) {
	procs := mkProcs(2, 100)
	queries := []PlacementQuery{
		{ID: "a", InputRate: 10, TupleSize: 8, Fragments: []FragmentSpec{{Cost: 1, Selectivity: 1}}},
		{ID: "b", InputRate: 10, TupleSize: 8, Fragments: []FragmentSpec{{Cost: 3, Selectivity: 1}}},
	}
	asg := Assignment{
		FragmentRef{"a", 0}: "p00",
		FragmentRef{"b", 0}: "p01",
	}
	ev := Evaluate(procs, queries, asg, DefaultNetwork)
	if !ev.Feasible {
		t.Fatal("feasible placement rejected")
	}
	if ev.Imbalance() <= 1 {
		t.Errorf("imbalance = %v, want > 1 (uneven loads)", ev.Imbalance())
	}
	if got := ev.PRQuantile(0); got > ev.PRQuantile(1) {
		t.Error("quantiles not monotone")
	}
	if ev.MeanPR <= 0 {
		t.Error("mean PR not computed")
	}
	empty := Evaluation{}
	if empty.Imbalance() != 1 || empty.PRQuantile(0.5) != 0 {
		t.Error("empty evaluation helpers wrong")
	}
}

func TestDistributionLimitAblation(t *testing.T) {
	// Sweeping the distribution limit: limit 1 forgoes parallelism (a
	// hot processor), unlimited pays hops; an intermediate limit should
	// be at least as good on PRmax as limit 1.
	rng := rand.New(rand.NewSource(5))
	queries := mkWorkload(rng, 24)
	total := 0.0
	for _, q := range queries {
		total += q.TotalLoad()
	}
	procs := mkProcs(6, total/6/0.7)
	prAt := func(limit int) float64 {
		qs := make([]PlacementQuery, len(queries))
		copy(qs, queries)
		for i := range qs {
			qs[i].DistributionLimit = limit
		}
		asg, err := PRPlacer{}.Place(procs, qs)
		if err != nil {
			t.Fatal(err)
		}
		return Evaluate(procs, qs, asg, DefaultNetwork).PRMax
	}
	if prAt(3) > prAt(1) {
		t.Errorf("limit 3 PRmax %v worse than limit 1 %v", prAt(3), prAt(1))
	}
}
