// Package entity implements the paper's intra-entity layer (Section 4):
// a cluster of processors under one administration. It provides
//
//   - stream delegation (Figure 3): each incoming stream is owned by one
//     delegation processor that routes it inside the cluster and relays
//     it to child entities, so no single node receives everything;
//   - dynamic operator placement (Section 4.1): queries are split into
//     fragments placed on processors to minimize the worst Performance
//     Ratio PR = delay/processing-time, under the paper's three
//     heuristics — balance load, bound each query's spread by a
//     distribution limit, and minimize communication traffic;
//   - the Adaptation Module (Section 4.2): a platform-independent layer
//     that observes operator selectivities and re-orders commutable
//     operators (and the routing between candidate downstream
//     processors) at runtime.
package entity

import (
	"fmt"
	"math/rand"
	"sort"
)

// Proc describes one processor of the entity's cluster in the placement
// model. Capacity is in abstract cost-units per second.
type Proc struct {
	ID       string
	Capacity float64
}

// FragmentSpec is one pipeline stage of a query in the placement model.
type FragmentSpec struct {
	// Cost is the per-tuple processing cost in abstract units.
	Cost float64
	// Selectivity is outputs per input for this stage.
	Selectivity float64
}

// PlacementQuery describes one query to place: an ordered pipeline of
// fragments fed by a stream of InputRate tuples/second.
type PlacementQuery struct {
	ID string
	// Fragments in pipeline order; fragment i feeds fragment i+1.
	Fragments []FragmentSpec
	// InputRate is the arrival rate at fragment 0, tuples/second.
	InputRate float64
	// TupleSize is the average tuple size in bytes, for traffic
	// accounting.
	TupleSize float64
	// DistributionLimit bounds the number of distinct processors the
	// query's fragments may occupy (the paper's second heuristic);
	// 0 means unlimited.
	DistributionLimit int
}

// rateInto returns the tuple rate entering fragment i.
func (q PlacementQuery) rateInto(i int) float64 {
	rate := q.InputRate
	for j := 0; j < i; j++ {
		rate *= q.Fragments[j].Selectivity
	}
	return rate
}

// loadOf returns the processing load (cost-units/second) fragment i
// imposes on its processor.
func (q PlacementQuery) loadOf(i int) float64 {
	return q.rateInto(i) * q.Fragments[i].Cost
}

// TotalLoad returns the query's total processing load.
func (q PlacementQuery) TotalLoad() float64 {
	sum := 0.0
	for i := range q.Fragments {
		sum += q.loadOf(i)
	}
	return sum
}

// Validate checks the query is well-formed.
func (q PlacementQuery) Validate() error {
	if q.ID == "" {
		return fmt.Errorf("entity: placement query needs an ID")
	}
	if len(q.Fragments) == 0 {
		return fmt.Errorf("entity: query %s has no fragments", q.ID)
	}
	if q.InputRate <= 0 {
		return fmt.Errorf("entity: query %s needs a positive input rate", q.ID)
	}
	for i, f := range q.Fragments {
		if f.Cost <= 0 {
			return fmt.Errorf("entity: query %s fragment %d needs positive cost", q.ID, i)
		}
		if f.Selectivity < 0 {
			return fmt.Errorf("entity: query %s fragment %d has negative selectivity", q.ID, i)
		}
	}
	return nil
}

// Assignment maps (queryID, fragment index) to a processor ID.
type Assignment map[FragmentRef]string

// FragmentRef addresses one fragment of one query.
type FragmentRef struct {
	Query    string
	Fragment int
}

// Placer computes fragment assignments.
type Placer interface {
	// Name identifies the strategy in experiment output.
	Name() string
	// Place assigns every fragment of every query to a processor.
	Place(procs []Proc, queries []PlacementQuery) (Assignment, error)
}

func validateInputs(procs []Proc, queries []PlacementQuery) error {
	if len(procs) == 0 {
		return fmt.Errorf("entity: no processors")
	}
	seen := make(map[string]bool, len(procs))
	for _, p := range procs {
		if p.ID == "" || p.Capacity <= 0 {
			return fmt.Errorf("entity: processor %q needs an ID and positive capacity", p.ID)
		}
		if seen[p.ID] {
			return fmt.Errorf("entity: duplicate processor %q", p.ID)
		}
		seen[p.ID] = true
	}
	qseen := make(map[string]bool, len(queries))
	for _, q := range queries {
		if err := q.Validate(); err != nil {
			return err
		}
		if qseen[q.ID] {
			return fmt.Errorf("entity: duplicate query %q", q.ID)
		}
		qseen[q.ID] = true
	}
	return nil
}

// PRPlacer implements the paper's placement heuristics: process queries
// heaviest first; give each query a working set of at most
// DistributionLimit processors chosen least-loaded; within the set,
// assign fragments contiguously (adjacent fragments colocate unless the
// current processor is saturated), which bounds per-query network hops
// and minimizes traffic; then run a PR-driven local improvement pass.
type PRPlacer struct {
	// ImproveRounds bounds the local-improvement passes (default 4).
	ImproveRounds int
	// Net is the network latency model used when evaluating moves
	// (zero value = DefaultNetwork).
	Net Network
}

// Name implements Placer.
func (PRPlacer) Name() string { return "pr-aware" }

// Place implements Placer.
func (p PRPlacer) Place(procs []Proc, queries []PlacementQuery) (Assignment, error) {
	if err := validateInputs(procs, queries); err != nil {
		return nil, err
	}
	rounds := p.ImproveRounds
	if rounds <= 0 {
		rounds = 4
	}
	net := p.Net.normalized()

	ordered := make([]PlacementQuery, len(queries))
	copy(ordered, queries)
	sort.SliceStable(ordered, func(i, j int) bool {
		li, lj := ordered[i].TotalLoad(), ordered[j].TotalLoad()
		if li != lj {
			return li > lj
		}
		return ordered[i].ID < ordered[j].ID
	})

	asg := make(Assignment)
	load := make(map[string]float64, len(procs))
	capacity := make(map[string]float64, len(procs))
	totalLoad := 0.0
	totalCap := 0.0
	for _, pr := range procs {
		capacity[pr.ID] = pr.Capacity
		totalCap += pr.Capacity
	}
	for _, q := range ordered {
		totalLoad += q.TotalLoad()
	}
	targetUtil := totalLoad / totalCap // ideal uniform utilization

	for _, q := range ordered {
		limit := q.DistributionLimit
		if limit <= 0 || limit > len(procs) {
			limit = len(procs)
		}
		used := make([]string, 0, limit)
		cur := leastUtilized(procs, load, capacity, nil)
		used = append(used, cur)
		for i := range q.Fragments {
			fl := q.loadOf(i)
			// Open a new processor when the current one would exceed
			// the utilization target (with slack) and the limit allows.
			if (load[cur]+fl)/capacity[cur] > targetUtil*1.1+1e-12 && len(used) < limit {
				next := leastUtilized(procs, load, capacity, used)
				if next != "" && (load[next]+fl)/capacity[next] < (load[cur]+fl)/capacity[cur] {
					cur = next
					used = append(used, cur)
				}
			}
			asg[FragmentRef{q.ID, i}] = cur
			load[cur] += fl
		}
	}

	improvePR(procs, queries, asg, net, rounds)
	return asg, nil
}

// leastUtilized returns the processor with the lowest load/capacity not
// in exclude; exclude == nil means consider all.
func leastUtilized(procs []Proc, load, capacity map[string]float64, exclude []string) string {
	ex := make(map[string]bool, len(exclude))
	for _, id := range exclude {
		ex[id] = true
	}
	best := ""
	bestU := 0.0
	for _, p := range procs {
		if ex[p.ID] {
			continue
		}
		u := load[p.ID] / capacity[p.ID]
		if best == "" || u < bestU || (u == bestU && p.ID < best) {
			best, bestU = p.ID, u
		}
	}
	return best
}

// improvePR hill-climbs: repeatedly try moving one fragment of a query
// on the PR-max path to another processor allowed by the distribution
// limit, accepting moves that reduce PRmax (ties broken by traffic).
func improvePR(procs []Proc, queries []PlacementQuery, asg Assignment, net Network, rounds int) {
	byID := make(map[string]PlacementQuery, len(queries))
	for _, q := range queries {
		byID[q.ID] = q
	}
	for round := 0; round < rounds; round++ {
		ev := Evaluate(procs, queries, asg, net)
		improved := false
		// Focus on the worst query.
		worst := ev.WorstQuery
		if worst == "" {
			return
		}
		q := byID[worst]
		limit := q.DistributionLimit
		if limit <= 0 || limit > len(procs) {
			limit = len(procs)
		}
		for i := range q.Fragments {
			ref := FragmentRef{q.ID, i}
			origin := asg[ref]
			bestProc := origin
			bestPR := ev.PRMax
			bestTraffic := ev.TrafficBytes
			for _, p := range procs {
				if p.ID == origin {
					continue
				}
				asg[ref] = p.ID
				if spreadOf(q, asg) > limit {
					continue
				}
				cand := Evaluate(procs, queries, asg, net)
				if cand.PRMax < bestPR-1e-12 ||
					(cand.PRMax <= bestPR+1e-12 && cand.TrafficBytes < bestTraffic) {
					bestProc, bestPR, bestTraffic = p.ID, cand.PRMax, cand.TrafficBytes
				}
			}
			asg[ref] = bestProc
			if bestProc != origin {
				improved = true
				ev = Evaluate(procs, queries, asg, net)
			}
		}
		if !improved {
			return
		}
	}
}

// spreadOf counts distinct processors used by a query under asg.
func spreadOf(q PlacementQuery, asg Assignment) int {
	set := make(map[string]bool, len(q.Fragments))
	for i := range q.Fragments {
		set[asg[FragmentRef{q.ID, i}]] = true
	}
	return len(set)
}

// RandomPlacer scatters fragments uniformly at random (seeded for
// reproducibility) — the no-information baseline.
type RandomPlacer struct {
	Seed int64
}

// Name implements Placer.
func (RandomPlacer) Name() string { return "random" }

// Place implements Placer.
func (r RandomPlacer) Place(procs []Proc, queries []PlacementQuery) (Assignment, error) {
	if err := validateInputs(procs, queries); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(r.Seed))
	asg := make(Assignment)
	for _, q := range queries {
		for i := range q.Fragments {
			asg[FragmentRef{q.ID, i}] = procs[rng.Intn(len(procs))].ID
		}
	}
	return asg, nil
}

// RoundRobinPlacer deals fragments across processors in order — spreads
// load blindly and maximizes inter-fragment traffic (every hop crosses
// the network).
type RoundRobinPlacer struct{}

// Name implements Placer.
func (RoundRobinPlacer) Name() string { return "round-robin" }

// Place implements Placer.
func (RoundRobinPlacer) Place(procs []Proc, queries []PlacementQuery) (Assignment, error) {
	if err := validateInputs(procs, queries); err != nil {
		return nil, err
	}
	n := 0
	asg := make(Assignment)
	for _, q := range queries {
		for i := range q.Fragments {
			asg[FragmentRef{q.ID, i}] = procs[n%len(procs)].ID
			n++
		}
	}
	return asg, nil
}

// LoadOnlyPlacer assigns every fragment to the least-utilized processor
// at that moment, ignoring the distribution limit and traffic — the
// Flux/Borealis-style partitioning view of the problem the paper argues
// is insufficient here.
type LoadOnlyPlacer struct{}

// Name implements Placer.
func (LoadOnlyPlacer) Name() string { return "load-only" }

// Place implements Placer.
func (LoadOnlyPlacer) Place(procs []Proc, queries []PlacementQuery) (Assignment, error) {
	if err := validateInputs(procs, queries); err != nil {
		return nil, err
	}
	asg := make(Assignment)
	load := make(map[string]float64, len(procs))
	capacity := make(map[string]float64, len(procs))
	for _, p := range procs {
		capacity[p.ID] = p.Capacity
	}
	for _, q := range queries {
		for i := range q.Fragments {
			id := leastUtilized(procs, load, capacity, nil)
			asg[FragmentRef{q.ID, i}] = id
			load[id] += q.loadOf(i)
		}
	}
	return asg, nil
}
