package entity

import (
	"testing"
	"time"

	"sspd/internal/simnet"
)

// With dedup on and marks installed, tuples at or below the mark must
// be dropped as stale and everything above processed exactly once.
func TestIngestDedupFiltersStale(t *testing.T) {
	e, net, log := newTestEntity(t, 2)
	e.SetIngestDedup(true)
	if err := e.PlaceQuery(aggQuerySpec("q1", 4), 1); err != nil {
		t.Fatal(err)
	}
	if err := e.SetQueryMarks("q1", map[string]uint64{"quotes": 10}); err != nil {
		t.Fatal(err)
	}
	for i := uint64(5); i <= 15; i++ {
		e.Ingest(quote(i, "ibm", 50, 1))
	}
	net.Quiesce(time.Second)
	if got := log.count("q1"); got != 5 {
		t.Fatalf("results = %d, want 5 (seqs 11..15)", got)
	}
	if got := e.StaleDrops(); got != 6 {
		t.Fatalf("stale drops = %d, want 6 (seqs 5..10)", got)
	}
	marks, ok := e.QueryMarks("q1")
	if !ok || marks["quotes"] != 15 {
		t.Fatalf("marks = %v %v, want quotes=15", marks, ok)
	}
	// Dedup off again: the same stale seq flows through.
	e.SetIngestDedup(false)
	e.Ingest(quote(3, "ibm", 50, 1))
	net.Quiesce(time.Second)
	if got := log.count("q1"); got != 6 {
		t.Fatalf("dedup-off results = %d, want 6", got)
	}
}

// CheckpointQuery must capture a consistent cut — marks covering every
// processed tuple and a restorable state — and resume processing
// afterwards with nothing lost.
func TestCheckpointQueryCutAndResume(t *testing.T) {
	e, net, log := newTestEntity(t, 2)
	e.SetIngestDedup(true)
	if err := e.PlaceQuery(aggQuerySpec("q1", 8), 1); err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 20; i++ {
		e.Ingest(quote(i, "ibm", 50, 1))
	}
	net.Quiesce(time.Second)

	st, marks, stateBytes, ok, err := e.CheckpointQuery("q1")
	if err != nil || !ok {
		t.Fatalf("checkpoint: %v ok=%v", err, ok)
	}
	if stateBytes <= 0 || len(st) == 0 {
		t.Fatalf("empty state: %d bytes, %d frags", stateBytes, len(st))
	}
	if marks["quotes"] != 20 {
		t.Fatalf("marks = %v, want quotes=20", marks)
	}
	// The query keeps running after the checkpoint.
	for i := uint64(21); i <= 25; i++ {
		e.Ingest(quote(i, "ibm", 50, 1))
	}
	net.Quiesce(time.Second)
	if got := log.count("q1"); got != 25 {
		t.Fatalf("post-checkpoint results = %d, want 25", got)
	}

	// Restore the cut on a fresh entity and replay an overlapping
	// suffix: only seqs above the mark process, and the window is
	// still warm (count 8, not restarted).
	net2 := simnet.NewSim(nil)
	t.Cleanup(func() { net2.Close() })
	e2, err := New("e2", net2, testCatalog(t), 1, miniFactory)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e2.Close)
	log2 := &valueLog{}
	e2.SetResultHandler(log2.handle)
	e2.SetIngestDedup(true)
	if err := e2.PrepareQuery(aggQuerySpec("q1", 8), 1); err != nil {
		t.Fatal(err)
	}
	if err := e2.RestoreQuery("q1", st); err != nil {
		t.Fatal(err)
	}
	if err := e2.SetQueryMarks("q1", marks); err != nil {
		t.Fatal(err)
	}
	for i := uint64(15); i <= 23; i++ { // replay overlaps the mark
		e2.Ingest(quote(i, "ibm", 50, 1))
	}
	if _, _, err := e2.CommitQuery("q1", nil); err != nil {
		t.Fatal(err)
	}
	net2.Quiesce(time.Second)
	if got := log2.count("q1"); got != 3 {
		t.Fatalf("restored results = %d, want 3 (seqs 21..23)", got)
	}
	if v := log2.last("q1"); v != 8 {
		t.Fatalf("window continuity broken after restore: count %v, want 8", v)
	}
}

func TestCheckpointQueryErrors(t *testing.T) {
	e, _, _ := newTestEntity(t, 1)
	if _, _, _, _, err := e.CheckpointQuery("nope"); err == nil {
		t.Fatal("unknown query accepted")
	}
	if err := e.SetQueryMarks("nope", nil); err == nil {
		t.Fatal("marks for unknown query accepted")
	}
	if _, ok := e.QueryMarks("nope"); ok {
		t.Fatal("marks for unknown query returned")
	}
}
