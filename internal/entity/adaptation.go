package entity

import (
	"fmt"
	"sort"
	"sync"

	"sspd/internal/engine"
	"sspd/internal/metrics"
	"sspd/internal/stream"
)

// OptimalFilterOrder is re-exported from the engine package (the
// ordering math lives beside the queries it permutes).
func OptimalFilterOrder(costs, sels []float64) []int {
	return engine.OptimalFilterOrder(costs, sels)
}

// ExpectedFilterCost is re-exported from the engine package.
func ExpectedFilterCost(costs, sels []float64, perm []int) float64 {
	return engine.ExpectedFilterCost(costs, sels, perm)
}

// AM is the paper's Adaptation Module: it intercepts the tuples flowing
// into one compiled query, keeps observing the engine-reported
// selectivities, and periodically re-orders the query's commutable
// filters to the currently optimal order. It is engine-independent: it
// only uses the Query's public reorder hook, never engine internals.
type AM struct {
	q *engine.Query
	// every is the adaptation check period in tuples.
	every int
	// minGain is the relative expected-cost improvement required to
	// reorder (hysteresis against thrashing).
	minGain float64

	fed         int
	Adaptations metrics.Counter
}

// NewAM wraps a compiled query. every <= 0 defaults to 256 tuples;
// minGain <= 0 defaults to 5%.
func NewAM(q *engine.Query, every int, minGain float64) (*AM, error) {
	if q == nil {
		return nil, fmt.Errorf("entity: AM needs a query")
	}
	if every <= 0 {
		every = 256
	}
	if minGain <= 0 {
		minGain = 0.05
	}
	return &AM{q: q, every: every, minGain: minGain}, nil
}

// Feed pushes one tuple through the query (returning its result count)
// and adapts the operator ordering when due. Like the Query itself, Feed
// is single-threaded.
func (am *AM) Feed(streamName string, t stream.Tuple) int {
	n := am.q.Feed(streamName, t)
	am.fed++
	if am.fed%am.every == 0 {
		am.maybeReorder()
	}
	return n
}

// maybeReorder applies the optimal order if it beats the current order
// by at least minGain.
func (am *AM) maybeReorder() {
	sels := am.q.FilterSelectivities()
	costs := am.q.FilterCosts()
	if len(sels) < 2 {
		return
	}
	current := make([]int, len(sels))
	for i := range current {
		current[i] = i
	}
	best := OptimalFilterOrder(costs, sels)
	curCost := ExpectedFilterCost(costs, sels, current)
	bestCost := ExpectedFilterCost(costs, sels, best)
	if bestCost < curCost*(1-am.minGain) {
		if err := am.q.ReorderFilters(best); err == nil {
			am.Adaptations.Inc()
		}
	}
}

// Query exposes the wrapped query.
func (am *AM) Query() *engine.Query { return am.q }

// Candidate is one possible immediate downstream processor for a
// fragment's output, scored by the statistics the AM collects (queue
// pressure, observed delay).
type Candidate struct {
	ID string
}

// DownstreamChooser picks, per output tuple, the best immediate
// downstream processor among candidates — the per-tuple routing decision
// of Section 4.2. Scores are smoothed observed delays; Report feeds
// measurements back. Safe for concurrent use.
type DownstreamChooser struct {
	mu    sync.Mutex
	score map[string]*metrics.EWMA
	order []string
	// explore sends every Nth tuple to a random-ish (round-robin)
	// candidate so stale scores recover.
	explore int
	n       int
}

// NewDownstreamChooser builds a chooser over candidate processor IDs.
// every <= 0 defaults to exploring every 32nd tuple.
func NewDownstreamChooser(candidates []string, explore int) (*DownstreamChooser, error) {
	if len(candidates) == 0 {
		return nil, fmt.Errorf("entity: chooser needs candidates")
	}
	if explore <= 0 {
		explore = 32
	}
	c := &DownstreamChooser{
		score:   make(map[string]*metrics.EWMA, len(candidates)),
		explore: explore,
	}
	for _, id := range candidates {
		if _, dup := c.score[id]; dup {
			return nil, fmt.Errorf("entity: duplicate candidate %q", id)
		}
		c.score[id] = metrics.NewEWMA(0.2)
		c.order = append(c.order, id)
	}
	sort.Strings(c.order)
	return c, nil
}

// Choose returns the candidate with the lowest smoothed delay,
// periodically interleaving exploration of the others.
func (c *DownstreamChooser) Choose() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
	if c.n%c.explore == 0 {
		return c.order[(c.n/c.explore)%len(c.order)]
	}
	best := ""
	bestScore := 0.0
	for _, id := range c.order {
		e := c.score[id]
		if !e.Initialized() {
			return id // unmeasured candidates first
		}
		if s := e.Value(); best == "" || s < bestScore {
			best, bestScore = id, s
		}
	}
	return best
}

// Report feeds an observed delay (seconds) for a candidate back into
// the chooser. Unknown candidates are ignored.
func (c *DownstreamChooser) Report(id string, delaySeconds float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.score[id]; ok {
		e.Update(delaySeconds)
	}
}

// Score returns the current smoothed delay for a candidate (0 if
// unmeasured or unknown).
func (c *DownstreamChooser) Score(id string) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.score[id]; ok {
		return e.Value()
	}
	return 0
}

// SplitSpec cuts a query into n contiguous fragments for placement on
// different processors. Only the filter chain is cuttable: a query with
// a join is never split (the paper's own argument — operator state makes
// finer cuts engine-specific), and a terminal aggregate stays in the
// last fragment. Fragment IDs are spec.ID + "#<i>"; every fragment keeps
// the original Source stream (filters preserve the schema), so fragment
// i+1 can consume fragment i's output unchanged.
func SplitSpec(spec engine.QuerySpec, n int) []engine.QuerySpec {
	if spec.Join != nil || len(spec.Filters) < 2 || n <= 1 {
		one := spec
		one.ID = spec.ID + "#0"
		return []engine.QuerySpec{one}
	}
	if n > len(spec.Filters) {
		n = len(spec.Filters)
	}
	per := len(spec.Filters) / n
	extra := len(spec.Filters) % n
	out := make([]engine.QuerySpec, 0, n)
	idx := 0
	for i := 0; i < n; i++ {
		take := per
		if i < extra {
			take++
		}
		frag := engine.QuerySpec{
			ID:      fmt.Sprintf("%s#%d", spec.ID, i),
			Source:  spec.Source,
			Filters: spec.Filters[idx : idx+take],
		}
		idx += take
		if i == n-1 {
			frag.Distinct = spec.Distinct
			frag.Agg = spec.Agg
			frag.TopK = spec.TopK
		}
		out = append(out, frag)
	}
	return out
}
