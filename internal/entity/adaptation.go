package entity

import (
	"fmt"
	"sort"
	"sync"

	"sspd/internal/engine"
	"sspd/internal/metrics"
	"sspd/internal/stream"
)

// OptimalFilterOrder is re-exported from the engine package (the
// ordering math lives beside the queries it permutes).
func OptimalFilterOrder(costs, sels []float64) []int {
	return engine.OptimalFilterOrder(costs, sels)
}

// ExpectedFilterCost is re-exported from the engine package.
func ExpectedFilterCost(costs, sels []float64, perm []int) float64 {
	return engine.ExpectedFilterCost(costs, sels, perm)
}

// AM is the paper's Adaptation Module: it intercepts the tuples flowing
// into one compiled query, keeps observing the engine-reported
// selectivities, and periodically re-orders the query's commutable
// filters to the currently optimal order. It is engine-independent: it
// only uses the Query's public reorder hook, never engine internals.
type AM struct {
	q *engine.Query
	// every is the adaptation check period in tuples.
	every int
	// minGain is the relative expected-cost improvement required to
	// reorder (hysteresis against thrashing).
	minGain float64

	fed         int
	Adaptations metrics.Counter
}

// NewAM wraps a compiled query. every <= 0 defaults to 256 tuples;
// minGain <= 0 defaults to 5%.
func NewAM(q *engine.Query, every int, minGain float64) (*AM, error) {
	if q == nil {
		return nil, fmt.Errorf("entity: AM needs a query")
	}
	if every <= 0 {
		every = 256
	}
	if minGain <= 0 {
		minGain = 0.05
	}
	return &AM{q: q, every: every, minGain: minGain}, nil
}

// Feed pushes one tuple through the query (returning its result count)
// and adapts the operator ordering when due. Like the Query itself, Feed
// is single-threaded.
func (am *AM) Feed(streamName string, t stream.Tuple) int {
	n := am.q.Feed(streamName, t)
	am.fed++
	if am.fed%am.every == 0 {
		am.maybeReorder()
	}
	return n
}

// maybeReorder delegates the reorder decision to engine.MaybeReorder —
// the single source of truth every engine's AdaptOrdering also uses —
// and counts applied reorders.
func (am *AM) maybeReorder() {
	if engine.MaybeReorder(am.q, am.minGain) {
		am.Adaptations.Inc()
	}
}

// Query exposes the wrapped query.
func (am *AM) Query() *engine.Query { return am.q }

// Candidate is one possible immediate downstream processor for a
// fragment's output, scored by the statistics the AM collects (queue
// pressure, observed delay).
type Candidate struct {
	ID string
}

// DownstreamChooser picks, per output tuple, the best immediate
// downstream processor among candidates — the per-tuple routing decision
// of Section 4.2. Scores are smoothed observed delays; Report feeds
// measurements back. Safe for concurrent use: the federation's AM plane
// Reports trace-measured delays from tuple-path goroutines while
// upstream fragment goroutines call Choose.
type DownstreamChooser struct {
	mu    sync.Mutex
	score map[string]*metrics.EWMA
	order []string
	// explore sends every Nth tuple to a non-best (round-robin)
	// candidate so stale scores recover.
	explore int
	n       int
	// cold rotates the pick among still-unmeasured candidates, so the
	// feedback round-trip window spreads load instead of slamming the
	// first candidate in sorted order.
	cold int
	// unm is Choose's scratch list of unmeasured candidates (reused to
	// keep the per-tuple decision allocation-free).
	unm []string
	// routed/explored count decisions engine-lifetime: every Choose,
	// and the subset that probed a non-best candidate (cold-start
	// rotation or explore tick).
	routed   int64
	explored int64
}

// NewDownstreamChooser builds a chooser over candidate processor IDs.
// every <= 0 defaults to exploring every 32nd tuple.
func NewDownstreamChooser(candidates []string, explore int) (*DownstreamChooser, error) {
	if len(candidates) == 0 {
		return nil, fmt.Errorf("entity: chooser needs candidates")
	}
	if explore <= 0 {
		explore = 32
	}
	c := &DownstreamChooser{
		score:   make(map[string]*metrics.EWMA, len(candidates)),
		explore: explore,
		unm:     make([]string, 0, len(candidates)),
	}
	for _, id := range candidates {
		if _, dup := c.score[id]; dup {
			return nil, fmt.Errorf("entity: duplicate candidate %q", id)
		}
		c.score[id] = metrics.NewEWMA(0.2)
		c.order = append(c.order, id)
	}
	sort.Strings(c.order)
	return c, nil
}

// Choose returns the candidate with the lowest smoothed delay,
// periodically interleaving exploration of the others. While any
// candidate is still unmeasured the pick rotates among the unmeasured
// ones — the delay report for the first pick is a full feedback
// round-trip away, and every tuple in that window would otherwise herd
// onto one processor. Explore ticks skip the current best: probing the
// candidate already being measured by regular traffic would waste the
// slot meant to let stale scores recover.
func (c *DownstreamChooser) Choose() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
	c.routed++
	best := ""
	bestScore := 0.0
	unm := c.unm[:0]
	for _, id := range c.order {
		e := c.score[id]
		if !e.Initialized() {
			unm = append(unm, id)
			continue
		}
		if s := e.Value(); best == "" || s < bestScore {
			best, bestScore = id, s
		}
	}
	if len(unm) > 0 {
		c.cold++
		c.explored++
		return unm[(c.cold-1)%len(unm)]
	}
	if len(c.order) > 1 && c.n%c.explore == 0 {
		c.explored++
		k := (c.n / c.explore) % (len(c.order) - 1)
		for _, id := range c.order {
			if id == best {
				continue
			}
			if k == 0 {
				return id
			}
			k--
		}
	}
	return best
}

// Best returns the measured candidate with the lowest smoothed delay,
// or "" while every candidate is still unmeasured. The AM plane diffs
// it across Reports to journal preferred-candidate switches.
func (c *DownstreamChooser) Best() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	best := ""
	bestScore := 0.0
	for _, id := range c.order {
		e := c.score[id]
		if !e.Initialized() {
			continue
		}
		if s := e.Value(); best == "" || s < bestScore {
			best, bestScore = id, s
		}
	}
	return best
}

// Candidates returns the candidate IDs, sorted.
func (c *DownstreamChooser) Candidates() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.order...)
}

// RoutedCount returns how many Choose decisions this chooser has made.
func (c *DownstreamChooser) RoutedCount() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.routed
}

// ExploredCount returns how many decisions probed a non-best candidate
// (cold-start rotation or explore ticks).
func (c *DownstreamChooser) ExploredCount() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.explored
}

// Report feeds an observed delay (seconds) for a candidate back into
// the chooser. Unknown candidates are ignored.
func (c *DownstreamChooser) Report(id string, delaySeconds float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.score[id]; ok {
		e.Update(delaySeconds)
	}
}

// Score returns the current smoothed delay for a candidate (0 if
// unmeasured or unknown).
func (c *DownstreamChooser) Score(id string) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.score[id]; ok {
		return e.Value()
	}
	return 0
}

// SplitSpec cuts a query into n contiguous fragments for placement on
// different processors. Only the filter chain is cuttable: a query with
// a join is never split (the paper's own argument — operator state makes
// finer cuts engine-specific), and a terminal aggregate stays in the
// last fragment. Fragment IDs are spec.ID + "#<i>"; every fragment keeps
// the original Source stream (filters preserve the schema), so fragment
// i+1 can consume fragment i's output unchanged.
func SplitSpec(spec engine.QuerySpec, n int) []engine.QuerySpec {
	if spec.Join != nil || len(spec.Filters) < 2 || n <= 1 {
		one := spec
		one.ID = spec.ID + "#0"
		return []engine.QuerySpec{one}
	}
	if n > len(spec.Filters) {
		n = len(spec.Filters)
	}
	per := len(spec.Filters) / n
	extra := len(spec.Filters) % n
	out := make([]engine.QuerySpec, 0, n)
	idx := 0
	for i := 0; i < n; i++ {
		take := per
		if i < extra {
			take++
		}
		frag := engine.QuerySpec{
			ID:      fmt.Sprintf("%s#%d", spec.ID, i),
			Source:  spec.Source,
			Filters: spec.Filters[idx : idx+take],
		}
		idx += take
		if i == n-1 {
			frag.Distinct = spec.Distinct
			frag.Agg = spec.Agg
			frag.TopK = spec.TopK
		}
		out = append(out, frag)
	}
	return out
}
