package entity

import (
	"sync"
	"testing"
	"time"

	"sspd/internal/engine"
	"sspd/internal/simnet"
	"sspd/internal/stream"
)

func aggQuerySpec(id string, window int) engine.QuerySpec {
	return engine.QuerySpec{
		ID:     id,
		Source: "quotes",
		Agg: &engine.AggSpec{Fn: 0 /* AggCount */, ValueField: "price",
			GroupField: "", Window: stream.CountWindow(window)},
	}
}

func TestPauseBuffersAndResumeReplays(t *testing.T) {
	e, net, log := newTestEntity(t, 2)
	if err := e.PlaceQuery(aggQuerySpec("q1", 8), 1); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 10; i++ {
		e.Ingest(quote(i, "ibm", 50, 1))
	}
	net.Quiesce(time.Second)
	if got := log.count("q1"); got != 10 {
		t.Fatalf("pre-pause results = %d, want 10", got)
	}
	if err := e.PauseQuery("q1"); err != nil {
		t.Fatal(err)
	}
	for i := uint64(10); i < 25; i++ {
		e.Ingest(quote(i, "ibm", 50, 1))
	}
	net.Quiesce(time.Second)
	if got := log.count("q1"); got != 10 {
		t.Fatalf("paused query still produced: %d results", got)
	}
	n, err := e.ResumeQuery("q1")
	if err != nil {
		t.Fatal(err)
	}
	if n != 15 {
		t.Fatalf("replayed %d, want 15", n)
	}
	net.Quiesce(time.Second)
	if got := log.count("q1"); got != 25 {
		t.Fatalf("post-resume results = %d, want 25", got)
	}
	if err := e.PauseQuery("nope"); err == nil {
		t.Error("pause of unknown query accepted")
	}
}

func TestMigrationAcrossEntities(t *testing.T) {
	net := simnet.NewSim(nil)
	t.Cleanup(func() { net.Close() })
	mk := func(id string) (*Entity, *valueLog) {
		e, err := New(id, net, testCatalog(t), 1, miniFactory)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(e.Close)
		log := &valueLog{}
		e.SetResultHandler(log.handle)
		return e, log
	}
	src, srcLog := mk("src")
	dst, dstLog := mk("dst")

	// Windowed count over 8 tuples: once warm, every result value is 8
	// — the order-insensitive continuity signal.
	spec := aggQuerySpec("q1", 8)
	if err := src.PlaceQuery(spec, 1); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 20; i++ {
		src.Ingest(quote(i, "ibm", 50, 1))
	}
	net.Quiesce(time.Second)

	// The full entity-level handoff, as the federation drives it.
	if err := dst.PrepareQuery(spec, 1); err != nil {
		t.Fatal(err)
	}
	if err := src.PauseQuery("q1"); err != nil {
		t.Fatal(err)
	}
	// Tuples landing on both sides during the overlap: the source
	// buffers seqs 20-24, the destination 22-27 — dedup must replay
	// 20-27 exactly once.
	for i := uint64(20); i < 25; i++ {
		src.Ingest(quote(i, "ibm", 50, 1))
	}
	for i := uint64(22); i < 28; i++ {
		dst.Ingest(quote(i, "ibm", 50, 1))
	}
	net.Quiesce(time.Second)
	_ = src.DrainQuery("q1", time.Second)

	st, bytes, ok, err := src.SnapshotQuery("q1")
	if err != nil || !ok || bytes <= 0 {
		t.Fatalf("snapshot: %v ok=%v bytes=%d", err, ok, bytes)
	}
	if err := dst.RestoreQuery("q1", st); err != nil {
		t.Fatal(err)
	}
	_, buffered, err := src.CompleteMigration("q1")
	if err != nil {
		t.Fatal(err)
	}
	if len(buffered) != 5 {
		t.Fatalf("source buffered %d, want 5", len(buffered))
	}
	replayed, dropped, err := dst.CommitQuery("q1", buffered)
	if err != nil {
		t.Fatal(err)
	}
	if replayed != 8 || dropped != 0 {
		t.Fatalf("replayed/dropped = %d/%d, want 8/0", replayed, dropped)
	}
	net.Quiesce(time.Second)

	// Every tuple processed exactly once: 20 at the source, 8 replayed.
	if got := srcLog.count("q1"); got != 20 {
		t.Errorf("source results = %d, want 20", got)
	}
	if got := dstLog.count("q1"); got != 8 {
		t.Errorf("destination results = %d, want 8", got)
	}
	// Window continuity: the destination's window must still be full
	// (value 8), not restarted empty.
	dst.Ingest(quote(100, "ibm", 50, 1))
	net.Quiesce(time.Second)
	if got := dstLog.count("q1"); got != 9 {
		t.Fatalf("post-migration result missing: %d", got)
	}
	if v := dstLog.last("q1"); v != 8 {
		t.Fatalf("window continuity broken: count = %v, want 8", v)
	}
}

// valueLog counts results and remembers each query's last aggregate
// value (field 1 of the agg output schema).
type valueLog struct {
	mu    sync.Mutex
	n     map[string]int
	lastV map[string]float64
}

func (l *valueLog) handle(queryID string, t stream.Tuple) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.n == nil {
		l.n = map[string]int{}
		l.lastV = map[string]float64{}
	}
	l.n[queryID]++
	if len(t.Values) > 1 {
		l.lastV[queryID] = t.Value(1).AsFloat()
	}
}

func (l *valueLog) count(q string) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n[q]
}

func (l *valueLog) last(q string) float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastV[q]
}
