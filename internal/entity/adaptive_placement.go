package entity

import "sspd/internal/engine"

// PlaceQueryAdaptive places a query with REPLICATED middle fragments and
// per-tuple adaptive routing between them — the second half of Section
// 4.2: "a set of candidate downstream processors are generated when a
// query fragment is (re)placed onto a processor ... the AM adaptively
// chooses the immediate downstream processor for an output tuple".
//
// This is the in-process PROBE mode of the shared placement path
// (placeWith): every routed emit reports the chosen candidate engine's
// instantaneous load inline, so the chooser tracks load without any
// external feedback plane. The federation's EnableTupleRouting mode
// instead leaves the choosers to be fed trace-measured per-candidate
// delays by the AM plane — the paper's delay-statistics feedback loop.
func (e *Entity) PlaceQueryAdaptive(spec engine.QuerySpec, nFrags, replicas int) error {
	return e.placeWith(spec, nFrags, placeConfig{replicas: replicas, explore: 16, probe: true})
}
