package entity

import (
	"fmt"
	"sort"

	"sspd/internal/engine"
	"sspd/internal/stream"
)

// PlaceQueryAdaptive places a query with REPLICATED middle fragments and
// per-tuple adaptive routing between them — the second half of Section
// 4.2: "a set of candidate downstream processors are generated when a
// query fragment is (re)placed onto a processor ... the AM adaptively
// chooses the immediate downstream processor for an output tuple".
//
// Fragment 0 (fed by the delegation processor) and the final fragment
// (which may hold stateful operators and must not duplicate results) get
// one instance each; every middle fragment — a stateless filter stage,
// so any replica produces identical output for a tuple — is registered
// on `replicas` processors. Each upstream stage routes every output
// tuple to the candidate with the lowest smoothed load, so a slowed
// processor is avoided within a few tuples.
func (e *Entity) PlaceQueryAdaptive(spec engine.QuerySpec, nFrags, replicas int) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	if replicas < 1 {
		replicas = 1
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return fmt.Errorf("entity %s: closed", e.id)
	}
	if _, dup := e.queries[spec.ID]; dup {
		return fmt.Errorf("entity %s: query %s already placed", e.id, spec.ID)
	}
	if replicas > len(e.procs) {
		replicas = len(e.procs)
	}
	frags := SplitSpec(spec, nFrags)

	// Processor choice: least-loaded order, fragments dealt across it;
	// middle fragments take `replicas` consecutive processors.
	order := make([]int, len(e.procs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		la, lb := e.procs[order[a]].eng.Load(), e.procs[order[b]].eng.Load()
		if la != lb {
			return la < lb
		}
		return order[a] < order[b]
	})
	// replicaProcs[i] lists the processors hosting fragment i.
	replicaProcs := make([][]int, len(frags))
	cursor := 0
	for i := range frags {
		n := 1
		if i > 0 && i < len(frags)-1 {
			n = replicas
		}
		for r := 0; r < n; r++ {
			replicaProcs[i] = append(replicaProcs[i], order[cursor%len(order)])
			cursor++
		}
	}

	// Register back to front so each stage's emit can target the next.
	queryID := spec.ID
	type reg struct {
		procIdx int
		fragIdx int
	}
	var registered []reg
	rollback := func() {
		for _, r := range registered {
			_, _ = e.procs[r.procIdx].eng.Unregister(frags[r.fragIdx].ID)
		}
	}
	// emitFor builds the emit closure for one stage instance given the
	// next stage's candidates (nil = terminal).
	emitFor := func(fragIdx int, from *procNode) (func(stream.Tuple), error) {
		if fragIdx == len(frags)-1 {
			return func(t stream.Tuple) {
				e.Delivered.Inc()
				e.mu.Lock()
				fn := e.results
				e.mu.Unlock()
				if fn != nil {
					fn(queryID, t)
				}
			}, nil
		}
		next := replicaProcs[fragIdx+1]
		nextFrag := frags[fragIdx+1].ID
		if len(next) == 1 {
			target := e.procs[next[0]]
			if target == from {
				feeder := from.feeder
				return func(t stream.Tuple) { _ = feeder.FeedQuery(nextFrag, t) }, nil
			}
			to, tr, fromID := target.id, e.transport, from.id
			return func(t stream.Tuple) {
				_ = tr.Send(fromID, to, KindFeed, encodeFeed(nextFrag, t))
			}, nil
		}
		// Multiple candidates: per-tuple adaptive choice by smoothed
		// load. (In-process we read the candidate engine's load
		// directly; a distributed build would piggyback this statistic
		// on acks, as the paper's AM collects it.)
		ids := make([]string, len(next))
		byID := make(map[string]*procNode, len(next))
		for i, pi := range next {
			ids[i] = string(e.procs[pi].id)
			byID[ids[i]] = e.procs[pi]
		}
		chooser, err := NewDownstreamChooser(ids, 16)
		if err != nil {
			return nil, err
		}
		tr, fromNode := e.transport, from
		return func(t stream.Tuple) {
			pick := chooser.Choose()
			target := byID[pick]
			chooser.Report(pick, target.eng.Load())
			if target == fromNode {
				_ = fromNode.feeder.FeedQuery(nextFrag, t)
				return
			}
			_ = tr.Send(fromNode.id, target.id, KindFeed, encodeFeed(nextFrag, t))
		}, nil
	}

	for i := len(frags) - 1; i >= 0; i-- {
		for _, pi := range replicaProcs[i] {
			p := e.procs[pi]
			emit, err := emitFor(i, p)
			if err != nil {
				rollback()
				return err
			}
			if err := p.eng.Register(frags[i], emit); err != nil {
				rollback()
				return fmt.Errorf("entity %s: placing %s: %w", e.id, frags[i].ID, err)
			}
			registered = append(registered, reg{procIdx: pi, fragIdx: i})
		}
	}

	// Delegation fan-out feeds fragment 0's single instance.
	head := frags[0]
	headProc := e.procs[replicaProcs[0][0]]
	for _, s := range head.Streams() {
		dp := e.procs[e.delegationLocked(s)]
		dp.mu.Lock()
		dp.fanout[s] = append(dp.fanout[s], fanoutTarget{frag: head.ID, node: headProc.id})
		dp.mu.Unlock()
	}
	// Flatten the replica map into the bookkeeping RemoveQuery expects:
	// one (fragment, processor) pair per registration.
	pq := &placedQuery{spec: spec}
	for i := range frags {
		for _, pi := range replicaProcs[i] {
			pq.frags = append(pq.frags, frags[i])
			pq.procs = append(pq.procs, pi)
		}
	}
	e.queries[spec.ID] = pq
	return nil
}
