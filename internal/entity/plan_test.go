package entity

import (
	"testing"

	"sspd/internal/engine"
	"sspd/internal/workload"
)

func planRates() map[string]StreamRateHint {
	return map[string]StreamRateHint{
		"quotes": {TuplesPerSec: 1000, BytesPerTuple: 60},
		"trades": {TuplesPerSec: 500, BytesPerTuple: 40},
	}
}

func TestPlacementModelFromSpecs(t *testing.T) {
	catalog := workload.Catalog(100, 10)
	specs := []engine.QuerySpec{
		{
			ID:     "narrow",
			Source: "quotes",
			Filters: []engine.FilterSpec{
				{Field: "price", Lo: 0, Hi: 100, Cost: 2},              // 10% of domain
				{KeyField: "symbol", Keys: []string{"S0001"}, Cost: 1}, // 1%
			},
		},
		{
			ID:     "wide",
			Source: "quotes",
			Filters: []engine.FilterSpec{
				{Field: "price", Lo: 0, Hi: 1000, Cost: 1},
			},
		},
	}
	queries, err := PlacementModel(specs, catalog, planRates(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(queries) != 2 {
		t.Fatalf("queries = %d", len(queries))
	}
	// Sorted by ID: narrow first.
	narrow, wide := queries[0], queries[1]
	if narrow.ID != "narrow" || wide.ID != "wide" {
		t.Fatalf("order = %s,%s", narrow.ID, wide.ID)
	}
	// The narrow query's input rate reflects early filtering: ~0.1% of
	// 1000 t/s; the wide one gets the full stream.
	if narrow.InputRate >= wide.InputRate {
		t.Errorf("narrow rate %v not below wide %v", narrow.InputRate, wide.InputRate)
	}
	if wide.InputRate != 1000 {
		t.Errorf("wide rate = %v, want 1000", wide.InputRate)
	}
	// Two filters split into two fragments.
	if len(narrow.Fragments) != 2 {
		t.Fatalf("narrow fragments = %d", len(narrow.Fragments))
	}
	if narrow.DistributionLimit != 2 {
		t.Errorf("limit = %d", narrow.DistributionLimit)
	}
	// Costs carried through.
	if narrow.Fragments[0].Cost != 2 || narrow.Fragments[1].Cost != 1 {
		t.Errorf("fragment costs = %+v", narrow.Fragments)
	}
	// The single-filter query cannot split.
	if len(wide.Fragments) != 1 {
		t.Errorf("wide fragments = %d", len(wide.Fragments))
	}
}

func TestPlacementModelErrors(t *testing.T) {
	catalog := workload.Catalog(10, 10)
	good := engine.QuerySpec{ID: "q", Source: "quotes",
		Filters: []engine.FilterSpec{{Field: "price", Lo: 0, Hi: 1}}}
	if _, err := PlacementModel([]engine.QuerySpec{{ID: ""}}, catalog, planRates(), 1); err == nil {
		t.Error("invalid spec accepted")
	}
	bad := good
	bad.Source = "nostream"
	if _, err := PlacementModel([]engine.QuerySpec{bad}, catalog, planRates(), 1); err == nil {
		t.Error("unknown stream accepted")
	}
	if _, err := PlacementModel([]engine.QuerySpec{good}, catalog, nil, 1); err == nil {
		t.Error("missing rate hint accepted")
	}
}

func TestPlanPlacementEndToEnd(t *testing.T) {
	catalog := workload.Catalog(200, 10)
	tick := workload.NewTicker(7, 200, 1.3)
	gen := workload.NewQueryGen(7, tick.Symbols(), 4, 0.3)
	specs := gen.Specs(30)
	procs := mkProcs(4, 1e5)
	asg, ev, err := PlanPlacement(specs, catalog, planRates(), procs, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Every fragment of every (split) query is assigned.
	for _, spec := range specs {
		frags := SplitSpec(spec, 2)
		for i := range frags {
			if _, ok := asg[FragmentRef{spec.ID, i}]; !ok {
				t.Fatalf("fragment %s#%d unassigned", spec.ID, i)
			}
		}
	}
	if !ev.Feasible {
		t.Errorf("plan infeasible: maxUtil=%v", ev.MaxUtilization)
	}
	if ev.PRMax <= 0 {
		t.Errorf("PRMax = %v", ev.PRMax)
	}
	// Bad input propagates.
	if _, _, err := PlanPlacement(specs, catalog, nil, procs, 2); err == nil {
		t.Error("missing rates accepted")
	}
	if _, _, err := PlanPlacement(specs, catalog, planRates(), nil, 2); err == nil {
		t.Error("no processors accepted")
	}
}

func TestFilterSelectivityEstimates(t *testing.T) {
	catalog := workload.Catalog(100, 10)
	sc, _ := catalog.Lookup("quotes")
	cases := []struct {
		f    engine.FilterSpec
		want float64
	}{
		{engine.FilterSpec{Field: "price", Lo: 0, Hi: 100}, 0.1},
		{engine.FilterSpec{Field: "price", Lo: 0, Hi: 1000}, 1.0},
		{engine.FilterSpec{KeyField: "symbol", Keys: []string{"a", "b"}}, 0.02},
		{engine.FilterSpec{Field: "nodomain"}, 1.0}, // unknown field: neutral
	}
	for i, c := range cases {
		got := filterSelectivity(c.f, sc)
		if diff := got - c.want; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("case %d: selectivity = %v, want %v", i, got, c.want)
		}
	}
}
