// Entity-level checkpoint capture (DESIGN.md §12): a consistent cut of
// one query's operator state plus the per-stream high-water marks that
// bound the upstream replay needed to catch the state up after a crash.
//
// Consistency argument: the gate is paused first, so no new tuple
// advances the marks; the transport is then allowed to quiesce briefly
// and the hosting engines are drained, so every tuple admitted before
// the pause — including ones in flight to a remote fragment processor —
// is reflected in the snapshot; only then are the marks read. The gate
// reopens by replaying its pause buffer in place, so capture never
// loses a tuple.
package entity

import (
	"fmt"
	"time"

	"sspd/internal/engine"
)

// checkpointSettle bounds the wait for in-flight intra-entity feeds to
// land before the drain; on a momentarily quiet transport it returns
// immediately.
const checkpointSettle = 50 * time.Millisecond

// checkpointDrain bounds the engine drain before the snapshot.
const checkpointDrain = time.Second

// SetIngestDedup switches (stream, seq) high-water dedup on or off for
// every current and future ingest gate. Checkpointing federations turn
// it on: it makes recovery replay idempotent, at the cost of assuming
// per-stream monotone tuple delivery.
func (e *Entity) SetIngestDedup(on bool) {
	e.mu.Lock()
	e.dedup = on
	gates := make([]*ingestGate, 0, len(e.queries))
	for _, pq := range e.queries {
		gates = append(gates, pq.gate)
	}
	e.mu.Unlock()
	for _, g := range gates {
		g.setDedup(on)
	}
}

// SetQueryMarks installs per-stream high-water marks on a query's gate
// — recovery calls it after restoring a checkpoint so the replayed
// suffix dedups against the restored state.
func (e *Entity) SetQueryMarks(id string, marks map[string]uint64) error {
	pq, _, err := e.lookupQuery(id)
	if err != nil {
		return err
	}
	pq.gate.setMarks(marks)
	return nil
}

// QueryMarks returns a query's current per-stream high-water marks.
func (e *Entity) QueryMarks(id string) (map[string]uint64, bool) {
	pq, _, err := e.lookupQuery(id)
	if err != nil {
		return nil, false
	}
	return pq.gate.marksCopy(), true
}

// StaleDrops totals the tuples dropped as stale (at or below a gate's
// mark) across all queries — replay duplicates suppressed by dedup.
func (e *Entity) StaleDrops() int64 {
	e.mu.Lock()
	gates := make([]*ingestGate, 0, len(e.queries))
	for _, pq := range e.queries {
		gates = append(gates, pq.gate)
	}
	e.mu.Unlock()
	total := int64(0)
	for _, g := range gates {
		total += g.staleCount()
	}
	return total
}

// CheckpointQuery captures a consistent cut of one query: pause the
// gate, let in-flight feeds land, drain the engines, snapshot operator
// state, read the marks, and resume by replaying the pause buffer. ok
// is false (no error) when a hosting engine lacks the StateSnapshotter
// capability — such queries recover stateless, from the spec alone.
func (e *Entity) CheckpointQuery(id string) (st map[string]engine.QueryState,
	marks map[string]uint64, stateBytes int, ok bool, err error) {
	pq, procs, err := e.lookupQuery(id)
	if err != nil {
		return nil, nil, 0, false, err
	}
	e.mu.Lock()
	closed := e.closed
	e.mu.Unlock()
	if closed {
		return nil, nil, 0, false, fmt.Errorf("entity %s: closed", e.id)
	}
	pq.gate.pause()
	resume := func() { pq.gate.open(nil, e.headFeeder(pq, procs)) }
	if q, can := e.transport.(interface{ Quiesce(time.Duration) bool }); can {
		q.Quiesce(checkpointSettle)
	}
	_ = e.DrainQuery(id, checkpointDrain)
	st, stateBytes, ok, err = e.SnapshotQuery(id)
	if err != nil || !ok {
		resume()
		return nil, nil, 0, ok, err
	}
	marks = pq.gate.marksCopy()
	resume()
	return st, marks, stateBytes, true, nil
}
