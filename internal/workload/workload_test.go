package workload

import (
	"testing"

	"sspd/internal/stream"
)

func TestSchemas(t *testing.T) {
	q := Quotes(50)
	if q.Name() != "quotes" || q.NumFields() != 3 {
		t.Errorf("quotes schema %v", q)
	}
	if i, ok := q.FieldIndex("symbol"); !ok || q.Field(i).Card != 50 {
		t.Error("symbol cardinality not recorded")
	}
	if Trades(10).Name() != "trades" {
		t.Error("trades schema")
	}
	if Flows(10).NumFields() != 4 {
		t.Error("flows schema")
	}
	c := Catalog(50, 10)
	if len(c.Streams()) != 3 {
		t.Errorf("catalog streams = %v", c.Streams())
	}
}

func TestTickerDeterminism(t *testing.T) {
	a := NewTicker(42, 100, 1.2)
	b := NewTicker(42, 100, 1.2)
	for i := 0; i < 50; i++ {
		ta, tb := a.Next(), b.Next()
		if ta.String() != tb.String() {
			t.Fatalf("nondeterministic at %d: %v vs %v", i, ta, tb)
		}
	}
}

func TestTickerValidity(t *testing.T) {
	tick := NewTicker(7, 20, 1.5)
	sc := Quotes(20)
	var prev uint64
	for i := 0; i < 200; i++ {
		tu := tick.Next()
		if err := sc.Validate(tu); err != nil {
			t.Fatalf("tuple %d invalid: %v", i, err)
		}
		if tu.Seq <= prev {
			t.Fatalf("sequence not increasing at %d", i)
		}
		prev = tu.Seq
		price := tu.Value(1).AsFloat()
		if price < 0 || price > 1000 {
			t.Fatalf("price %v outside domain", price)
		}
	}
}

func TestTickerSkew(t *testing.T) {
	tick := NewTicker(1, 100, 2.0)
	counts := map[string]int{}
	n := 5000
	for i := 0; i < n; i++ {
		counts[tick.Next().Value(0).AsString()]++
	}
	// With strong skew the hottest symbol should dominate.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < n/4 {
		t.Errorf("hottest symbol only %d of %d — zipf skew missing", max, n)
	}
	if len(tick.Symbols()) != 100 {
		t.Error("symbol universe size")
	}
}

func TestTickerClampsAndTrades(t *testing.T) {
	tick := NewTicker(1, 0, 0) // degenerate params clamp
	tu := tick.Next()
	if tu.Stream != "quotes" {
		t.Error("stream name")
	}
	tr := tick.NextTrade()
	if tr.Stream != "trades" || len(tr.Values) != 2 {
		t.Errorf("trade = %v", tr)
	}
	b := tick.Batch(10)
	if len(b) != 10 {
		t.Errorf("batch = %d", len(b))
	}
}

func TestFlowGen(t *testing.T) {
	g := NewFlowGen(3, 10)
	sc := Flows(10)
	for i := 0; i < 100; i++ {
		tu := g.Next()
		if err := sc.Validate(tu); err != nil {
			t.Fatalf("flow %d invalid: %v", i, err)
		}
	}
	if len(g.Batch(5)) != 5 {
		t.Error("batch size")
	}
	// Degenerate host count clamps.
	small := NewFlowGen(1, 0)
	if small.Next().Stream != "flows" {
		t.Error("clamped flowgen broken")
	}
}

func TestQueryGenProducesValidSpecs(t *testing.T) {
	tick := NewTicker(5, 100, 1.2)
	catalog := Catalog(100, 10)
	g := NewQueryGen(5, tick.Symbols(), 4, 0.3)
	specs := g.Specs(100)
	if len(specs) != 100 {
		t.Fatalf("specs = %d", len(specs))
	}
	ids := map[string]bool{}
	joins, aggs := 0, 0
	for _, spec := range specs {
		if err := spec.Validate(); err != nil {
			t.Fatalf("spec %s invalid: %v", spec.ID, err)
		}
		if ids[spec.ID] {
			t.Fatalf("duplicate id %s", spec.ID)
		}
		ids[spec.ID] = true
		if spec.Join != nil {
			joins++
		}
		if spec.Agg != nil {
			aggs++
		}
		if spec.Load <= 0 {
			t.Fatalf("spec %s has no load", spec.ID)
		}
	}
	if aggs == 0 {
		t.Error("no aggregate queries generated")
	}
	// Interests must be derivable and non-trivial.
	sc, _ := catalog.Lookup("quotes")
	in := specs[0].Interest("quotes", sc)
	if in.Unconstrained() {
		t.Error("generated query has unconstrained interest")
	}
	sel := in.Selectivity(sc)
	if sel <= 0 || sel >= 1 {
		t.Errorf("interest selectivity = %v, want in (0,1)", sel)
	}
}

func TestQueryGenOverlapStructure(t *testing.T) {
	tick := NewTicker(5, 100, 1.2)
	sc := Quotes(100)
	// High overlap between groups => more pairwise interest overlap.
	overlapAt := func(ov float64) float64 {
		g := NewQueryGen(9, tick.Symbols(), 4, ov)
		specs := g.Specs(60)
		total := 0.0
		for i := 0; i < len(specs); i++ {
			for j := i + 1; j < len(specs); j++ {
				a := specs[i].Interest("quotes", sc)
				b := specs[j].Interest("quotes", sc)
				total += stream.Overlap(a, b, sc)
			}
		}
		return total
	}
	low, high := overlapAt(0), overlapAt(0.9)
	if high <= low {
		t.Errorf("overlap knob broken: high=%v low=%v", high, low)
	}
}

func TestQueryGenClamps(t *testing.T) {
	g := NewQueryGen(1, []string{"A"}, 0, -1)
	spec := g.Next()
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	g2 := NewQueryGen(1, []string{"A", "B"}, 10, 2)
	if err := g2.Next().Validate(); err != nil {
		t.Fatal(err)
	}
}
