// Package workload generates the synthetic streams and query streams the
// experiments run on. The paper motivates the system with financial
// monitoring (stock tickers) and network management; no 2006 traces are
// publicly available, so the generators reproduce their structure
// instead: keyed tuple streams with zipf-skewed key popularity, and
// query streams whose data interests cluster into overlapping groups
// (many clients watching the same hot symbols), which is exactly the
// structure the query-graph partitioner exploits.
package workload

import (
	"fmt"
	"math/rand"
	"time"

	"sspd/internal/engine"
	"sspd/internal/operator"
	"sspd/internal/stream"
)

// Quotes is the stock-ticker schema: symbol, price, volume.
func Quotes(symbols int) *stream.Schema {
	return stream.MustSchema("quotes",
		stream.Field{Name: "symbol", Type: stream.KindString, Card: symbols},
		stream.Field{Name: "price", Type: stream.KindFloat, Lo: 0, Hi: 1000},
		stream.Field{Name: "volume", Type: stream.KindInt, Lo: 0, Hi: 1e6},
	)
}

// Trades is the companion trade stream: symbol, qty.
func Trades(symbols int) *stream.Schema {
	return stream.MustSchema("trades",
		stream.Field{Name: "symbol", Type: stream.KindString, Card: symbols},
		stream.Field{Name: "qty", Type: stream.KindInt, Lo: 0, Hi: 1e6},
	)
}

// Flows is the network-management schema: source, destination, bytes,
// latency in milliseconds.
func Flows(hosts int) *stream.Schema {
	return stream.MustSchema("flows",
		stream.Field{Name: "src", Type: stream.KindString, Card: hosts},
		stream.Field{Name: "dst", Type: stream.KindString, Card: hosts},
		stream.Field{Name: "bytes", Type: stream.KindInt, Lo: 0, Hi: 1e9},
		stream.Field{Name: "latency_ms", Type: stream.KindFloat, Lo: 0, Hi: 1000},
	)
}

// Catalog returns the global schema catalog over all generator streams.
func Catalog(symbols, hosts int) *stream.Catalog {
	c := stream.NewCatalog()
	for _, s := range []*stream.Schema{Quotes(symbols), Trades(symbols), Flows(hosts)} {
		if err := c.Register(s); err != nil {
			panic(err) // distinct literal names; cannot collide
		}
	}
	return c
}

// Ticker generates the quotes stream: zipf-popular symbols whose prices
// random-walk inside per-symbol bands. Deterministic for a given seed.
type Ticker struct {
	rng     *rand.Rand
	zipf    *rand.Zipf
	symbols []string
	price   []float64
	seq     uint64
	now     time.Time
}

// NewTicker creates a generator over n symbols. skew > 1 controls zipf
// steepness (1.1 = mild, 2 = strong).
func NewTicker(seed int64, n int, skew float64) *Ticker {
	if n < 1 {
		n = 1
	}
	if skew <= 1 {
		skew = 1.2
	}
	rng := rand.New(rand.NewSource(seed))
	symbols := make([]string, n)
	price := make([]float64, n)
	for i := range symbols {
		symbols[i] = fmt.Sprintf("S%04d", i)
		price[i] = 100 + rng.Float64()*800
	}
	return &Ticker{
		rng:     rng,
		zipf:    rand.NewZipf(rng, skew, 1, uint64(n-1)),
		symbols: symbols,
		price:   price,
		now:     time.Unix(1_000_000, 0).UTC(),
	}
}

// Symbols returns the symbol universe.
func (t *Ticker) Symbols() []string {
	out := make([]string, len(t.symbols))
	copy(out, t.symbols)
	return out
}

// Next produces the next quote tuple.
func (t *Ticker) Next() stream.Tuple {
	i := int(t.zipf.Uint64())
	// Price random walk, clamped to the schema domain.
	t.price[i] += (t.rng.Float64() - 0.5) * 10
	if t.price[i] < 0 {
		t.price[i] = 0
	}
	if t.price[i] > 1000 {
		t.price[i] = 1000
	}
	t.seq++
	t.now = t.now.Add(time.Millisecond)
	return stream.NewTuple("quotes", t.seq, t.now,
		stream.String(t.symbols[i]),
		stream.Float(t.price[i]),
		stream.Int(int64(t.rng.Intn(1e6))),
	)
}

// NextTrade produces a trade tuple correlated with the ticker's symbols.
func (t *Ticker) NextTrade() stream.Tuple {
	i := int(t.zipf.Uint64())
	t.seq++
	t.now = t.now.Add(time.Millisecond)
	return stream.NewTuple("trades", t.seq, t.now,
		stream.String(t.symbols[i]),
		stream.Int(int64(t.rng.Intn(1e6))),
	)
}

// Batch produces n quote tuples.
func (t *Ticker) Batch(n int) stream.Batch {
	out := make(stream.Batch, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, t.Next())
	}
	return out
}

// FlowGen generates the network-management stream.
type FlowGen struct {
	rng   *rand.Rand
	zipf  *rand.Zipf
	hosts []string
	seq   uint64
	now   time.Time
}

// NewFlowGen creates a flow generator over n hosts.
func NewFlowGen(seed int64, n int) *FlowGen {
	if n < 2 {
		n = 2
	}
	rng := rand.New(rand.NewSource(seed))
	hosts := make([]string, n)
	for i := range hosts {
		hosts[i] = fmt.Sprintf("h%03d", i)
	}
	return &FlowGen{
		rng:   rng,
		zipf:  rand.NewZipf(rng, 1.3, 1, uint64(n-1)),
		hosts: hosts,
		now:   time.Unix(2_000_000, 0).UTC(),
	}
}

// Next produces the next flow tuple.
func (g *FlowGen) Next() stream.Tuple {
	src := int(g.zipf.Uint64())
	dst := g.rng.Intn(len(g.hosts))
	g.seq++
	g.now = g.now.Add(time.Millisecond)
	return stream.NewTuple("flows", g.seq, g.now,
		stream.String(g.hosts[src]),
		stream.String(g.hosts[dst]),
		stream.Int(int64(g.rng.Intn(1e9))),
		stream.Float(g.rng.Float64()*1000),
	)
}

// Batch produces n flow tuples.
func (g *FlowGen) Batch(n int) stream.Batch {
	out := make(stream.Batch, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, g.Next())
	}
	return out
}

// QueryGen produces a stream of continuous-query specs whose data
// interests form overlapping groups: queries in the same group watch the
// same hot symbols and nearby price bands. Groups is the number of
// interest communities; overlap in [0,1] is the chance a query also
// watches a second group's symbols.
type QueryGen struct {
	rng      *rand.Rand
	symbols  []string
	groups   int
	overlap  float64
	perGroup int
	next     int
}

// NewQueryGen builds a generator over the ticker's symbol universe.
func NewQueryGen(seed int64, symbols []string, groups int, overlap float64) *QueryGen {
	if groups < 1 {
		groups = 1
	}
	if overlap < 0 {
		overlap = 0
	}
	if overlap > 1 {
		overlap = 1
	}
	perGroup := len(symbols) / groups
	if perGroup < 1 {
		perGroup = 1
	}
	return &QueryGen{
		rng:      rand.New(rand.NewSource(seed)),
		symbols:  symbols,
		groups:   groups,
		overlap:  overlap,
		perGroup: perGroup,
	}
}

// groupSymbols returns a few symbols from the given group.
func (g *QueryGen) groupSymbols(group, n int) []string {
	base := group * g.perGroup
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		idx := base + g.rng.Intn(g.perGroup)
		if idx >= len(g.symbols) {
			idx = len(g.symbols) - 1
		}
		out = append(out, g.symbols[idx])
	}
	return out
}

// Next produces the next query spec: a symbol-set filter plus a price
// band, sometimes a windowed aggregate, rarely a join with trades.
func (g *QueryGen) Next() engine.QuerySpec {
	g.next++
	group := g.rng.Intn(g.groups)
	keys := g.groupSymbols(group, 2+g.rng.Intn(4))
	if g.rng.Float64() < g.overlap {
		keys = append(keys, g.groupSymbols((group+1)%g.groups, 2)...)
	}
	// Price bands cluster per group so range overlap also correlates.
	bandLo := float64(group) * (1000 / float64(g.groups))
	lo := bandLo + g.rng.Float64()*100
	hi := lo + 50 + g.rng.Float64()*200
	if hi > 1000 {
		hi = 1000
	}
	spec := engine.QuerySpec{
		ID:     fmt.Sprintf("q%05d", g.next),
		Source: "quotes",
		Filters: []engine.FilterSpec{
			{KeyField: "symbol", Keys: keys, Cost: 1},
			{Field: "price", Lo: lo, Hi: hi, Cost: 1},
		},
		Load: 1 + g.rng.Float64()*9,
	}
	switch {
	case g.rng.Float64() < 0.2:
		spec.Agg = &engine.AggSpec{
			Fn: operator.AggAvg, ValueField: "price", GroupField: "symbol",
			Window: stream.CountWindow(64), Cost: 2,
		}
	case g.rng.Float64() < 0.1:
		spec.Join = &engine.JoinSpec{
			Stream: "trades", LeftKey: "symbol", RightKey: "symbol",
			Window: stream.CountWindow(32), Cost: 3,
		}
	}
	return spec
}

// Specs produces n query specs.
func (g *QueryGen) Specs(n int) []engine.QuerySpec {
	out := make([]engine.QuerySpec, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, g.Next())
	}
	return out
}
