GO ?= go

.PHONY: check vet build test race chaos bench-chaos bench-observability bench

check: vet build chaos

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Chaos gate: the tier-1 suite under -race plus the seeded chaos bench,
# which fails if any tuple is silently lost after the federation
# self-heals. Regenerates BENCH_robustness.json.
chaos: race bench-chaos

bench-chaos:
	$(GO) run ./cmd/sspd-bench -chaos drop=0.05,dup=0.02,partition=2s,crash=1,seed=7 -chaos-out BENCH_robustness.json

# Regenerates BENCH_observability.json: tuple-path cost with tracing
# off / sampled / full, the disabled trace.Record microbench, and the
# /metrics scrape cost.
bench-observability:
	$(GO) run ./cmd/sspd-bench -observability BENCH_observability.json

# Every experiment table/figure (EXPERIMENTS.md).
bench:
	$(GO) run ./cmd/sspd-bench
