GO ?= go

.PHONY: check vet build test race bench-observability bench

check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Regenerates BENCH_observability.json: tuple-path cost with tracing
# off / sampled / full, the disabled trace.Record microbench, and the
# /metrics scrape cost.
bench-observability:
	$(GO) run ./cmd/sspd-bench -observability BENCH_observability.json

# Every experiment table/figure (EXPERIMENTS.md).
bench:
	$(GO) run ./cmd/sspd-bench
