GO ?= go

.PHONY: check vet staticcheck lint-obslog build test race chaos bench-chaos bench-observability bench-tuplepath bench-statsplane bench-engineobs bench-migration bench-latency bench-recovery bench-engine bench-adaptation bench

check: vet staticcheck lint-obslog build chaos bench-tuplepath bench-statsplane bench-engineobs bench-migration bench-latency bench-recovery bench-engine bench-adaptation

vet:
	$(GO) vet ./...

# staticcheck is optional: run it when the toolchain has it, otherwise
# skip with a note (the container image does not bundle it).
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping"; \
	fi

# Observability hygiene: internal packages log through obslog (leveled,
# journaled, rate-limited) — never straight to stdout/stderr. Fails on
# any log.Printf / fmt.Print / fmt.Printf / fmt.Println call site in
# non-test internal code.
lint-obslog:
	@bad=$$(grep -rnE '(log\.Printf|fmt\.Print(f|ln)?)\(' internal/ --include='*.go' | grep -v '_test\.go' || true); \
	if [ -n "$$bad" ]; then \
		echo "lint-obslog: use obslog instead of printf-style logging in internal/:"; \
		echo "$$bad"; \
		exit 1; \
	fi
	@echo "lint-obslog: clean"
	@bad=$$(grep -rnE 'time\.Now\(' internal/engine/kernels.go internal/stream/colbatch.go internal/engine/ring.go || true); \
	if [ -n "$$bad" ]; then \
		echo "lint-obslog: no clock reads inside vectorized kernel inner loops or the shard ring publish path (one timestamp per batch, taken by the shard loop):"; \
		echo "$$bad"; \
		exit 1; \
	fi
	@echo "lint-obslog: kernels clock-free"
	@bad=$$(grep -rnE 'time\.Now\(' internal/entity/adaptation.go internal/entity/entity.go || true); \
	if [ -n "$$bad" ]; then \
		echo "lint-obslog: no clock reads in the per-tuple route decision (Choose/emit); candidate delays come from trace span completions, off the hot path:"; \
		echo "$$bad"; \
		exit 1; \
	fi
	@echo "lint-obslog: route decision clock-free"

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The differential suite (Engine vs. MiniEngine vs. ShardEngine result
# equivalence) runs once more explicitly: it is the engine-swap proof
# obligation and must never be skipped by test caching.
race:
	$(GO) test -race ./...
	$(GO) test -race -count=1 -run 'TestShardEngine' ./internal/engine/

# Chaos gate: the tier-1 suite under -race plus the seeded chaos bench,
# which fails if any tuple is silently lost after the federation
# self-heals. Regenerates BENCH_robustness.json.
chaos: race bench-chaos

bench-chaos:
	$(GO) run ./cmd/sspd-bench -chaos drop=0.05,dup=0.02,partition=2s,crash=1,seed=7 -chaos-out BENCH_robustness.json

# Regenerates BENCH_observability.json: tuple-path cost with tracing
# off / sampled / full, the disabled trace.Record microbench, and the
# /metrics scrape cost.
bench-observability:
	$(GO) run ./cmd/sspd-bench -observability BENCH_observability.json

# Regenerates BENCH_tuplepath.json: codec encode/decode (fresh vs.
# pooled), interpreted vs. compiled interest matching, and relay fan-out
# ns/tuple. Fails if the relay speedup drops below the 2x acceptance bar.
bench-tuplepath:
	$(GO) run ./cmd/sspd-bench -tuplepath BENCH_tuplepath.json

# Appends the stats-plane costs (digest merge, journal append, tuple
# path with the plane on vs. off) into BENCH_observability.json. Fails
# if enabling the plane costs the tuple path more than 1%.
bench-statsplane:
	$(GO) run ./cmd/sspd-bench -statsplane BENCH_observability.json

# Appends the engine-introspection costs (tuple path through shard
# engines with the plane on vs. off) into BENCH_observability.json.
# Fails if enabling the plane costs the tuple path more than 1%.
bench-engineobs:
	$(GO) run ./cmd/sspd-bench -engineobs BENCH_observability.json

# Regenerates BENCH_migration.json: a windowed aggregate live-migrated
# around the cluster mid-stream on a jittery transport. Fails on any
# lost or duplicated tuple, or a handoff pause over the 250ms budget.
bench-migration:
	$(GO) run ./cmd/sspd-bench -migration BENCH_migration.json

# Regenerates BENCH_latency.json: the latency attribution plane's
# tuple-path overhead at 1/1024 span sampling, and the accuracy of the
# federated P99 against an exact sorted-delay oracle. Fails if the
# plane costs the tuple path more than 1% or the federated P99 lands
# more than one log-bucket from the oracle.
bench-latency:
	$(GO) run ./cmd/sspd-bench -latency BENCH_latency.json

# Regenerates BENCH_recovery.json: 64 stateful queries hard-killed
# mid-stream and recovered from quorum-acked checkpoints. Fails on any
# lost or duplicated committed result, any stateless fallback, a
# crash-to-committed interval over 2s, or replay amplification over 2x
# the outage traffic.
bench-recovery:
	$(GO) run ./cmd/sspd-bench -recovery BENCH_recovery.json

# Regenerates BENCH_engine.json: the shard-per-core vectorized engine
# against the asynchronous baseline on an identical 16-query quote
# workload (per-tuple busy cost, wall-clock tuples/sec, shard scaling
# sweep). Fails if the throughput speedup drops below the 5x bar.
bench-engine:
	$(GO) run ./cmd/sspd-bench -engine BENCH_engine.json

# Regenerates BENCH_adaptation.json: tuple-routed downstream selection
# (the Adaptation Module loop) against the static-ordering baseline
# under a selectivity-drifting workload on a jittered link. Fails on
# any lost/duplicated result or when routing's PR_max improvement
# misses the noise-calibrated margin.
bench-adaptation:
	$(GO) run ./cmd/sspd-bench -adaptation BENCH_adaptation.json

# Every experiment table/figure (EXPERIMENTS.md).
bench:
	$(GO) run ./cmd/sspd-bench
